#!/usr/bin/env python3
"""A private content index: the paper's T-Chord application (Section V-G).

Thirty nodes out of a 150-node network operate a distributed index of
"sensitive document locations" as a Chord DHT — bootstrapped with
T-Chord/T-Man entirely inside a private group, so the index's existence,
its members and every query stay confidential.  Lookup replies travel a
single WCL onion path back to the querying node.

Run:  python examples/private_dht.py
"""

from __future__ import annotations

import random

from repro import World, WorldConfig
from repro.apps import TChordNode, key_id
from repro.core.ppss import PpssConfig

GROUP = "private-index"
RING_SIZE = 30


def main() -> None:
    world = World(WorldConfig(seed=61))
    print("populating 150 nodes ...")
    world.populate(150)
    world.start_all()
    world.run(120.0)

    config = PpssConfig(cycle_time=20.0)
    nodes = world.alive_nodes()
    leader = nodes[0]
    group = leader.create_group(GROUP, config=config)
    members = [leader]
    for node in nodes[1:RING_SIZE]:
        node.join_group(group.invite(node.node_id), config=config)
        members.append(node)
    world.run(200.0)
    print(f"group formed: {len(members)} members")

    print("bootstrapping the Chord ring with T-Chord ...")
    tchords = [
        TChordNode(
            member.group(GROUP),
            world.sim,
            world.registry.fork(f"dht-{member.node_id}").stream("t"),
            cycle_time=15.0,
        )
        for member in members
    ]
    world.run(300.0)

    ordered = sorted(tchords, key=lambda tc: tc.ring_id)
    perfect = sum(
        1
        for i, tc in enumerate(ordered)
        if tc.successor is not None
        and tc.successor.node_id == ordered[(i + 1) % len(ordered)].ppss.node_id
    )
    print(f"ring convergence: {perfect}/{len(ordered)} perfect successors")

    # --- the index in action ---------------------------------------------
    documents = [
        "report-2011-final.pdf",
        "witness-list.txt",
        "source-photos.tar",
        "meeting-minutes-03.md",
        "ledger-backup.db",
    ]
    print("\nresolving document owners through the private DHT:")
    results = {}
    rng = random.Random(5)

    def make_cb(doc):
        return lambda r: results.__setitem__(doc, r)

    for doc in documents:
        rng.choice(tchords).lookup(doc, make_cb(doc))
    world.run(60.0)

    for doc in documents:
        result = results.get(doc)
        if result is None:
            print(f"  {doc:<26} lookup timed out")
            continue
        print(
            f"  {doc:<26} -> node {result.owner_id:<4} "
            f"(key {key_id(doc):#010x}, {result.hops} hops, "
            f"{result.latency * 1000:.0f} ms)"
        )

    completed = [r for r in results.values() if r is not None]
    print(
        f"\n{len(completed)}/{len(documents)} lookups resolved; "
        "queries, replies and ring maintenance all travelled WCL onion "
        "routes — the other 120 nodes saw none of it."
    )


if __name__ == "__main__":
    main()
