#!/usr/bin/env python3
"""Quickstart: a private group and one confidential message.

Builds a 60-node NAT-heavy network, lets the peer sampling service
converge, creates a private group, invites a member, and sends one
confidential message over a WHISPER onion route — while a global wiretap
records every packet to show what an attacker would (not) see.

Run:  python examples/quickstart.py
"""

import pickle

from repro import World, WorldConfig
from repro.core.contact import Gateway, PrivateContact
from repro.net.address import NodeKind
from repro.net.observer import LinkObserver


def contact_for(node) -> PrivateContact:
    """Build the WCL contact record for a node (id, key, Π gateways)."""
    gateways = ()
    if node.cm.kind is NodeKind.NATTED:
        gateways = tuple(
            Gateway(descriptor=e.descriptor, key=e.key)
            for e in node.backlog.gateways_for_self()
        )
    return PrivateContact(
        descriptor=node.descriptor(), key=node.wcl.public_key, gateways=gateways
    )


def main() -> None:
    # Real RSA + authenticated stream cipher so the wiretap demo is honest.
    world = World(WorldConfig(seed=7, provider="real", real_use_aes=False))
    wiretap = LinkObserver()
    wiretap.watch_all()
    world.network.add_observer(wiretap)

    print("populating 60 nodes (70% behind NATs) ...")
    world.populate(60)
    world.start_all()
    world.run(150.0)  # 15 PSS cycles: views and backlogs converge

    alice, bob = world.natted_nodes()[:2]
    print(f"alice = node {alice.node_id} ({alice.nat_type.value} NAT)")
    print(f"bob   = node {bob.node_id} ({bob.nat_type.value} NAT)")

    # --- private group -------------------------------------------------
    group = alice.create_group("friends")
    bob.join_group(group.invite(bob.node_id))
    world.run(120.0)
    print(f"bob's membership state: {bob.group('friends').state.value}")

    # --- one confidential message over an onion route -------------------
    secret = "meet me at the fountain at nine"
    received = []
    bob.wcl.set_receive_upcall(lambda content, size: received.append(content))
    attempt = alice.wcl.send_to(contact_for(bob), secret, 512)
    world.run(30.0)

    print(f"\nbob received: {received[0]!r}")
    print(
        f"the onion travelled alice -> mix {attempt.first_mix} "
        f"-> mix {attempt.second_mix} (a P-node) -> bob"
    )

    # --- what the wiretap saw -------------------------------------------
    def carries_onion(payload) -> bool:
        """Does this packet carry our onion (measurement-only trace id)?"""
        from repro.core.onion import OnionPacket

        stack, seen = [payload], 0
        while stack and seen < 50:
            seen += 1
            item = stack.pop()
            if isinstance(item, OnionPacket) and item.trace_id == attempt.trace_id:
                return True
            if isinstance(item, dict):
                stack.extend(item.values())
        return False

    leaks = sum(
        1 for p in wiretap.packets
        if secret.encode() in pickle.dumps(p.payload)
    )
    onion_hops = [
        (p.sender, p.receiver) for p in wiretap.packets if carries_onion(p.payload)
    ]
    direct = sum(
        1 for s, r in onion_hops if s == alice.node_id and r == bob.node_id
    )
    print(f"\nwiretap saw {len(wiretap.packets)} packets on the wire")
    print(f"packets containing the plaintext: {leaks}")
    print(f"onion hops observed: {onion_hops}")
    print(f"onion packets travelling alice -> bob directly: {direct}")
    print("content privacy and relationship anonymity hold.")


if __name__ == "__main__":
    main()
