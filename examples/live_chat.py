#!/usr/bin/env python3
"""Two OS processes chat privately over real asyncio UDP sockets.

This is the WHISPER stack *outside* the simulator: the same unmodified
node code (PSS gossip, connection backlog, WCL onion routing, PPSS
private groups) runs on :mod:`repro.runtime`'s asyncio scheduler, and
every message crosses a real socket as a :mod:`repro.wire` frame.

Topology: each process hosts two public nodes on 127.0.0.1 (four nodes
total), because a WCL route needs two mixes distinct from both the sender
and the final contact.

- ``serve`` process — nodes 1 (introducer + group leader) and 2.  Prints
  one handshake line on stdout: a JSON object with its endpoints and a
  hex-encoded wire-codec invitation, then answers the first chat message
  with a pong.
- ``chat`` process — nodes 11 and 12.  Bootstraps PSS from the printed
  introducers, redeems the invitation (the ``group.join`` travels inside
  an onion), then sends an onion-routed private message and waits for
  the reply.

Run (single command; it orchestrates both processes)::

    python examples/live_chat.py

Or by hand, in two shells::

    python examples/live_chat.py serve
    python examples/live_chat.py chat --handshake '<json from serve>'

Exit code 0 means the chat process received the onion-routed reply —
the assertion the CI live-smoke job makes.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.node import WhisperConfig
from repro.core.ppss import MemberState, PpssConfig
from repro.pss.gossip import PssConfig
from repro.runtime import LiveRuntime
from repro.wire import decode_blob, encode_blob

GROUP = "wire-room"
SERVE_NODES = (1, 2)
CHAT_NODES = (11, 12)


def fast_config() -> WhisperConfig:
    """Second-scale timers so the demo converges in seconds, not minutes."""
    return WhisperConfig(
        pss=PssConfig(exchange_keys=True, cycle_time=0.5, response_timeout=2.0),
        ppss=PpssConfig(cycle_time=1.0, join_retry_every=1.0, response_timeout=3.0),
    )


def build_runtime(seed: int, node_ids: tuple[int, ...], host: str) -> LiveRuntime:
    rt = LiveRuntime(
        host=host, seed=seed, provider="real", key_bits=512, whisper=fast_config()
    )
    for nid in node_ids:
        rt.add_node(nid)
    return rt


# ---------------------------------------------------------------------------
def serve(args: argparse.Namespace) -> int:
    rt = build_runtime(seed=args.seed, node_ids=SERVE_NODES, host=args.host)
    intro = rt.descriptor(SERVE_NODES[0])
    rt.start([intro])
    # The backlog needs keyed mixes before any onion can be built; with only
    # our two local nodes up, that completes after a couple of PSS cycles.
    leader = rt.nodes[SERVE_NODES[0]].create_group(GROUP)
    invitation = leader.invite()  # bearer token: the chat process redeems it

    handshake = {
        "introducers": [
            [nid, rt.network.endpoints[nid].host, rt.network.endpoints[nid].port]
            for nid in SERVE_NODES
        ],
        "invitation": encode_blob(invitation).hex(),
    }
    print(json.dumps(handshake), flush=True)

    state = {"question": None, "answered": False}

    def on_app(payload, reply_to) -> None:
        if not isinstance(payload, dict) or payload.get("app") != "live-chat":
            return
        state["question"] = payload.get("text")
        print(f"[serve] onion-routed message arrived: {payload['text']!r}", flush=True)
        if reply_to is not None:
            leader.send_app(
                reply_to, {"app": "live-chat", "text": f"pong: {payload['text']}"}, 256
            )
            state["answered"] = True

    leader.set_app_handler(on_app)
    rt.run_until(lambda: state["answered"], timeout=args.duration)
    # Linger so the final onion hops (the reply may route through us) drain.
    rt.run_for(2.0)
    rt.close()
    return 0 if state["answered"] else 1


# ---------------------------------------------------------------------------
def chat(args: argparse.Namespace) -> int:
    handshake = json.loads(args.handshake)
    invitation = decode_blob(bytes.fromhex(handshake["invitation"]))

    rt = build_runtime(seed=args.seed + 1, node_ids=CHAT_NODES, host=args.host)
    introducers = [
        LiveRuntime.remote_descriptor(nid, host, port)
        for nid, host, port in handshake["introducers"]
    ]
    rt.start(introducers)

    sender = rt.nodes[CHAT_NODES[0]]
    # Onion building needs >= 2 keyed backlog entries (first + second mix).
    if not rt.run_until(lambda: len(sender.backlog.entries()) >= 2, timeout=30):
        print("[chat] backlog never filled", file=sys.stderr)
        rt.close()
        return 1
    print("[chat] PSS exchange complete, backlog ready", flush=True)

    ppss = sender.join_group(invitation)
    if not rt.run_until(lambda: ppss.state is MemberState.MEMBER, timeout=45):
        print("[chat] group join timed out", file=sys.stderr)
        rt.close()
        return 1
    print(f"[chat] joined group {GROUP!r} via onion-routed join", flush=True)

    replies: list[str] = []

    def on_app(payload, reply_to) -> None:
        if isinstance(payload, dict) and payload.get("app") == "live-chat":
            replies.append(payload.get("text"))

    ppss.set_app_handler(on_app)
    ppss.send_app(
        invitation.entry_point,
        {"app": "live-chat", "text": "hello over real sockets"},
        256,
    )
    ok = rt.run_until(lambda: bool(replies), timeout=45)
    if ok:
        print(f"CHAT_OK reply={replies[0]!r}", flush=True)
    else:
        print("[chat] no reply before timeout", file=sys.stderr)
    rt.close()
    return 0 if ok else 1


# ---------------------------------------------------------------------------
def orchestrate(args: argparse.Namespace) -> int:
    """Spawn the serve process, run the chat process, assert success."""
    serve_proc = subprocess.Popen(
        [
            sys.executable, __file__, "serve",
            "--seed", str(args.seed),
            "--host", args.host,
            "--duration", str(args.duration),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        assert serve_proc.stdout is not None
        line = serve_proc.stdout.readline().strip()
        if not line:
            print("serve process printed no handshake", file=sys.stderr)
            return 1
        print(f"[orchestrator] handshake: {line[:80]}...", flush=True)
        code = chat(
            argparse.Namespace(
                handshake=line, seed=args.seed, host=args.host
            )
        )
        if code == 0:
            print("[orchestrator] two-process onion-routed chat: OK", flush=True)
        return code
    finally:
        serve_proc.terminate()
        try:
            serve_proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            serve_proc.kill()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("role", nargs="?", choices=["serve", "chat"], default=None)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--duration", type=float, default=120.0)
    parser.add_argument("--handshake", help="JSON printed by the serve process")
    args = parser.parse_args()
    if args.role == "serve":
        return serve(args)
    if args.role == "chat":
        if not args.handshake:
            parser.error("chat role needs --handshake")
        return chat(args)
    return orchestrate(args)


if __name__ == "__main__":
    raise SystemExit(main())
