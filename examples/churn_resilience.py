#!/usr/bin/env python3
"""Confidential routes under churn: a miniature Table I.

Runs a 250-node deployment with 8 private groups while 5% of the network
leaves (and is replaced) every minute — driven by the same churn-script
language the paper uses with SPLAY — and reports how often WCL onion
routes succeed on the first attempt, need an alternative mix pair, or run
out of alternatives.

Run:  python examples/churn_resilience.py
"""

from __future__ import annotations

from repro import World, WorldConfig
from repro.churn import ChurnDriver, parse_script
from repro.core.ppss import PpssConfig
from repro.experiments.common import GroupPlan

SCRIPT = """
from 0s to 30s join 220
at 300s set replacement ratio to 100%
from 300s to 900s const churn 5% each 60s
at 900s stop
"""


def main() -> None:
    world = World(WorldConfig(seed=13))
    # Leaders (P-nodes) come up first so groups outlive the churn.
    world.populate(30)
    world.start_all()
    world.run(40.0)
    plan = GroupPlan(world, 8, ppss_config=PpssConfig())
    print("8 private groups created, led by P-nodes")

    outcomes = {"success": 0, "alt": 0, "alt_failed": 0, "no_alt": 0}
    window = {"open": False}

    def hook(outcome, attempts, partner, duration):
        if not window["open"]:
            return
        if outcome != "success" and partner not in world.nodes:
            return  # dead destination: not a route failure (footnote 3)
        outcomes[outcome] += 1

    def wire(node):
        def subscribe():
            if not node.alive:
                return
            for name in plan.subscribe(node, 1):
                node.group(name).exchange_outcome_hook = hook
        world.sim.schedule(60.0, subscribe)

    for name, leader in plan.leaders.items():
        leader.group(name).exchange_outcome_hook = hook
    for node in world.alive_nodes():
        if node.node_id not in plan.leader_ids():
            wire(node)

    print("running the churn script:")
    print(SCRIPT.strip())
    driver = ChurnDriver(
        world, parse_script(SCRIPT), on_join=wire, protected=plan.leader_ids()
    )
    world.run(300.0)
    window["open"] = True
    world.run(600.0)
    window["open"] = False

    total = sum(outcomes.values()) or 1
    alt = outcomes["alt"] + outcomes["alt_failed"]
    print(f"\npopulation after churn: {len(world.alive_nodes())} nodes")
    print(f"churn events: {driver.stats.churn_events}, "
          f"killed: {driver.stats.killed}, joined: {driver.stats.joined}")
    print(f"\nWCL route construction over {total} private view exchanges:")
    print(f"  success on first attempt : {outcomes['success'] / total:6.1%}")
    print(f"  needed an alternative    : {alt / total:6.1%}")
    print(f"  no alternative available : {outcomes['no_alt'] / total:6.1%}")


if __name__ == "__main__":
    main()
