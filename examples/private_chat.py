#!/usr/bin/env python3
"""A private chat room: the paper's social-network motivation.

Eight members run a chat application inside a private group on a 120-node
network.  Messages fan out over the PPSS private view (epidemic flooding
with deduplication) — every hop is a WCL onion route, so neither message
contents nor the chat room's membership are visible to the other 112
nodes.  The script also demonstrates that a non-member who somehow obtains
a chat payload cannot inject messages: passports gate everything.

Run:  python examples/private_chat.py

Set ``REPRO_TRACE=trace.jsonl`` to run with telemetry enabled, export the
deterministic JSONL trace to that path, and print a span-tree summary
(``make trace`` does exactly this).
"""

from __future__ import annotations

import os

from repro import World, WorldConfig
from repro.core.ppss import MemberState, PpssConfig, PrivatePeerSamplingService

CHAT_GROUP = "late-night-channel"


class ChatRoom:
    """Epidemic group chat over the PPSS app channel."""

    def __init__(self, name: str, ppss: PrivatePeerSamplingService) -> None:
        self.name = name
        self.ppss = ppss
        self.transcript: list[tuple[str, str]] = []
        self._seen: set[int] = set()
        self._next_id = 0
        ppss.set_app_handler(self._on_payload)

    def say(self, text: str) -> None:
        self._next_id += 1
        message = {
            "app": "chat",
            "mid": (self.ppss.node_id, self._next_id),
            "author": self.name,
            "text": text,
        }
        self._accept(message)
        self._gossip(message)

    def _on_payload(self, payload, reply_to) -> None:
        if payload.get("app") != "chat":
            return
        if payload["mid"] in self._seen:
            return
        self._accept(payload)
        self._gossip(payload)  # keep the epidemic going

    def _accept(self, message) -> None:
        self._seen.add(message["mid"])
        self.transcript.append((message["author"], message["text"]))

    def _gossip(self, message) -> None:
        # Fan out to the whole private view; duplicates are filtered by
        # message id, and view rotation spreads the epidemic group-wide.
        for contact in self.ppss.view_contacts():
            self.ppss.send_app(contact, message, 256, include_self_contact=False)


def main() -> None:
    trace_path = os.environ.get("REPRO_TRACE")
    world = World(WorldConfig(seed=23, telemetry_enabled=bool(trace_path)))
    print("populating 120 nodes ...")
    world.populate(120)
    world.start_all()
    world.run(150.0)

    # Snappier cycles so the demo converges quickly.
    config = PpssConfig(cycle_time=20.0)
    nodes = world.alive_nodes()
    founder = nodes[0]
    group = founder.create_group(CHAT_GROUP, config=config)
    members = [founder]
    names = ["ada", "bob", "cleo", "dan", "eve", "fritz", "gus", "hana"]
    for node in nodes[1:8]:
        node.join_group(group.invite(node.node_id), config=config)
        members.append(node)
    world.run(200.0)
    states = [m.group(CHAT_GROUP).state for m in members]
    print(f"members joined: {sum(s is MemberState.MEMBER for s in states)}/8")

    rooms = [
        ChatRoom(name, member.group(CHAT_GROUP))
        for name, member in zip(names, members)
    ]
    world.run(120.0)  # private views mix

    rooms[0].say("anyone awake?")
    world.run(20.0)
    rooms[3].say("always.")
    rooms[5].say("what did the audit find?")
    world.run(20.0)
    rooms[0].say("nothing. the group stayed invisible.")
    world.run(240.0)  # let the epidemic deliver everywhere

    print("\ntranscript as seen by", names[7])
    for author, text in rooms[7].transcript:
        print(f"  <{author}> {text}")
    coverage = [len(r.transcript) for r in rooms]
    print(f"\nmessages delivered per member: {coverage}")

    # A non-member cannot inject chat: it has no passport for the group.
    outsider = nodes[20]
    assert CHAT_GROUP not in outsider.groups
    target = members[1].group(CHAT_GROUP)
    rejections_before = target.stats.passport_rejections
    forged = {
        "type": "ppss.app",
        "group": CHAT_GROUP,
        "sender_id": outsider.node_id,
        "passport": None,
        "payload": {"app": "chat", "mid": (0, 0), "author": "eve-l",
                    "text": "let me in"},
        "reply_to": None,
    }
    target.handle_message(forged, 256)
    print(
        "\noutsider injection attempt rejected:",
        target.stats.passport_rejections == rejections_before + 1,
    )

    if trace_path:
        world.telemetry.export_jsonl(trace_path)
        print(f"\ntelemetry trace written to {trace_path}")
        print(world.telemetry.render_summary())


if __name__ == "__main__":
    main()
