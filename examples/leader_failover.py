#!/usr/bin/env python3
"""Leader failover: heartbeats, gossip election, group-key rollover.

The paper (Section IV-A) keeps groups joinable when all leaders go
offline: members detect missing heartbeats, run a max-hash gossip
aggregation to elect a new leader, and the winner rolls the group key —
old passports stay valid through the key history.

This script kills the founding leader, watches the election unfold, and
proves the group still works by admitting a brand-new member through the
elected leader.

Run:  python examples/leader_failover.py
"""

from __future__ import annotations

from repro import World, WorldConfig
from repro.core.ppss import MemberState, PpssConfig

GROUP = "cell-7"


def main() -> None:
    world = World(WorldConfig(seed=97))
    print("populating 80 nodes ...")
    world.populate(80)
    world.start_all()
    world.run(120.0)

    # Quick cycles so the failover happens in a short simulated window.
    config = PpssConfig(
        cycle_time=20.0, election_timeout=80.0, election_settle_cycles=2
    )
    nodes = world.alive_nodes()
    founder = nodes[0]
    group = founder.create_group(GROUP, config=config)
    members = [founder]
    for node in nodes[1:8]:
        node.join_group(group.invite(node.node_id), config=config)
        members.append(node)
    world.run(200.0)
    joined = sum(
        m.group(GROUP).state is MemberState.MEMBER for m in members
    )
    print(f"group formed: {joined}/8 members, leader = node {founder.node_id}")
    original_key = founder.group(GROUP).keyring.current.fingerprint
    print(f"group key: {original_key}")

    print(f"\nkilling the leader (node {founder.node_id}) ...")
    world.kill_node(founder.node_id)
    survivors = members[1:]

    world.run(600.0)
    elections = sum(
        s.group(GROUP).election.elections_started > 0 for s in survivors
    )
    new_leaders = [s for s in survivors if s.group(GROUP).keyring.is_leader]
    print(f"members that noticed and joined the election: {elections}/7")
    print(f"elected leader(s): {[n.node_id for n in new_leaders]}")

    rolled = [
        s for s in survivors if len(s.group(GROUP).keyring.history) >= 2
    ]
    print(f"members holding the rolled-over group key: {len(rolled)}/7")

    # The group remains functional: a newcomer joins via the new leader.
    new_leader = new_leaders[0]
    recruit = next(n for n in world.alive_nodes() if GROUP not in n.groups)
    print(
        f"\nnode {recruit.node_id} joins via elected leader "
        f"{new_leader.node_id} ..."
    )
    recruit.join_group(
        new_leader.group(GROUP).invite(recruit.node_id), config=config
    )
    world.run(300.0)
    print(f"recruit state: {recruit.group(GROUP).state.value}")
    print(
        "old-key passports still valid:",
        survivors[0].group(GROUP).keyring.verify_passport(
            world.provider,
            survivors[0].group(GROUP).passport,
            survivors[0].node_id,
        ),
    )


if __name__ == "__main__":
    main()
