"""Adversary subsystem: passive observation, traffic analysis, anonymity metrics.

WHISPER's claim is confidentiality against an honest-but-curious observer;
this package measures what such an observer actually learns:

- :mod:`.observer` — :class:`GlobalObserver`, the deterministic global
  wiretap, and :class:`Corruption`, seeded per-adversary link/node subsets;
- :mod:`.exposure` — full-path traceability: onion flow reconstruction and
  the link-fraction exposure sweep against the paper's p^h bound;
- :mod:`.attacks` — :class:`IntersectionAttack` and
  :class:`PredecessorAttack`, the classic traffic-analysis attacks that
  work *below* full-path observation, emitting ``anonymity.*`` telemetry.

The countermeasures they evaluate live with the protocols they modify:
cover traffic in :meth:`repro.core.ppss.PrivatePeerSamplingService.send_cover`
(armed via the :class:`~repro.workload.spec.CoverTraffic` traffic model)
and batched mixing in
:meth:`repro.core.wcl.WhisperCommunicationLayer.enable_mix_batching`
(armed via ``WorkloadSpec.mix_batch_interval``).  The ``anonymity``
experiment sweeps attacks × corruption fractions × countermeasures.
"""

from .attacks import (
    AttackResult,
    IntersectionAttack,
    PredecessorAttack,
    record_attack_telemetry,
)
from .exposure import (
    OnionFlow,
    adversary_sweep,
    carries_trace,
    exposure,
    extract_flows,
)
from .observer import Corruption, GlobalObserver

__all__ = [
    "AttackResult",
    "Corruption",
    "GlobalObserver",
    "IntersectionAttack",
    "OnionFlow",
    "PredecessorAttack",
    "adversary_sweep",
    "carries_trace",
    "exposure",
    "extract_flows",
    "record_attack_telemetry",
]
