"""Quantifying relationship anonymity against partial link observation.

The paper's threat model grants the attacker *some* links but "not all
three links on the path" (Section III-A): a WCL message is linkable —
i.e. the attacker learns that S and D communicate — only if it observes
every hop of the onion path and chains them.  This module measures that
boundary empirically: given a fully-taped run (a global
:class:`~repro.net.observer.LinkObserver`) it reconstructs each onion's
hop sequence from the measurement trace ids and computes, for an adversary
controlling a random fraction of links, how many confidential messages it
could fully trace.

For a path with h wire hops and an adversary observing each link
independently with probability p, the analytic exposure is p^h — the
empirical sweep in :func:`adversary_sweep` should straddle that curve,
and the paths-of-4-nodes design keeps it negligible for realistic p.

This module is the exposure half of :mod:`repro.adversary`; the
traffic-analysis attacks that work *below* full-path observation live in
:mod:`repro.adversary.attacks`.  ``repro.analysis.anonymity`` re-exports
everything here for backwards compatibility.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.onion import OnionPacket
from ..net.address import NodeId
from ..net.observer import ObservedPacket
from ..parallel import derive_seed

__all__ = [
    "TRAVERSAL_CAP",
    "carries_onion",
    "carries_trace",
    "OnionFlow",
    "extract_flows",
    "exposure",
    "adversary_sweep",
]

TRAVERSAL_CAP = 64
"""Maximum payload-graph items visited when hunting for onion trace ids.

Relay wrappers (``nat.data`` / ``nat.relay``) nest payloads in dicts; a
hostile or cyclic structure must terminate the walk rather than loop, so
deeply nested wrappers simply report "no trace found"."""


def carries_trace(payload: object, trace_id: int) -> bool:
    """Does this wire payload carry the onion with ``trace_id``?

    Walks ``nat.data`` / ``nat.relay`` wrappers.  Measurement-only: trace
    ids exist for instrumentation and would not appear on a real wire.
    """
    stack, steps = [payload], 0
    while stack and steps < TRAVERSAL_CAP:
        steps += 1
        item = stack.pop()
        if isinstance(item, OnionPacket):
            if item.trace_id == trace_id:
                return True
        elif isinstance(item, dict):
            stack.extend(item.values())
    return False


def carries_onion(payload: object) -> bool:
    """Does this wire payload carry *any* onion?

    The traffic-analysis attacks use this to pick onion-bearing frames out
    of the session stream (``nat.data`` wraps everything).  It models the
    framing signature a real eavesdropper keys on — onion frames have a
    distinctive fixed size — without revealing which onion: only presence
    is reported, never a trace id, so the attacks cannot accidentally
    correlate by instrumentation state.
    """
    stack, steps = [payload], 0
    while stack and steps < TRAVERSAL_CAP:
        steps += 1
        item = stack.pop()
        if isinstance(item, OnionPacket):
            return True
        if isinstance(item, dict):
            stack.extend(item.values())
    return False


def _onion_trace_ids(payload: object) -> set[int]:
    """All onion trace ids carried in a wire payload."""
    found: set[int] = set()
    stack, steps = [payload], 0
    while stack and steps < TRAVERSAL_CAP:
        steps += 1
        item = stack.pop()
        if isinstance(item, OnionPacket):
            found.add(item.trace_id)
        elif isinstance(item, dict):
            stack.extend(item.values())
    return found


@dataclass(frozen=True)
class OnionFlow:
    """One onion's journey: the ordered wire hops it traversed."""

    trace_id: int
    hops: tuple[tuple[NodeId, NodeId], ...]

    @property
    def source(self) -> NodeId:
        """The true sender S (ground truth, not attacker knowledge)."""
        return self.hops[0][0]

    @property
    def destination(self) -> NodeId:
        """The true destination D."""
        return self.hops[-1][1]

    def links(self) -> set[tuple[NodeId, NodeId]]:
        """The directed links an adversary must observe to trace the flow."""
        return set(self.hops)


def extract_flows(
    packets: list[ObservedPacket], min_hops: int = 2
) -> list[OnionFlow]:
    """Group a wiretap's packets into per-onion hop sequences.

    Packets whose receiver is unknown (lost/filtered) are skipped; flows
    with fewer than ``min_hops`` observed hops (partially-lost onions) are
    dropped, since their end-to-end pair cannot be established even by the
    ground truth.

    Repeated observations of the same directed hop are collapsed: an onion
    path never legitimately revisits a link, so a repeat is a duplicate
    delivery — fault-shaping directives (``duplicate``/``reorder``) can
    land the copy *after* the next hop was already observed, which is why
    the dedup keys on the whole flow rather than just the previous hop.
    """
    by_trace: dict[int, list[ObservedPacket]] = {}
    for packet in packets:
        if packet.receiver is None:
            continue
        for trace_id in _onion_trace_ids(packet.payload):
            by_trace.setdefault(trace_id, []).append(packet)
    flows = []
    for trace_id, trace_packets in sorted(by_trace.items()):
        trace_packets.sort(key=lambda p: p.time)
        hops: list[tuple[NodeId, NodeId]] = []
        seen: set[tuple[NodeId, NodeId]] = set()
        for packet in trace_packets:
            hop = (packet.sender, packet.receiver)
            if hop not in seen:
                seen.add(hop)
                hops.append(hop)
        if len(hops) >= min_hops:
            flows.append(OnionFlow(trace_id=trace_id, hops=tuple(hops)))
    return flows


def exposure(
    flows: list[OnionFlow], observed_links: set[tuple[NodeId, NodeId]]
) -> float:
    """Fraction of flows the adversary can fully trace (all hops observed)."""
    if not flows:
        return 0.0
    traced = sum(
        1 for flow in flows if flow.links() <= observed_links
    )
    return traced / len(flows)


def adversary_sweep(
    flows: list[OnionFlow],
    link_fractions: tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 0.9),
    trials: int = 20,
    rng: random.Random | None = None,
    seed: int = 0,
) -> dict[float, float]:
    """Mean exposure for adversaries owning random link subsets.

    For each fraction p, samples ``trials`` random subsets of all links that
    ever carried an onion and averages :func:`exposure` over them.

    Callers that thread their own stream (e.g. the ablation sweep passing a
    world RNG) get exactly the draws they always did.  With ``rng=None``
    each fraction draws from its own blake2b stream derived from ``seed``
    — sweep points are then independent of each other and of module
    import order, never the process-global :mod:`random` state.
    """
    all_links = sorted({link for flow in flows for link in flow.links()})
    results: dict[float, float] = {}
    for fraction in link_fractions:
        draw = (
            rng
            if rng is not None
            else random.Random(
                derive_seed(seed, "adversary-sweep", f"{fraction:g}")
            )
        )
        k = round(len(all_links) * fraction)
        total = 0.0
        for _ in range(trials):
            observed = set(draw.sample(all_links, k)) if k else set()
            total += exposure(flows, observed)
        results[fraction] = total / trials
    return results
