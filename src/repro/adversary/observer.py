"""The global passive observer and its seeded corruption sets.

:class:`GlobalObserver` is the adversary's sensorium: a
:class:`~repro.net.observer.LinkObserver` in ``watch_all`` mode, tapping
every wire event the fabric emits.  The *global* tape is ground truth for
the measurement harness; an actual adversary instance only gets the slice
a :class:`Corruption` allows — the links it wiretaps plus every link
adjacent to a node it controls (a corrupted node sees its own traffic in
both directions, the honest-but-curious insider of the paper's threat
model).

Corruption sets are drawn from blake2b-derived RNG streams
(:func:`repro.parallel.derive_seed`), so an adversary is a pure function
of ``(observer seed, label, fractions)``: experiments redraw the same
adversaries at any worker count and traces stay byte-identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..net.address import NodeId
from ..net.observer import LinkObserver, ObservedPacket
from ..parallel import derive_seed

__all__ = ["Corruption", "GlobalObserver"]

Link = tuple[NodeId, NodeId]


@dataclass(frozen=True)
class Corruption:
    """One adversary instance: the directed links and nodes it controls."""

    label: str
    links: frozenset[Link]
    nodes: frozenset[NodeId]

    def sees(self, sender: NodeId, receiver: NodeId) -> bool:
        """Is traffic on this directed link visible to the adversary?"""
        return (
            (sender, receiver) in self.links
            or sender in self.nodes
            or receiver in self.nodes
        )

    def visible_links(self, universe: list[Link] | set[Link]) -> set[Link]:
        """The subset of ``universe`` this adversary can observe."""
        return {link for link in universe if self.sees(*link)}


class GlobalObserver(LinkObserver):
    """Deterministic global wiretap + factory for partial adversaries.

    Records everything (the measurement tape), then carves per-adversary
    views out of it: :meth:`corruption` draws a link/node subset from a
    seeded stream, :meth:`adversary_view` filters the tape down to what
    that adversary would have captured.  Attach with
    ``world.network.add_observer(tap)`` — late attachment is fine and
    bounds the tape to the window under attack.
    """

    def __init__(self, seed: int) -> None:
        super().__init__()
        self.seed = seed
        self.watch_all()

    # -- universes ------------------------------------------------------
    def link_universe(self) -> list[Link]:
        """Every directed link that carried a delivered packet, sorted."""
        return sorted(
            {
                (p.sender, p.receiver)
                for p in self.packets
                if p.receiver is not None
            }
        )

    def node_universe(self) -> list[NodeId]:
        """Every node that sent or received on the tape, sorted."""
        nodes: set[NodeId] = set()
        for p in self.packets:
            nodes.add(p.sender)
            if p.receiver is not None:
                nodes.add(p.receiver)
        return sorted(nodes)

    # -- adversary construction ----------------------------------------
    def corruption(
        self,
        link_fraction: float,
        node_fraction: float = 0.0,
        label: str = "",
    ) -> Corruption:
        """Draw an adversary controlling random link/node subsets.

        The draw derives from ``(seed, label, fractions)`` alone — the
        same call always yields the same adversary, and distinct labels
        yield independent ones (the per-trial redraw of the sweep).
        """
        if not 0.0 <= link_fraction <= 1.0:
            raise ValueError(f"link fraction out of range: {link_fraction}")
        if not 0.0 <= node_fraction <= 1.0:
            raise ValueError(f"node fraction out of range: {node_fraction}")
        rng = random.Random(
            derive_seed(
                self.seed, "corruption", label,
                f"{link_fraction:g}", f"{node_fraction:g}",
            )
        )
        links = self.link_universe()
        nodes = self.node_universe()
        k_links = round(len(links) * link_fraction)
        k_nodes = round(len(nodes) * node_fraction)
        return Corruption(
            label=label,
            links=frozenset(rng.sample(links, k_links)),
            nodes=frozenset(rng.sample(nodes, k_nodes)),
        )

    def adversary_view(self, corruption: Corruption) -> list[ObservedPacket]:
        """The tape reduced to what ``corruption`` actually observes."""
        return [
            p
            for p in self.packets
            if p.receiver is not None and corruption.sees(p.sender, p.receiver)
        ]
