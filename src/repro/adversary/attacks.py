"""Traffic-analysis attacks against WCL routes, run offline over a tape.

Both attacks model a passive adversary who (a) knows the membership of the
target's group — the honest-but-curious insider of the paper's threat
model — and (b) observes the subset of links a
:class:`~repro.adversary.observer.Corruption` grants.  Neither reads
payloads, trace ids or any protocol state: only (time, sender, receiver,
kind) of packets on visible links, exactly what a wire-tap yields.

- :class:`IntersectionAttack` — the classic rounds-based disclosure
  attack: each observed delivery to the target opens a *round*; the
  suspects are intersected with the members seen originating onions in
  the window before it.  A persistent sender survives every round while
  members who only gossip get pruned — unless cover traffic keeps every
  member "active" in every window, which is precisely why that
  countermeasure works.

- :class:`PredecessorAttack` — per observed delivery, chain backwards
  through relays whose in/out timing links them (arrival within ``delta``
  of the forward), and tally the terminal node; over many path refreshes
  the true sender is on every path while mixes rotate, so the argmax
  tally converges on S.  Batched mixing holds forwards past ``delta`` and
  releases them in trace-id order, which severs the timing chain at the
  first relay.

Every attack emits ``anonymity.*`` telemetry via
:func:`record_attack_telemetry`: anonymity-set-size and confidence
histograms, rounds-to-deanonymize, and deanonymized/target counters —
the metrics the ``anonymity`` experiment reports and the telemetry
summary CLI surfaces.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from ..net.address import NodeId
from ..net.observer import ObservedPacket
from .exposure import carries_onion

if TYPE_CHECKING:
    from ..telemetry import Telemetry

__all__ = [
    "AttackResult",
    "IntersectionAttack",
    "PredecessorAttack",
    "record_attack_telemetry",
]

Link = tuple[NodeId, NodeId]

ONION_KIND = "wcl.onion"
"""The logical kind of onion-bearing frames.  On the wire onions travel
inside ``nat.data`` session envelopes, so the attacks classify frames with
:func:`~repro.adversary.exposure.carries_onion` — the presence-only
stand-in for the fixed-size framing signature a real eavesdropper keys on
— rather than trusting the outer kind tag."""


def _is_onion_frame(p: ObservedPacket) -> bool:
    return p.kind == ONION_KIND or carries_onion(p.payload)


@dataclass(frozen=True)
class AttackResult:
    """One attack against one (sender, destination) target."""

    attack: str
    target: NodeId
    true_sender: NodeId
    success: bool
    confidence: float  # attacker's posterior on the true sender, [0, 1]
    rounds: int  # observation rounds (visible deliveries to the target)
    rounds_to_deanonymize: int | None  # 1-based round of first correct lock
    set_sizes: tuple[int, ...]  # anonymity-set size after each round


class IntersectionAttack:
    """Correlate sender activity windows with delivery windows across rounds."""

    name = "intersection"

    def __init__(self, window: float = 4.0) -> None:
        if window <= 0:
            raise ValueError(f"intersection window must be positive, got {window}")
        self.window = window

    def run(
        self,
        packets: Sequence[ObservedPacket],
        visible: set[Link],
        true_sender: NodeId,
        target: NodeId,
        candidates: Iterable[NodeId],
    ) -> AttackResult:
        candidates = sorted(set(candidates))
        deliveries: list[float] = []
        activity: dict[NodeId, list[float]] = {c: [] for c in candidates}
        for p in packets:
            if p.receiver is None or not _is_onion_frame(p):
                continue
            if (p.sender, p.receiver) not in visible:
                continue
            if p.receiver == target:
                deliveries.append(p.time)
            times = activity.get(p.sender)
            if times is not None:
                times.append(p.time)
        deliveries.sort()
        for times in activity.values():
            times.sort()

        suspects = set(candidates)
        set_sizes: list[int] = []
        rounds_to = None
        truth = {true_sender}
        for index, at in enumerate(deliveries, start=1):
            lo = at - self.window
            active = {
                c
                for c in suspects
                if _any_in_window(activity[c], lo, at)
            }
            if not active:
                # An empty round carries no information (the origin's first
                # hop was invisible); intersecting would wipe the suspects.
                set_sizes.append(len(suspects))
                continue
            suspects &= active
            set_sizes.append(len(suspects))
            if rounds_to is None and suspects == truth:
                rounds_to = index
        success = suspects == truth
        confidence = 1.0 / len(suspects) if true_sender in suspects else 0.0
        return AttackResult(
            attack=self.name,
            target=target,
            true_sender=true_sender,
            success=success,
            confidence=confidence,
            rounds=len(deliveries),
            rounds_to_deanonymize=rounds_to if success else None,
            set_sizes=tuple(set_sizes),
        )


class PredecessorAttack:
    """Tally the most-frequent chained-back predecessor per destination."""

    name = "predecessor"

    def __init__(self, delta: float = 0.25, max_chain: int = 16) -> None:
        if delta <= 0:
            raise ValueError(f"predecessor delta must be positive, got {delta}")
        self.delta = delta
        self.max_chain = max_chain

    def run(
        self,
        packets: Sequence[ObservedPacket],
        visible: set[Link],
        true_sender: NodeId,
        target: NodeId,
        candidates: Iterable[NodeId],
    ) -> AttackResult:
        candidates = sorted(set(candidates))
        # arrivals[node] = time-sorted (time, sender) of visible onions INTO node
        arrivals: dict[NodeId, list[tuple[float, NodeId]]] = {}
        deliveries: list[tuple[float, NodeId]] = []
        for p in packets:
            if p.receiver is None or not _is_onion_frame(p):
                continue
            if (p.sender, p.receiver) not in visible:
                continue
            arrivals.setdefault(p.receiver, []).append((p.time, p.sender))
            if p.receiver == target:
                deliveries.append((p.time, p.sender))
        for entries in arrivals.values():
            entries.sort()
        deliveries.sort()

        tallies: dict[NodeId, int] = {}
        set_sizes: list[int] = []
        rounds_to = None
        candidate_set = set(candidates)
        for index, (at, last_hop) in enumerate(deliveries, start=1):
            terminal = self._chain_back(arrivals, last_hop, at)
            tallies[terminal] = tallies.get(terminal, 0) + 1
            leaders = _leaders(tallies, candidate_set)
            # The anonymity set is who the tally currently points at; before
            # any candidate scores, every candidate is equally suspect.
            set_sizes.append(len(leaders) if leaders else len(candidates))
            if rounds_to is None and leaders == {true_sender}:
                rounds_to = index
        leaders = _leaders(tallies, candidate_set)
        success = leaders == {true_sender}
        total = sum(tallies.get(c, 0) for c in candidates)
        confidence = tallies.get(true_sender, 0) / total if total else 0.0
        return AttackResult(
            attack=self.name,
            target=target,
            true_sender=true_sender,
            success=success,
            confidence=confidence,
            rounds=len(deliveries),
            rounds_to_deanonymize=rounds_to if success else None,
            set_sizes=tuple(set_sizes),
        )

    def _chain_back(
        self,
        arrivals: dict[NodeId, list[tuple[float, NodeId]]],
        node: NodeId,
        at: float,
    ) -> NodeId:
        """Walk visible in/out timing links backwards from ``node``."""
        current, when = node, at
        for _ in range(self.max_chain):
            entries = arrivals.get(current)
            if not entries:
                return current
            # Latest visible arrival into `current` within delta before it
            # forwarded: the FIFO-relay heuristic.  Batched mixing defeats
            # exactly this step — held packets depart > delta after arrival.
            i = bisect.bisect_right(entries, (when, _NODE_INF)) - 1
            if i < 0:
                return current
            arrived, sender = entries[i]
            if when - arrived > self.delta:
                return current
            current, when = sender, arrived
        return current


_NODE_INF = float("inf")  # upper sentinel for (time, sender) bisection


def _any_in_window(times: list[float], lo: float, hi: float) -> bool:
    i = bisect.bisect_left(times, lo)
    return i < len(times) and times[i] <= hi


def _leaders(tallies: dict[NodeId, int], candidates: set[NodeId]) -> set[NodeId]:
    """Candidates tied at the maximum (non-zero) tally."""
    scored = {c: tallies[c] for c in candidates if tallies.get(c, 0) > 0}
    if not scored:
        return set()
    best = max(scored.values())
    return {c for c, count in scored.items() if count == best}


def record_attack_telemetry(
    telemetry: "Telemetry",
    variant: str,
    fraction: float,
    results: Sequence[AttackResult],
) -> None:
    """Emit the ``anonymity.*`` metrics for one (variant, fraction) batch.

    Labels carry the attack name, the countermeasure variant and the
    corruption fraction (as a string, so label sets stay hashable and
    stable in the export).  Recording order is deterministic — callers
    iterate fractions and targets in sorted order — so the metrics land
    in the byte-identical trace the experiment hashes.
    """
    for result in results:
        labels = {
            "layer": "anonymity",
            "attack": result.attack,
            "variant": variant,
            "fraction": f"{fraction:g}",
        }
        telemetry.counter("anonymity.targets", **labels).inc()
        if result.success:
            telemetry.counter("anonymity.deanonymized", **labels).inc()
        telemetry.histogram("anonymity.confidence", **labels).observe(
            result.confidence
        )
        set_size = telemetry.histogram("anonymity.set_size", **labels)
        for size in result.set_sizes:
            set_size.observe(size)
        if result.rounds_to_deanonymize is not None:
            telemetry.histogram(
                "anonymity.rounds_to_deanonymize", **labels
            ).observe(result.rounds_to_deanonymize)
