"""CLI: summarize an exported telemetry trace.

Usage::

    python -m repro.telemetry trace.jsonl

Prints the span-name tally, example span trees for the busiest traces, and
the counter/histogram highlights — the target of ``make trace``.
"""

from __future__ import annotations

import sys

from .summary import summarize_file


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if len(args) != 1 or args[0] in ("-h", "--help"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    print(summarize_file(args[0]))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
