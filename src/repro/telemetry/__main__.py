"""CLI: summarize an exported telemetry trace.

Usage::

    python -m repro.telemetry trace.jsonl
    python -m repro.telemetry summary trace.jsonl

Prints the span-name tally, example span trees for the busiest traces,
the counter/histogram highlights, and — when the trace carries
``anonymity.*`` metrics — the adversary scoreboard (attack success and
anonymity-set-size p50/p95 per countermeasure variant).  The target of
``make trace``.
"""

from __future__ import annotations

import sys

from .summary import summarize_file


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    # `summary` is the explicit subcommand; the bare-path form stays for
    # back-compat with `make trace` muscle memory.
    if args and args[0] == "summary":
        args = args[1:]
    if len(args) != 1 or args[0] in ("-h", "--help"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    print(summarize_file(args[0]))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
