"""Metric instruments: counters, gauges, histograms — plus no-op twins.

Every instrument exists in two forms: a recording one handed out by an
enabled :class:`~repro.telemetry.registry.MetricsRegistry`, and a shared
no-op singleton handed out by a disabled registry.  Call sites therefore
never branch on "is telemetry on?": they unconditionally call ``inc`` /
``set`` / ``observe``, and the disabled path costs one empty method call.

Counters accept float increments (the crypto layer mirrors charged CPU
milliseconds through them), so "counter" here means *monotonic accumulator*
rather than strictly integer count.
"""

from __future__ import annotations

from ..metrics.stats import percentile

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "NoopCounter",
    "NoopGauge",
    "NoopHistogram",
    "NOOP_COUNTER",
    "NOOP_GAUGE",
    "NOOP_HISTOGRAM",
]


class Counter:
    """A monotonically increasing accumulator."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: tuple[tuple[str, object], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self.value += amount


class Gauge:
    """A value that can move both ways (queue depths, view sizes)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: tuple[tuple[str, object], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount


class Histogram:
    """A sample distribution; keeps raw samples for exact percentiles.

    Simulation runs are bounded, so storing raw samples is affordable and
    keeps ``aggregate`` exact rather than bucket-approximated.
    """

    __slots__ = ("name", "labels", "samples", "sum")

    kind = "histogram"

    def __init__(self, name: str, labels: tuple[tuple[str, object], ...]) -> None:
        self.name = name
        self.labels = labels
        self.samples: list[float] = []
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.samples.append(value)
        self.sum += value

    @property
    def count(self) -> int:
        return len(self.samples)

    def quantile(self, q: float) -> float:
        return percentile(self.samples, q)


class NoopCounter:
    """Shared do-nothing counter returned by disabled registries."""

    __slots__ = ()

    kind = "counter"
    name = ""
    labels: tuple[tuple[str, object], ...] = ()
    value = 0

    def inc(self, amount: float = 1) -> None:
        pass


class NoopGauge:
    __slots__ = ()

    kind = "gauge"
    name = ""
    labels: tuple[tuple[str, object], ...] = ()
    value = 0

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass


class NoopHistogram:
    __slots__ = ()

    kind = "histogram"
    name = ""
    labels: tuple[tuple[str, object], ...] = ()
    samples: list[float] = []
    sum = 0.0
    count = 0

    def observe(self, value: float) -> None:
        pass


NOOP_COUNTER = NoopCounter()
NOOP_GAUGE = NoopGauge()
NOOP_HISTOGRAM = NoopHistogram()
