"""Metric instruments: counters, gauges, histograms — plus no-op twins.

Every instrument exists in two forms: a recording one handed out by an
enabled :class:`~repro.telemetry.registry.MetricsRegistry`, and a shared
no-op singleton handed out by a disabled registry.  Call sites therefore
never branch on "is telemetry on?": they unconditionally call ``inc`` /
``set`` / ``observe``, and the disabled path costs one empty method call.

Counters accept float increments (the crypto layer mirrors charged CPU
milliseconds through them), so "counter" here means *monotonic accumulator*
rather than strictly integer count.
"""

from __future__ import annotations

import hashlib
import random

from ..metrics.stats import percentile

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "NoopCounter",
    "NoopGauge",
    "NoopHistogram",
    "NOOP_COUNTER",
    "NOOP_GAUGE",
    "NOOP_HISTOGRAM",
    "RESERVOIR_SIZE",
]

RESERVOIR_SIZE = 8192
"""Default per-histogram sample cap; beyond it, reservoir sampling kicks in."""


class Counter:
    """A monotonically increasing accumulator."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: tuple[tuple[str, object], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self.value += amount


class Gauge:
    """A value that can move both ways (queue depths, view sizes)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: tuple[tuple[str, object], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount


class Histogram:
    """A sample distribution with O(1) memory and exact totals.

    ``count``, ``sum``, ``min`` and ``max`` are always exact.  Raw samples
    are kept verbatim up to ``reservoir`` observations (quantiles are then
    exact, as before); past the cap, Vitter's Algorithm R keeps a uniform
    reservoir, so quantiles degrade gracefully into unbiased estimates
    while memory stays bounded — what multi-hour workload runs need.

    The reservoir's replacement decisions come from a private RNG seeded
    by a stable hash of ``(name, labels)``, never from global randomness
    or any seeded protocol stream: recording samples consumes no
    simulation entropy, two same-seed runs keep byte-identical reservoirs,
    and enabling telemetry still cannot perturb a run.
    """

    __slots__ = ("name", "labels", "samples", "sum", "count", "min", "max",
                 "reservoir", "_rng")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, object], ...],
        reservoir: int = RESERVOIR_SIZE,
    ) -> None:
        if reservoir < 1:
            raise ValueError(f"histogram reservoir must be >= 1, got {reservoir}")
        self.name = name
        self.labels = labels
        self.samples: list[float] = []
        self.sum = 0.0
        self.count = 0
        self.min: float | None = None
        self.max: float | None = None
        self.reservoir = reservoir
        self._rng: random.Random | None = None  # created on first overflow

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if self.count <= self.reservoir:
            self.samples.append(value)
            return
        # Algorithm R: the i-th observation replaces a reservoir slot with
        # probability reservoir/i, keeping the sample uniform over history.
        if self._rng is None:
            material = f"{self.name}|{self.labels!r}".encode("utf-8")
            seed = int.from_bytes(
                hashlib.blake2b(material, digest_size=8).digest(), "big"
            )
            self._rng = random.Random(seed)
        slot = self._rng.randrange(self.count)
        if slot < self.reservoir:
            self.samples[slot] = value

    @property
    def saturated(self) -> bool:
        """True once the reservoir overflowed (quantiles are estimates)."""
        return self.count > self.reservoir

    def quantile(self, q: float) -> float:
        """Percentile over the retained samples — exact until saturation."""
        return percentile(self.samples, q)

    def percentiles(self) -> dict[str, float]:
        """The workload-report trio: p50/p95/p99 (exact until saturation)."""
        return {
            "p50": self.quantile(50.0),
            "p95": self.quantile(95.0),
            "p99": self.quantile(99.0),
        }


class NoopCounter:
    """Shared do-nothing counter returned by disabled registries."""

    __slots__ = ()

    kind = "counter"
    name = ""
    labels: tuple[tuple[str, object], ...] = ()
    value = 0

    def inc(self, amount: float = 1) -> None:
        pass


class NoopGauge:
    __slots__ = ()

    kind = "gauge"
    name = ""
    labels: tuple[tuple[str, object], ...] = ()
    value = 0

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass


class NoopHistogram:
    __slots__ = ()

    kind = "histogram"
    name = ""
    labels: tuple[tuple[str, object], ...] = ()
    samples: list[float] = []
    sum = 0.0
    count = 0
    min: float | None = None
    max: float | None = None
    saturated = False

    def observe(self, value: float) -> None:
        pass


NOOP_COUNTER = NoopCounter()
NOOP_GAUGE = NoopGauge()
NOOP_HISTOGRAM = NoopHistogram()
