"""Span-based tracing over the simulated clock.

A span is a named interval ``[start, end]`` attributed to a node and a
protocol layer, optionally keyed by a *trace id* — for WCL onions the
measurement-only ``OnionPacket.trace_id``, which correlates everything one
confidential message causes across the network: the source's path build,
each mix's layer decrypt, NAT relay forwards, and the final delivery.

Three recording styles cover the stack's needs:

- ``start(...)`` / ``end(span)`` for intervals that straddle simulated
  events (a PPSS exchange from first attempt to outcome);
- ``span(...)`` as a context manager for work nested inside one callback —
  nested uses parent automatically (the active-span stack is sound because
  the simulator is single-threaded);
- ``instant(...)`` for point events (an onion hitting the wire).

The tracer never mutates protocol behaviour and consumes no randomness, so
a run with tracing enabled is event-for-event identical to one without.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["Span", "Tracer", "NOOP_SPAN"]


@dataclass(slots=True)
class Span:
    """One named interval on the simulated timeline."""

    span_id: int
    name: str
    start: float
    end: float | None = None
    trace_id: int | None = None
    node: int | None = None
    layer: str | None = None
    parent_id: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Span length in simulated seconds (0.0 while unfinished)."""
        return (self.end - self.start) if self.end is not None else 0.0


# Shared placeholder returned by a disabled tracer: callers can pass it back
# to ``end`` (a no-op) without branching on the enabled flag.
NOOP_SPAN = Span(span_id=0, name="", start=0.0, end=0.0)


class Tracer:
    """Records spans against an external clock (the simulator's)."""

    def __init__(
        self, clock: Callable[[], float] | None = None, enabled: bool = True
    ) -> None:
        self.enabled = enabled
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._next_id = 1
        self._spans: list[Span] = []
        self._by_trace: dict[int, list[Span]] = {}
        self._stack: list[Span] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def start(
        self,
        name: str,
        *,
        trace_id: int | None = None,
        node: int | None = None,
        layer: str | None = None,
        parent: Span | None = None,
        at: float | None = None,
        **attrs: Any,
    ) -> Span:
        """Open a span; ``parent`` defaults to the innermost active ``span()``."""
        if not self.enabled:
            return NOOP_SPAN
        if parent is None and self._stack:
            parent = self._stack[-1]
        span = Span(
            span_id=self._next_id,
            name=name,
            start=self._clock() if at is None else at,
            trace_id=trace_id,
            node=node,
            layer=layer,
            parent_id=parent.span_id if parent is not None else None,
            attrs=attrs,
        )
        self._next_id += 1
        self._spans.append(span)
        if trace_id is not None:
            self._by_trace.setdefault(trace_id, []).append(span)
        return span

    def end(self, span: Span, *, at: float | None = None, **attrs: Any) -> None:
        """Close a span (idempotent for the no-op placeholder)."""
        if span is NOOP_SPAN or not self.enabled:
            return
        span.end = self._clock() if at is None else at
        if attrs:
            span.attrs.update(attrs)

    def instant(
        self,
        name: str,
        *,
        trace_id: int | None = None,
        node: int | None = None,
        layer: str | None = None,
        at: float | None = None,
        **attrs: Any,
    ) -> Span:
        """A zero-duration point event."""
        span = self.start(
            name, trace_id=trace_id, node=node, layer=layer, at=at, **attrs
        )
        self.end(span, at=span.start)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        *,
        trace_id: int | None = None,
        node: int | None = None,
        layer: str | None = None,
        **attrs: Any,
    ) -> Iterator[Span]:
        """Context manager for synchronous work; nests via the active stack."""
        span = self.start(
            name, trace_id=trace_id, node=node, layer=layer, **attrs
        )
        if span is not NOOP_SPAN:
            self._stack.append(span)
        try:
            yield span
        finally:
            if span is not NOOP_SPAN:
                self._stack.pop()
            self.end(span)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def spans(self) -> list[Span]:
        """All spans in creation order (deterministic across same-seed runs)."""
        return self._spans

    def __len__(self) -> int:
        return len(self._spans)

    def spans_by_trace(self, trace_id: int) -> list[Span]:
        """Every span tied to one trace id, ordered by (start, span id)."""
        spans = self._by_trace.get(trace_id, [])
        return sorted(spans, key=lambda s: (s.start, s.span_id))

    def trace_ids(self) -> list[int]:
        """All trace ids seen, in first-appearance order."""
        return list(self._by_trace.keys())

    def spans_named(self, name: str) -> list[Span]:
        return [s for s in self._spans if s.name == name]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self._spans if s.parent_id == span.span_id]
