"""The metrics side of the telemetry subsystem.

A :class:`MetricsRegistry` hands out instruments keyed by ``(name, labels)``
where labels are free-form keyword pairs — by convention every instrument in
the WHISPER stack carries ``node`` (the owning node id, when applicable) and
``layer`` (``"sim"``, ``"net"``, ``"nat"``, ``"pss"``, ``"wcl"``, ``"ppss"``,
``"crypto"``).  Instruments are cached: asking twice for the same key
returns the same object, so hot paths can pre-fetch them.

A registry created with ``enabled=False`` hands out the shared no-op
singletons and stores nothing; the query surface then reports empty.
"""

from __future__ import annotations

from typing import Iterator

from ..metrics.stats import percentile
from .instruments import (
    NOOP_COUNTER,
    NOOP_GAUGE,
    NOOP_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
)

__all__ = ["MetricsRegistry"]

LabelKey = tuple[tuple[str, object], ...]
MetricKey = tuple[str, LabelKey]


def _label_key(labels: dict[str, object]) -> LabelKey:
    return tuple(sorted(labels.items(), key=lambda kv: kv[0]))


class MetricsRegistry:
    """Counters, gauges and histograms, namespaced by name + labels."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: dict[MetricKey, Counter | Gauge | Histogram] = {}

    # ------------------------------------------------------------------
    # instrument handles
    # ------------------------------------------------------------------
    def _get(self, factory, noop, name: str, labels: dict[str, object]):
        if not self.enabled:
            return noop
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory(name, key[1])
            self._metrics[key] = metric
        elif not isinstance(metric, factory):
            raise TypeError(
                f"metric {name!r}{dict(key[1])} already registered as "
                f"{metric.kind}, requested {factory.kind}"
            )
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(Counter, NOOP_COUNTER, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(Gauge, NOOP_GAUGE, name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._get(Histogram, NOOP_HISTOGRAM, name, labels)

    # ------------------------------------------------------------------
    # query surface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def items(self) -> Iterator[tuple[MetricKey, Counter | Gauge | Histogram]]:
        """All instruments in deterministic (name, labels) order."""
        return iter(sorted(self._metrics.items(), key=lambda kv: _sort_key(kv[0])))

    def value(self, name: str, **labels: object) -> float:
        """Current value of one counter/gauge (0 when never touched)."""
        metric = self._metrics.get((name, _label_key(labels)))
        if metric is None:
            return 0
        if isinstance(metric, Histogram):
            raise TypeError(f"{name!r} is a histogram; use aggregate()")
        return metric.value

    def collect(self, name: str) -> dict[LabelKey, Counter | Gauge | Histogram]:
        """Every instrument registered under ``name``, keyed by its labels."""
        return {
            labels: metric
            for (metric_name, labels), metric in self._metrics.items()
            if metric_name == name
        }

    def values_by_label(self, name: str, label: str) -> dict[object, float]:
        """Sum counter/gauge values under ``name``, grouped by one label.

        The workhorse of the experiment rewires: e.g.
        ``values_by_label("net.up_bytes", "node")`` yields per-node upload
        totals regardless of any other labels on the instruments.
        """
        out: dict[object, float] = {}
        for labels, metric in self.collect(name).items():
            label_map = dict(labels)
            if label not in label_map:
                continue
            key = label_map[label]
            out[key] = out.get(key, 0) + metric.value
        return out

    def aggregate(
        self,
        name: str,
        percentiles: tuple[float, ...] = (50.0, 90.0, 99.0),
    ) -> dict[str, float]:
        """Merge every instrument under ``name`` into one summary.

        Counters/gauges aggregate to ``{"count": instruments, "sum": total}``;
        histograms pool their raw samples and add min/max plus the requested
        percentile grid (keys ``"p50"`` etc.).  Returns ``{}`` when nothing
        was recorded under the name.
        """
        metrics = self.collect(name)
        if not metrics:
            return {}
        kinds = {m.kind for m in metrics.values()}
        if kinds == {"histogram"}:
            # count/sum/min/max are exact even past the reservoir cap; the
            # percentile grid pools the retained samples (exact until a
            # histogram saturates, an unbiased estimate afterwards).
            samples: list[float] = []
            count = 0
            total = 0.0
            lows: list[float] = []
            highs: list[float] = []
            for metric in metrics.values():
                samples.extend(metric.samples)  # type: ignore[union-attr]
                count += metric.count
                total += metric.sum
                if metric.min is not None:  # type: ignore[union-attr]
                    lows.append(metric.min)  # type: ignore[union-attr]
                    highs.append(metric.max)  # type: ignore[union-attr]
            summary = {"count": count, "sum": total}
            if samples:
                summary["min"] = min(lows)
                summary["max"] = max(highs)
                for q in percentiles:
                    summary[f"p{q:g}"] = percentile(samples, q)
            return summary
        return {
            "count": len(metrics),
            "sum": sum(m.value for m in metrics.values()),  # type: ignore[union-attr]
        }

    def snapshot(self, prefix: str = "") -> dict[MetricKey, float]:
        """Copy of all counter/gauge values (histograms report their count).

        Experiments diff two snapshots to measure a window, the telemetry
        equivalent of the bandwidth accountant's epoch mechanism.
        """
        out: dict[MetricKey, float] = {}
        for key, metric in self._metrics.items():
            if not key[0].startswith(prefix):
                continue
            out[key] = metric.count if isinstance(metric, Histogram) else metric.value
        return out


def _sort_key(key: MetricKey) -> tuple[str, str]:
    name, labels = key
    return name, repr(labels)
