"""Human-readable views of a telemetry capture: span trees and top metrics.

Used by ``make trace`` (via ``python -m repro.telemetry``) and handy from a
REPL when poking at a live :class:`~repro.telemetry.Telemetry`.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from typing import Any, Iterable

from .spans import Span

__all__ = ["render_span_tree", "render_trace_summary", "summarize_file"]


def _tree_order(spans: list[Span]) -> list[tuple[int, Span]]:
    """(depth, span) pairs in depth-first order following parent links."""
    by_parent: dict[int | None, list[Span]] = {}
    known = {s.span_id for s in spans}
    for span in sorted(spans, key=lambda s: (s.start, s.span_id)):
        parent = span.parent_id if span.parent_id in known else None
        by_parent.setdefault(parent, []).append(span)
    out: list[tuple[int, Span]] = []

    def _walk(parent: int | None, depth: int) -> None:
        for span in by_parent.get(parent, []):
            out.append((depth, span))
            _walk(span.span_id, depth + 1)

    _walk(None, 0)
    return out


def render_span_tree(spans: list[Span], indent: str = "  ") -> str:
    """One line per span, indented by parent nesting, timeline-ordered."""
    lines = []
    for depth, span in _tree_order(spans):
        duration = f"{span.duration * 1000.0:8.3f} ms" if span.finished else "   (open)"
        where = []
        if span.node is not None:
            where.append(f"node={span.node}")
        if span.layer:
            where.append(span.layer)
        suffix = f"  [{' '.join(where)}]" if where else ""
        lines.append(
            f"{span.start:10.3f}s {duration} {indent * depth}{span.name}{suffix}"
        )
    return "\n".join(lines)


def render_trace_summary(
    spans: Iterable[Span], max_traces: int = 3, max_spans: int = 40
) -> str:
    """Aggregate span-name tallies plus example per-trace trees."""
    spans = list(spans)
    lines = [f"spans: {len(spans)}"]
    tally = TallyCounter(span.name for span in spans)
    width = max((len(name) for name in tally), default=4)
    for name, count in sorted(tally.items()):
        total_ms = sum(s.duration for s in spans if s.name == name) * 1000.0
        lines.append(f"  {name.ljust(width)}  x{count:<6d} {total_ms:10.3f} ms total")
    traces: dict[int, list[Span]] = {}
    for span in spans:
        if span.trace_id is not None:
            traces.setdefault(span.trace_id, []).append(span)
    lines.append(f"traces: {len(traces)}")
    # Show the busiest traces: those are the multi-hop journeys worth reading.
    ranked = sorted(
        traces.items(), key=lambda kv: (-len(kv[1]), kv[0])
    )[:max_traces]
    for trace_id, trace_spans in ranked:
        lines.append(f"\ntrace {trace_id} ({len(trace_spans)} spans)")
        shown = sorted(trace_spans, key=lambda s: (s.start, s.span_id))[:max_spans]
        lines.append(render_span_tree(shown))
    return "\n".join(lines)


def summarize_file(path: str) -> str:
    """Summary of an exported JSONL file: span trees + metric highlights."""
    from .export import load_jsonl

    spans, metrics = load_jsonl(path)
    lines = [f"telemetry capture: {path}", render_trace_summary(spans)]
    counters = [m for m in metrics if m["kind"] == "counter"]
    if counters:
        totals: dict[str, float] = {}
        for record in counters:
            totals[record["name"]] = totals.get(record["name"], 0) + record["value"]
        lines.append(f"\ncounters ({len(counters)} instruments)")
        width = max(len(name) for name in totals)
        for name, value in sorted(totals.items()):
            lines.append(f"  {name.ljust(width)}  {value:g}")
    histograms = [m for m in metrics if m["kind"] == "histogram"]
    if histograms:
        lines.append(f"\nhistograms ({len(histograms)})")
        for record in sorted(histograms, key=_metric_key):
            stats = ", ".join(
                f"{key}={record[key]:g}"
                for key in ("count", "p50", "p90", "max")
                if key in record
            )
            lines.append(f"  {record['name']}{record['labels']}: {stats}")
    anonymity = _render_anonymity(metrics)
    if anonymity:
        lines.append(anonymity)
    return "\n".join(lines)


def _render_anonymity(metrics: list[dict[str, Any]]) -> str:
    """The adversary scoreboard: one row per (variant, attack, fraction).

    Joins the ``anonymity.deanonymized``/``anonymity.targets`` counters
    into a success rate and pulls the anonymity-set-size p50/p95 from the
    reservoir histograms (p95 is exported for ``anonymity.*`` only).
    """
    targets: dict[tuple[str, str, str], float] = {}
    wins: dict[tuple[str, str, str], float] = {}
    sizes: dict[tuple[str, str, str], dict[str, Any]] = {}
    for record in metrics:
        name = record.get("name", "")
        if not name.startswith("anonymity."):
            continue
        labels = record.get("labels", {})
        key = (
            str(labels.get("variant", "?")),
            str(labels.get("attack", "?")),
            str(labels.get("fraction", "?")),
        )
        if name == "anonymity.targets":
            targets[key] = targets.get(key, 0) + record["value"]
        elif name == "anonymity.deanonymized":
            wins[key] = wins.get(key, 0) + record["value"]
        elif name == "anonymity.set_size":
            sizes[key] = record
    if not targets:
        return ""
    lines = [f"\nanonymity attacks ({len(targets)} cells)"]
    header = (
        f"  {'variant':<12} {'attack':<14} {'fraction':>8} "
        f"{'success':>8} {'set p50':>8} {'set p95':>8}"
    )
    lines.append(header)
    for key in sorted(targets, key=lambda k: (k[0], k[1], _fraction_sort(k[2]))):
        variant, attack, fraction = key
        total = targets[key]
        rate = wins.get(key, 0) / total if total else 0.0
        size = sizes.get(key, {})
        p50 = f"{size['p50']:g}" if "p50" in size else "-"
        p95 = f"{size['p95']:g}" if "p95" in size else "-"
        lines.append(
            f"  {variant:<12} {attack:<14} {fraction:>8} "
            f"{rate:>8.1%} {p50:>8} {p95:>8}"
        )
    return "\n".join(lines)


def _fraction_sort(text: str) -> float:
    try:
        return float(text)
    except ValueError:
        return float("inf")


def _metric_key(record: dict[str, Any]) -> tuple[str, str]:
    return record["name"], repr(sorted(record["labels"].items()))
