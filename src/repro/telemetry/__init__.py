"""Unified telemetry for the WHISPER stack: metrics, spans, trace export.

One :class:`Telemetry` instance per :class:`~repro.harness.world.World`
captures everything the evaluation needs — event-loop throughput, per-link
traffic, per-hop onion timings, gossip rounds, NAT traversal outcomes and
charged crypto CPU — on the *simulated* clock, so captures are deterministic
and byte-identical across same-seed runs (see :mod:`.export`).

The facade bundles a :class:`~.registry.MetricsRegistry` and a
:class:`~.spans.Tracer` behind one object with pass-through helpers::

    tel = Telemetry(clock=lambda: sim.now)
    tel.counter("net.up_bytes", node=7, layer="net").inc(size)
    with tel.span("wcl.build", trace_id=tid, node=7, layer="wcl"):
        ...
    tel.aggregate("crypto.ms")            # {"count": ..., "sum": ...}
    tel.spans_by_trace(tid)               # the onion's full journey
    tel.export_jsonl("trace.jsonl")       # deterministic JSONL

``NULL_TELEMETRY`` is the shared disabled instance: protocol layers default
to it so instrumentation costs one no-op call when telemetry is off and the
layers never branch on an Optional.
"""

from __future__ import annotations

from typing import Any, Callable

from .export import export_jsonl, export_lines, load_jsonl
from .instruments import Counter, Gauge, Histogram
from .registry import MetricsRegistry
from .spans import NOOP_SPAN, Span, Tracer
from .summary import render_span_tree, render_trace_summary, summarize_file

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "NULL_TELEMETRY",
    "Span",
    "Telemetry",
    "Tracer",
    "export_jsonl",
    "export_lines",
    "load_jsonl",
    "render_span_tree",
    "render_trace_summary",
    "summarize_file",
]


class Telemetry:
    """Metrics registry + tracer sharing one enabled flag and clock."""

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self.metrics = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(clock=clock, enabled=enabled)

    # -- metrics pass-through ------------------------------------------
    def counter(self, name: str, **labels: object) -> Counter:
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self.metrics.histogram(name, **labels)

    def aggregate(
        self, name: str, percentiles: tuple[float, ...] = (50.0, 90.0, 99.0)
    ) -> dict[str, float]:
        return self.metrics.aggregate(name, percentiles)

    # -- tracing pass-through ------------------------------------------
    def span_start(self, name: str, **kwargs: Any) -> Span:
        return self.tracer.start(name, **kwargs)

    def span_end(self, span: Span, **kwargs: Any) -> None:
        self.tracer.end(span, **kwargs)

    def span(self, name: str, **kwargs: Any):
        return self.tracer.span(name, **kwargs)

    def instant(self, name: str, **kwargs: Any) -> Span:
        return self.tracer.instant(name, **kwargs)

    def spans_by_trace(self, trace_id: int) -> list[Span]:
        return self.tracer.spans_by_trace(trace_id)

    def spans_named(self, name: str) -> list[Span]:
        return self.tracer.spans_named(name)

    # -- export ---------------------------------------------------------
    def export_jsonl(self, path: str | None = None) -> str:
        return export_jsonl(self, path)

    def render_summary(self) -> str:
        return render_trace_summary(self.tracer.spans)


NULL_TELEMETRY = Telemetry(enabled=False)
"""Shared disabled instance used as the default by every protocol layer."""
