"""Deterministic JSONL export of a telemetry capture.

The export is the regression substrate: two same-seed runs must produce
**byte-identical** files, so diffing traces catches any behavioural drift a
perf PR introduces.  Determinism is engineered, not hoped for:

- spans are emitted in (start, creation order) — both deterministic under
  the simulator's total event order;
- span ids, trace ids and parent references are *renumbered* in order of
  first appearance.  Raw ids come from module-level counters (e.g. the
  onion ``trace_id``) which keep counting across Worlds in one process;
  renumbering makes the file a pure function of the run itself;
- JSON is serialized with sorted keys and compact separators; floats use
  Python's shortest-repr formatting, which is exact and stable.

Line format (one JSON object each)::

    {"kind":"meta","format":"whisper-telemetry","version":1}
    {"kind":"span","id":1,"trace":1,"parent":null,"name":...,"node":...,
     "layer":...,"start":...,"end":...,"attrs":{...}}
    {"kind":"counter","name":...,"labels":{...},"value":...}
    {"kind":"gauge",...}
    {"kind":"histogram","name":...,"labels":{...},"count":...,"sum":...,
     "min":...,"max":...,"p50":...,"p90":...,"p99":...}
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Iterator

from .instruments import Counter, Gauge, Histogram
from .registry import MetricsRegistry
from .spans import Span, Tracer

if TYPE_CHECKING:
    from . import Telemetry

__all__ = ["export_jsonl", "export_lines", "load_jsonl"]

FORMAT_NAME = "whisper-telemetry"
FORMAT_VERSION = 1
_HISTOGRAM_LEVELS = (50.0, 90.0, 99.0)
# anonymity.* records additionally carry p95 (the summary CLI's set-size
# column); scoping the extra level keeps every pre-existing trace
# byte-identical.
_ANONYMITY_LEVELS = (50.0, 90.0, 95.0, 99.0)


def _json(obj: dict[str, Any]) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=str)


def export_lines(telemetry: "Telemetry") -> Iterator[str]:
    """Yield the JSONL lines (without newlines) for one capture."""
    yield _json(
        {"kind": "meta", "format": FORMAT_NAME, "version": FORMAT_VERSION}
    )
    yield from _span_lines(telemetry.tracer)
    yield from _metric_lines(telemetry.metrics)


def export_jsonl(telemetry: "Telemetry", path: str | None = None) -> str:
    """Render the capture; write it to ``path`` when given."""
    text = "\n".join(export_lines(telemetry)) + "\n"
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
    return text


def _span_lines(tracer: Tracer) -> Iterator[str]:
    ordered = sorted(tracer.spans, key=lambda s: (s.start, s.span_id))
    span_ids: dict[int, int] = {}
    trace_ids: dict[int, int] = {}
    for span in ordered:
        span_ids[span.span_id] = len(span_ids) + 1
        if span.trace_id is not None and span.trace_id not in trace_ids:
            trace_ids[span.trace_id] = len(trace_ids) + 1
    for span in ordered:
        yield _json(
            {
                "kind": "span",
                "id": span_ids[span.span_id],
                "trace": trace_ids.get(span.trace_id),
                "parent": span_ids.get(span.parent_id),
                "name": span.name,
                "node": span.node,
                "layer": span.layer,
                "start": span.start,
                "end": span.end,
                "attrs": span.attrs,
            }
        )


def _metric_lines(registry: MetricsRegistry) -> Iterator[str]:
    for (name, labels), metric in registry.items():
        record: dict[str, Any] = {
            "kind": metric.kind,
            "name": name,
            "labels": dict(labels),
        }
        if isinstance(metric, (Counter, Gauge)):
            record["value"] = metric.value
        elif isinstance(metric, Histogram):
            record["count"] = metric.count
            record["sum"] = metric.sum
            if metric.samples:
                # min/max are tracked exactly; quantiles come from the
                # (reservoir-bounded) retained samples.
                record["min"] = metric.min
                record["max"] = metric.max
                levels = (
                    _ANONYMITY_LEVELS
                    if name.startswith("anonymity.")
                    else _HISTOGRAM_LEVELS
                )
                for q in levels:
                    record[f"p{q:g}"] = metric.quantile(q)
        yield _json(record)


def load_jsonl(path: str) -> tuple[list[Span], list[dict[str, Any]]]:
    """Parse an exported file back into spans + metric records.

    The spans come back as :class:`Span` objects (with the renumbered ids),
    metrics as the raw dictionaries — enough for offline analysis and the
    ``python -m repro.telemetry`` summary tool.
    """
    spans: list[Span] = []
    metrics: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind == "meta":
                if record.get("format") != FORMAT_NAME:
                    raise ValueError(f"not a telemetry trace: {path}")
            elif kind == "span":
                spans.append(
                    Span(
                        span_id=record["id"],
                        name=record["name"],
                        start=record["start"],
                        end=record["end"],
                        trace_id=record.get("trace"),
                        node=record.get("node"),
                        layer=record.get("layer"),
                        parent_id=record.get("parent"),
                        attrs=record.get("attrs", {}),
                    )
                )
            else:
                metrics.append(record)
    return spans, metrics
