"""Partial views: the core data structure of a peer sampling service.

A view is a small set of :class:`ViewEntry` (descriptor + age).  Ages count
gossip cycles since the pointed-to node inserted itself (age 0); they drive
both partner selection (oldest first, the *healer* strategy) and merge
decisions (keep freshest).

Ages advance lazily: :meth:`View.increment_ages` bumps a view-level offset
in O(1) instead of rebuilding every entry, and entries are materialized with
their absolute age only when read.  A small cache keeps repeated reads
within one cycle from re-materializing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import chain

from ..nat.traversal import NodeDescriptor
from ..net.address import NodeId, NodeKind

__all__ = ["ViewEntry", "View"]


@dataclass(frozen=True, slots=True)
class ViewEntry:
    """One view slot: who, how to reach them, and how stale the info is."""

    descriptor: NodeDescriptor
    age: int = 0

    @property
    def node_id(self) -> NodeId:
        return self.descriptor.node_id

    @property
    def is_public(self) -> bool:
        return self.descriptor.kind is NodeKind.PUBLIC

    def aged(self) -> "ViewEntry":
        return ViewEntry(self.descriptor, self.age + 1)

    def via(self, forwarder: NodeId) -> "ViewEntry":
        """Entry as shipped to a gossip partner (route extended)."""
        return ViewEntry(self.descriptor.via(forwarder), self.age)


class View:
    """A bounded, deduplicated set of view entries.

    Mutation goes through :meth:`put` / :meth:`remove` / :meth:`replace_all`
    (with a truncation policy applied by the caller); iteration order is
    insertion order, which keeps runs deterministic.

    Internally, stored entry ages are relative to ``_age_offset`` so a cycle
    tick is O(1); every public accessor returns entries carrying their
    absolute age.  Relative order is unaffected by the shared offset, so
    ``oldest()`` and the merge logic can compare stored entries directly.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"view capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: dict[NodeId, ViewEntry] = {}
        self._age_offset = 0
        self._cache: list[ViewEntry] | None = None  # materialized, in order

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._entries

    def _materialized(self) -> list[ViewEntry]:
        """The entries with absolute ages, cached until the next mutation."""
        cache = self._cache
        if cache is None:
            offset = self._age_offset
            if offset:
                cache = [
                    ViewEntry(e.descriptor, e.age + offset)
                    for e in self._entries.values()
                ]
            else:
                cache = list(self._entries.values())
            self._cache = cache
        return cache

    def entries(self) -> list[ViewEntry]:
        return list(self._materialized())

    def node_ids(self) -> list[NodeId]:
        return list(self._entries.keys())

    def get(self, node_id: NodeId) -> ViewEntry | None:
        entry = self._entries.get(node_id)
        if entry is None:
            return None
        offset = self._age_offset
        if offset:
            return ViewEntry(entry.descriptor, entry.age + offset)
        return entry

    def public_entries(self) -> list[ViewEntry]:
        return [e for e in self._materialized() if e.is_public]

    def count_public(self) -> int:
        return sum(1 for e in self._entries.values() if e.is_public)

    # ------------------------------------------------------------------
    def oldest(self) -> ViewEntry | None:
        """Highest-age entry — the healer strategy's exchange partner."""
        if not self._entries:
            return None
        entry = max(self._entries.values(), key=lambda e: (e.age, e.node_id))
        offset = self._age_offset
        if offset:
            return ViewEntry(entry.descriptor, entry.age + offset)
        return entry

    def random_entry(self, rng: random.Random) -> ViewEntry | None:
        if not self._entries:
            return None
        return rng.choice(self._materialized())

    def sample(self, rng: random.Random, k: int) -> list[ViewEntry]:
        entries = self._materialized()
        if k >= len(entries):
            return list(entries)
        return rng.sample(entries, k)

    # ------------------------------------------------------------------
    def increment_ages(self) -> None:
        """One cycle passed: every entry gets older (O(1) offset bump)."""
        self._age_offset += 1
        self._cache = None

    def put(self, entry: ViewEntry) -> None:
        """Insert or refresh one absolute-aged entry (position-preserving).

        An existing node keeps its slot; a new node appends.  Inserting a new
        node into a full view is an error — callers evict first.
        """
        entries = self._entries
        node_id = entry.node_id
        if node_id not in entries and len(entries) >= self.capacity:
            raise ValueError(
                f"{len(entries) + 1} entries exceed view capacity {self.capacity}"
            )
        offset = self._age_offset
        if offset:
            entry = ViewEntry(entry.descriptor, entry.age - offset)
        entries[node_id] = entry
        self._cache = None

    def remove(self, node_id: NodeId) -> None:
        if self._entries.pop(node_id, None) is not None:
            self._cache = None

    def replace_all(self, entries: list[ViewEntry]) -> None:
        """Install a post-truncation entry list (must fit the capacity)."""
        if len(entries) > self.capacity:
            raise ValueError(
                f"{len(entries)} entries exceed view capacity {self.capacity}"
            )
        self._entries = {e.node_id: e for e in entries}
        self._age_offset = 0
        self._cache = None

    @staticmethod
    def merge_candidates(
        own: list[ViewEntry], received: list[ViewEntry], self_id: NodeId
    ) -> list[ViewEntry]:
        """Union of two entry lists: dedup by node, keep the freshest, drop self.

        This is the raw candidate pool handed to a truncation policy.
        """
        best: dict[NodeId, ViewEntry] = {}
        for entry in chain(own, received):
            if entry.node_id == self_id:
                continue
            if entry.descriptor.route_too_long():
                continue
            current = best.get(entry.node_id)
            if current is None or entry.age < current.age:
                best[entry.node_id] = entry
        return list(best.values())
