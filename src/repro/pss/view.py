"""Partial views: the core data structure of a peer sampling service.

A view is a small set of :class:`ViewEntry` (descriptor + age).  Ages count
gossip cycles since the pointed-to node inserted itself (age 0); they drive
both partner selection (oldest first, the *healer* strategy) and merge
decisions (keep freshest).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from ..nat.traversal import NodeDescriptor
from ..net.address import NodeId, NodeKind

__all__ = ["ViewEntry", "View"]


@dataclass(frozen=True, slots=True)
class ViewEntry:
    """One view slot: who, how to reach them, and how stale the info is."""

    descriptor: NodeDescriptor
    age: int = 0

    @property
    def node_id(self) -> NodeId:
        return self.descriptor.node_id

    @property
    def is_public(self) -> bool:
        return self.descriptor.kind is NodeKind.PUBLIC

    def aged(self) -> "ViewEntry":
        return replace(self, age=self.age + 1)

    def via(self, forwarder: NodeId) -> "ViewEntry":
        """Entry as shipped to a gossip partner (route extended)."""
        return replace(self, descriptor=self.descriptor.via(forwarder))


class View:
    """A bounded, deduplicated set of view entries.

    Mutation goes through :meth:`merge` (with a truncation policy applied by
    the caller) and the small helpers below; iteration order is insertion
    order, which keeps runs deterministic.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"view capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: dict[NodeId, ViewEntry] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._entries

    def entries(self) -> list[ViewEntry]:
        return list(self._entries.values())

    def node_ids(self) -> list[NodeId]:
        return list(self._entries.keys())

    def get(self, node_id: NodeId) -> ViewEntry | None:
        return self._entries.get(node_id)

    def public_entries(self) -> list[ViewEntry]:
        return [e for e in self._entries.values() if e.is_public]

    def count_public(self) -> int:
        return sum(1 for e in self._entries.values() if e.is_public)

    # ------------------------------------------------------------------
    def oldest(self) -> ViewEntry | None:
        """Highest-age entry — the healer strategy's exchange partner."""
        if not self._entries:
            return None
        return max(self._entries.values(), key=lambda e: (e.age, e.node_id))

    def random_entry(self, rng: random.Random) -> ViewEntry | None:
        if not self._entries:
            return None
        return rng.choice(list(self._entries.values()))

    def sample(self, rng: random.Random, k: int) -> list[ViewEntry]:
        entries = list(self._entries.values())
        if k >= len(entries):
            return entries
        return rng.sample(entries, k)

    # ------------------------------------------------------------------
    def increment_ages(self) -> None:
        """One cycle passed: every entry gets older."""
        self._entries = {nid: e.aged() for nid, e in self._entries.items()}

    def remove(self, node_id: NodeId) -> None:
        self._entries.pop(node_id, None)

    def replace_all(self, entries: list[ViewEntry]) -> None:
        """Install a post-truncation entry list (must fit the capacity)."""
        if len(entries) > self.capacity:
            raise ValueError(
                f"{len(entries)} entries exceed view capacity {self.capacity}"
            )
        self._entries = {e.node_id: e for e in entries}

    @staticmethod
    def merge_candidates(
        own: list[ViewEntry], received: list[ViewEntry], self_id: NodeId
    ) -> list[ViewEntry]:
        """Union of two entry lists: dedup by node, keep the freshest, drop self.

        This is the raw candidate pool handed to a truncation policy.
        """
        best: dict[NodeId, ViewEntry] = {}
        for entry in list(own) + list(received):
            if entry.node_id == self_id:
                continue
            if entry.descriptor.route_too_long():
                continue
            current = best.get(entry.node_id)
            if current is None or entry.age < current.age:
                best[entry.node_id] = entry
        return list(best.values())
