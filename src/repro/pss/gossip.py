"""The NAT-resilient gossip peer sampling service (Nylon + WHISPER biases).

Implements the protocol of Section II-B/III-B: age-based *healer* gossip
over NAT-traversed sessions, with two WHISPER additions switched on by
configuration — the Π P-node view bias (via the truncation policy) and the
public key sampling service (keys piggybacked on gossip exchanges).

Protocol sketch, once per cycle (10 s in the paper):

1. ages += 1; partner := oldest entry.
2. open/reuse a NAT-resilient session to the partner (Nylon machinery);
   an unreachable partner is evicted — this is the failure detector.
3. send ``pss.request`` carrying our fresh self-descriptor, a shuffle
   buffer of view entries (routes extended with ourselves as forwarder) and
   optionally our public key.
4. the partner merges, truncates with its policy, replies ``pss.response``
   built the same way; we merge on reception.

Both sides report the *successful gossip exchange* to registered listeners;
the WHISPER communication layer feeds its connection backlog (CB) from
exactly these events.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Protocol as TypingProtocol

from ..crypto.provider import PublicKey
from ..nat.traversal import ConnectionManager, NodeDescriptor
from ..net.address import NodeId
from ..net.message import sizes
from ..sim.clock import Clock
from ..sim.process import PeriodicTask, Timer
from ..telemetry import NULL_TELEMETRY, Telemetry
from .policies import HealerPolicy, TruncationPolicy
from .view import View, ViewEntry

__all__ = ["PeerSamplingService", "PssConfig", "PssStats", "ExchangeListener"]


class ExchangeListener(TypingProtocol):
    """Callback fired on every successful gossip exchange."""

    def __call__(
        self, peer: NodeDescriptor, key: PublicKey | None, initiated: bool
    ) -> None: ...


@dataclass(frozen=True)
class PssConfig:
    """Tunables; defaults are the paper's experimental settings."""

    view_size: int = 10
    cycle_time: float = 10.0
    shuffle_size: int = 5  # entries shipped per exchange, besides self
    exchange_keys: bool = False  # the public key sampling service
    response_timeout: float = 5.0


@dataclass
class PssStats:
    """Counters for one PSS instance."""

    cycles: int = 0
    initiated: int = 0
    completed: int = 0  # initiated exchanges that got a response
    received: int = 0  # passive exchanges served
    contact_failures: int = 0
    response_timeouts: int = 0
    rebootstraps: int = 0  # view emptied; re-seeded from the introducers


class PeerSamplingService:
    """One node's PSS instance (Fig. 1's "NAT-resilient Peer Sampling Service")."""

    def __init__(
        self,
        node_id: NodeId,
        cm: ConnectionManager,
        sim: Clock,
        rng: random.Random,
        config: PssConfig | None = None,
        policy: TruncationPolicy | None = None,
        public_key: PublicKey | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.node_id = node_id
        self.cm = cm
        self._sim = sim
        self._rng = rng
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.config = config if config is not None else PssConfig()
        self.policy = (
            policy if policy is not None else HealerPolicy(self.config.view_size)
        )
        self.public_key = public_key
        if self.config.exchange_keys and public_key is None:
            raise ValueError("key sampling requires the node's public key")
        self.view = View(self.config.view_size)
        self.known_keys: dict[NodeId, PublicKey] = {}
        self.stats = PssStats()
        self._listeners: list[ExchangeListener] = []
        self._failure_listeners: list[Callable[[NodeId], None]] = []
        # target -> (response timer, the sample we shipped to it)
        self._pending: dict[NodeId, tuple[Timer, list[ViewEntry]]] = {}
        self._task: PeriodicTask | None = None
        # Kept from init() for re-bootstrap: a node whose view empties
        # (every partner timed out during an outage, and the failure
        # detectors of every other node dropped *it*) can only re-enter
        # the mesh through an entry point, exactly as at first join.
        self._introducers: list[NodeDescriptor] = []

    # ------------------------------------------------------------------
    # lifecycle (the paper's PSS API: init() / getPeer())
    # ------------------------------------------------------------------
    def init(self, introducers: list[NodeDescriptor]) -> None:
        """Bootstrap the view and start gossiping.

        ``introducers`` play the role of the entry points any deployed
        gossip system needs; natted nodes use the first public introducer
        for reflexive-endpoint discovery too.
        """
        self._introducers = [
            d for d in introducers if d.node_id != self.node_id
        ]
        entries = [ViewEntry(descriptor=d, age=0) for d in self._introducers]
        self.view.replace_all(self.policy.truncate(entries))
        if self.cm.nat_type.is_natted:
            for descriptor in introducers:
                if descriptor.is_public:
                    self.cm.learn_reflexive_via(descriptor)
                    break
        phase = self._rng.uniform(0, self.config.cycle_time)
        self._task = PeriodicTask(
            self._sim, self.config.cycle_time, self._cycle, initial_delay=phase
        )

    def stop(self) -> None:
        """Stop gossiping and cancel pending response timers."""
        if self._task is not None:
            self._task.stop()
        for timer, _sent in self._pending.values():
            timer.cancel()
        self._pending.clear()

    def get_peer(self) -> NodeDescriptor | None:
        """The PSS sampling primitive: a (quasi-)uniform random live peer."""
        entry = self.view.random_entry(self._rng)
        return entry.descriptor if entry is not None else None

    def add_exchange_listener(self, listener: ExchangeListener) -> None:
        """Subscribe to successful gossip exchanges (feeds the WCL's CB)."""
        self._listeners.append(listener)

    def add_failure_listener(self, listener: Callable[[NodeId], None]) -> None:
        """Notified with the node id whenever the PSS failure detector
        gives up on a partner (unreachable or unresponsive) — the WCL
        evicts such nodes from its connection backlog."""
        self._failure_listeners.append(listener)

    # ------------------------------------------------------------------
    # active thread
    # ------------------------------------------------------------------
    def _cycle(self) -> None:
        self.stats.cycles += 1
        tel = self.telemetry
        if tel.enabled:
            tel.counter("pss.cycles", node=self.node_id, layer="pss").inc()
            tel.gauge("pss.view_size", node=self.node_id, layer="pss").set(
                len(self.view)
            )
        self.view.increment_ages()
        partner = self.view.oldest()
        if partner is None:
            partner = self._rebootstrap()
            if partner is None:
                return
        self.stats.initiated += 1
        target = partner.node_id
        # Shuffling semantics [19]: the selected (oldest) partner leaves the
        # view now; it re-enters only through future exchanges.  This is the
        # mechanism that keeps in-degrees balanced — a node's presence in
        # views is consumed by being contacted.
        self.view.remove(target)
        self.cm.ensure_session(
            partner.descriptor,
            on_ready=lambda: self._send_request(target),
            on_fail=lambda reason: self._contact_failed(target),
        )

    def _rebootstrap(self) -> "ViewEntry | None":
        """Total view loss: re-seed from the entry points, as at first join.

        Happens after an outage long enough for every partner to time out
        (the node stalled, or was partitioned away): all other nodes'
        failure detectors have dropped this node too, so no inbound gossip
        will ever repopulate the view on its own.
        """
        if not self._introducers:
            return None
        self.stats.rebootstraps += 1
        self.telemetry.counter(
            "pss.rebootstraps", node=self.node_id, layer="pss"
        ).inc()
        entries = [ViewEntry(descriptor=d, age=0) for d in self._introducers]
        self.view.replace_all(self.policy.truncate(entries))
        return self.view.oldest()

    def _contact_failed(self, target: NodeId) -> None:
        self.stats.contact_failures += 1
        self.telemetry.counter(
            "pss.contact_failures", node=self.node_id, layer="pss"
        ).inc()
        self.view.remove(target)
        for listener in self._failure_listeners:
            listener(target)

    def _send_request(self, target: NodeId) -> None:
        sample = self.view.sample(self._rng, self.config.shuffle_size)
        body = {
            "sender": self.cm.descriptor(),
            "buffer": self._shipped(sample, include_self=True),
            "key": self.public_key if self.config.exchange_keys else None,
        }
        if not self.cm.send_via_session(
            target, "pss.request", body, self._message_size(body), "pss"
        ):
            self._contact_failed(target)
            return
        timer = Timer(self._sim, lambda: self._response_timeout(target))
        timer.start(self.config.response_timeout)
        self._pending[target] = (timer, sample)

    def _response_timeout(self, target: NodeId) -> None:
        self._pending.pop(target, None)
        self.stats.response_timeouts += 1
        self.telemetry.counter(
            "pss.response_timeouts", node=self.node_id, layer="pss"
        ).inc()
        self.view.remove(target)
        self.cm.drop_session(target)
        for listener in self._failure_listeners:
            listener(target)

    # ------------------------------------------------------------------
    # passive thread
    # ------------------------------------------------------------------
    def handle_message(self, peer: NodeId, kind: str, body: dict) -> None:
        """Entry point for ``pss.*`` payloads arriving over sessions."""
        if kind == "pss.request":
            self._on_request(peer, body)
        elif kind == "pss.response":
            self._on_response(peer, body)

    def _on_request(self, peer: NodeId, body: dict) -> None:
        self.stats.received += 1
        sample = self.view.sample(self._rng, self.config.shuffle_size)
        response = {
            "sender": self.cm.descriptor(),
            # The passive side does not insert itself (shuffling [19]): per
            # exchange the initiator gains exactly one placement, keeping
            # copy counts — hence in-degrees — balanced.
            "buffer": self._shipped(sample, include_self=False),
            "key": self.public_key if self.config.exchange_keys else None,
        }
        self._merge(body["buffer"], body["sender"], sent=sample)
        self._record_exchange(body["sender"], body.get("key"), initiated=False)
        self.cm.send_via_session(
            peer, "pss.response", response, self._message_size(response), "pss"
        )

    def _on_response(self, peer: NodeId, body: dict) -> None:
        pending = self._pending.pop(peer, None)
        sent: list[ViewEntry] = []
        if pending is not None:
            timer, sent = pending
            timer.cancel()
        self.stats.completed += 1
        self._merge(body["buffer"], body["sender"], sent=sent)
        self._record_exchange(body["sender"], body.get("key"), initiated=True)

    # ------------------------------------------------------------------
    # shared plumbing
    # ------------------------------------------------------------------
    def _shipped(
        self, sample: list[ViewEntry], include_self: bool
    ) -> list[ViewEntry]:
        """Entries as sent on the wire: routes extended via us, self first."""
        shipped = [entry.via(self.node_id) for entry in sample]
        if include_self:
            own = ViewEntry(descriptor=self.cm.descriptor(), age=0)
            shipped = [own] + shipped[: max(self.config.shuffle_size - 1, 0)]
        return shipped

    def _merge(
        self,
        received: list[ViewEntry],
        sender: NodeDescriptor,
        sent: list[ViewEntry],
    ) -> None:
        """Cyclon-style merge with the healer's freshest-wins duplicates.

        Received entries (the sender's fresh self-descriptor is treated as
        one of them on the passive side) fill empty view slots first, then
        replace the entries we shipped to the partner, then — healing — the
        oldest remaining entries.  Afterwards the WHISPER bias re-instates
        the Pi P-node floor from the union of everything seen.
        """
        incoming = [self._compress_route(e) for e in received]
        incoming.append(ViewEntry(descriptor=sender, age=0))
        replaceable = [e.node_id for e in sent if e.node_id in self.view]
        evicted: dict[NodeId, ViewEntry] = {}
        for entry in sorted(incoming, key=lambda e: (e.age, e.node_id)):
            if entry.node_id == self.node_id:
                continue
            if entry.descriptor.route_too_long():
                continue
            current = self.view.get(entry.node_id)
            if current is not None:
                if entry.age < current.age:
                    self._view_put(entry)
                continue
            if len(self.view) < self.view.capacity:
                self._view_put(entry)
            elif replaceable:
                victim = replaceable.pop(0)
                removed = self.view.get(victim)
                if removed is not None:
                    evicted[victim] = removed
                self.view.remove(victim)
                self._view_put(entry)
            else:
                oldest = self.view.oldest()
                if oldest is not None and oldest.age > entry.age:
                    evicted[oldest.node_id] = oldest
                    self.view.remove(oldest.node_id)
                    self._view_put(entry)
        self._enforce_public_floor(incoming, evicted)
        self._enforce_public_cap(incoming, evicted)

    def _compress_route(self, entry: ViewEntry) -> ViewEntry:
        """Drop the rendezvous chain when we can reach the node ourselves.

        Nylon keeps reachability as node-local state: a node that holds an
        open (NAT-traversed) session to B does not need the forwarding chain
        an entry travelled with.  Compression keeps routes short and stops
        natted entries from attriting at the route-length cap as they
        circulate — P-node entries never grow routes, so without this the
        overlay would slowly skew public.
        """
        descriptor = entry.descriptor
        if descriptor.is_public or not descriptor.route:
            return entry
        if self.cm.has_session(descriptor.node_id):
            return ViewEntry(
                descriptor=NodeDescriptor(
                    descriptor.node_id,
                    descriptor.kind,
                    descriptor.nat_type,
                    descriptor.public_endpoint,
                    (),
                ),
                age=entry.age,
            )
        return entry

    def _enforce_public_cap(
        self, incoming: list[ViewEntry], evicted: dict[NodeId, ViewEntry]
    ) -> None:
        """Aggressive load-limiting variant (ablation): P-nodes above the Pi
        freshest are swapped back out for N-node candidates when available,
        capping P-node view presence near Pi."""
        pi = getattr(self.policy, "pi", 0)
        if not getattr(self.policy, "cap_public", False) or pi <= 0:
            return
        publics = sorted(
            self.view.public_entries(), key=lambda e: (e.age, e.node_id)
        )
        surplus = publics[pi:]
        if not surplus:
            return
        pool: dict[NodeId, ViewEntry] = {}
        for entry in list(evicted.values()) + list(incoming):
            if entry.is_public or entry.node_id == self.node_id:
                continue
            if entry.node_id in self.view or entry.descriptor.route_too_long():
                continue
            current = pool.get(entry.node_id)
            if current is None or entry.age < current.age:
                pool[entry.node_id] = entry
        replacements = sorted(pool.values(), key=lambda e: (e.age, e.node_id))
        # Oldest surplus P-nodes go first.
        for victim in reversed(surplus):
            if not replacements:
                break
            self.view.remove(victim.node_id)
            self._view_put(replacements.pop(0))

    def _view_put(self, entry: ViewEntry) -> None:
        self.view.put(entry)

    def _enforce_public_floor(
        self, incoming: list[ViewEntry], evicted: dict[NodeId, ViewEntry]
    ) -> None:
        """Section III-B-1: keep at least Pi P-nodes in the view, using the
        freshest P-node candidates from the view and the received entries."""
        pi = getattr(self.policy, "pi", 0)
        if pi <= 0:
            return
        deficit = pi - self.view.count_public()
        if deficit <= 0:
            return
        pool: dict[NodeId, ViewEntry] = {}
        for entry in list(evicted.values()) + list(incoming):
            if not entry.is_public or entry.node_id == self.node_id:
                continue
            if entry.node_id in self.view:
                continue
            current = pool.get(entry.node_id)
            if current is None or entry.age < current.age:
                pool[entry.node_id] = entry
        candidates = sorted(pool.values(), key=lambda e: (e.age, e.node_id))
        for candidate in candidates[:deficit]:
            if len(self.view) >= self.view.capacity:
                victims = [e for e in self.view.entries() if not e.is_public]
                if not victims:
                    break
                victim = max(victims, key=lambda e: (e.age, e.node_id))
                self.view.remove(victim.node_id)
            self._view_put(candidate)

    def _record_exchange(
        self, peer: NodeDescriptor, key: PublicKey | None, initiated: bool
    ) -> None:
        self.telemetry.counter(
            "pss.exchanges", node=self.node_id, layer="pss",
            role="initiator" if initiated else "responder",
        ).inc()
        if key is not None:
            self.known_keys[peer.node_id] = key
            self._trim_known_keys()
        for listener in self._listeners:
            listener(peer, key, initiated)

    def _trim_known_keys(self) -> None:
        """Bound the key store: old partners' keys age out with the CB."""
        limit = 4 * self.config.view_size
        while len(self.known_keys) > limit:
            oldest = next(iter(self.known_keys))
            del self.known_keys[oldest]

    def _message_size(self, body: dict) -> int:
        size = sizes.gossip_header + len(body["buffer"]) * sizes.view_entry
        if body["key"] is not None:
            size += sizes.public_key
        return size
