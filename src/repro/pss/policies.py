"""View truncation policies: the healer strategy and WHISPER's biased variant.

Section II-B of the paper adopts the *healer* strategy of the peer-sampling
framework [18]: the exchange partner is the oldest entry, and after an
exchange the view keeps fresh entries.  Following [18], healing is bounded:
at most ``heal`` (default c/2) of the oldest entries are replaced per
exchange and any remaining excess is dropped uniformly at random —
unbounded healing (always keeping the c globally-freshest) lets
well-connected nodes flood views with age-0 self-copies and produces the
hub-and-spoke in-degree imbalance random-graph-like overlays must avoid.

WHISPER biases this selection (Section III-B-1): at least Π P-nodes must
survive truncation — the Π *freshest* P-node candidates are force-kept, so
"the oldest P-nodes above the Π threshold" are discarded in priority among
P-nodes, while competing like everyone else against N-nodes.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from .view import ViewEntry

__all__ = [
    "TruncationPolicy",
    "HealerPolicy",
    "BiasedHealerPolicy",
    "AggressiveBiasedPolicy",
]


def _by_age(entries: list[ViewEntry]) -> list[ViewEntry]:
    """Freshest first; node id as a deterministic tie-break."""
    return sorted(entries, key=lambda e: (e.age, e.node_id))


class TruncationPolicy(ABC):
    """Selects which candidates survive after a view exchange."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity

    @abstractmethod
    def truncate(self, candidates: list[ViewEntry]) -> list[ViewEntry]:
        """Return at most ``capacity`` entries from the candidate pool."""


class HealerPolicy(TruncationPolicy):
    """Bounded healing: drop the ``heal`` oldest, then random excess."""

    def __init__(
        self,
        capacity: int,
        heal: int | None = None,
        rng: random.Random | None = None,
    ) -> None:
        super().__init__(capacity)
        self.heal = heal if heal is not None else max(1, capacity // 2)
        self._rng = rng

    def truncate(self, candidates: list[ViewEntry]) -> list[ViewEntry]:
        return self._heal_select(candidates, self.capacity)

    def _heal_select(
        self, candidates: list[ViewEntry], capacity: int
    ) -> list[ViewEntry]:
        excess = len(candidates) - capacity
        if excess <= 0:
            return list(candidates)
        ordered = _by_age(candidates)
        drop_oldest = min(self.heal, excess)
        kept = ordered[: len(ordered) - drop_oldest]
        excess -= drop_oldest
        if excess > 0:
            if self._rng is not None:
                self._rng.shuffle(kept)
                kept = kept[: len(kept) - excess]
            else:
                # Deterministic fallback (unit tests without an RNG).
                kept = kept[: len(kept) - excess]
        return kept


class BiasedHealerPolicy(HealerPolicy):
    """Healer with the Π P-node availability bias (Section III-B-1)."""

    def __init__(
        self,
        capacity: int,
        pi: int,
        heal: int | None = None,
        rng: random.Random | None = None,
    ) -> None:
        super().__init__(capacity, heal=heal, rng=rng)
        if pi < 0:
            raise ValueError(f"pi must be >= 0, got {pi}")
        if pi > capacity:
            raise ValueError(f"pi ({pi}) cannot exceed the view size ({capacity})")
        self.pi = pi

    def truncate(self, candidates: list[ViewEntry]) -> list[ViewEntry]:
        if self.pi == 0:
            return self._heal_select(candidates, self.capacity)
        # Guarantee the Π freshest P-node candidates; older P-nodes above
        # the threshold compete (and are discarded) like ordinary entries.
        public = _by_age([e for e in candidates if e.is_public])
        guaranteed = public[: self.pi]
        guaranteed_ids = {e.node_id for e in guaranteed}
        rest = [e for e in candidates if e.node_id not in guaranteed_ids]
        kept = self._heal_select(rest, self.capacity - len(guaranteed))
        return guaranteed + kept


class AggressiveBiasedPolicy(BiasedHealerPolicy):
    """Ablation variant: evict *all* surplus P-nodes before any N-node.

    Caps P-node view presence near Π under truncation pressure — stronger
    load limiting than the paper's Fig. 5 exhibits; kept as a knob for the
    load-imbalance ablation bench.  The ``cap_public`` marker makes the
    gossip merge apply the cap (truncate() only runs at bootstrap).
    """

    cap_public = True

    def truncate(self, candidates: list[ViewEntry]) -> list[ViewEntry]:
        if self.pi == 0:
            return self._heal_select(candidates, self.capacity)
        public = _by_age([e for e in candidates if e.is_public])
        others = _by_age([e for e in candidates if not e.is_public])
        guaranteed = public[: self.pi]
        surplus_public = public[self.pi :]
        need_drop = len(candidates) - self.capacity
        if need_drop <= 0:
            return guaranteed + surplus_public + others
        dropped = min(need_drop, len(surplus_public))
        surplus_public = surplus_public[: len(surplus_public) - dropped]
        need_drop -= dropped
        rest = _by_age(surplus_public + others)
        if need_drop > 0:
            rest = rest[: len(rest) - need_drop]
        return guaranteed + rest
