"""Peer sampling: views, truncation policies, NAT-resilient gossip (Nylon)."""

from .gossip import ExchangeListener, PeerSamplingService, PssConfig, PssStats
from .policies import (
    AggressiveBiasedPolicy,
    BiasedHealerPolicy,
    HealerPolicy,
    TruncationPolicy,
)
from .view import View, ViewEntry

__all__ = [
    "AggressiveBiasedPolicy",
    "BiasedHealerPolicy",
    "ExchangeListener",
    "HealerPolicy",
    "PeerSamplingService",
    "PssConfig",
    "PssStats",
    "TruncationPolicy",
    "View",
    "ViewEntry",
]
