"""Discrete-event simulation substrate (replaces the paper's SPLAY deployment)."""

from .clock import Cancellable, Clock
from .engine import Event, SimulationError, Simulator
from .process import PeriodicTask, Timer
from .rng import RngRegistry

__all__ = [
    "Cancellable",
    "Clock",
    "Event",
    "PeriodicTask",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "Timer",
]
