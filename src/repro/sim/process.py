"""Periodic processes on top of the event engine.

Gossip protocols are cycle-driven: every node runs an "active thread" that
wakes up once per cycle (PSS: 10 s, PPSS: 60 s in the paper).  The
:class:`PeriodicTask` helper encapsulates that pattern, including the random
initial phase used to de-synchronize nodes (without it, every node would
gossip at the exact same instant — an artifact real deployments do not have).
"""

from __future__ import annotations

import random
from typing import Any, Callable

from .clock import Cancellable, Clock

__all__ = ["ExponentialBackoff", "PeriodicTask", "Timer"]


class PeriodicTask:
    """Invoke a callback every ``period`` seconds until stopped.

    The first invocation happens after ``initial_delay`` (commonly a random
    phase in ``[0, period)``).  Stopping is idempotent and takes effect
    immediately: a pending tick is cancelled.
    """

    def __init__(
        self,
        sim: Clock,
        period: float,
        callback: Callable[[], Any],
        initial_delay: float | None = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._event: Cancellable | None = None
        self._stopped = False
        self._ticks = 0
        delay = period if initial_delay is None else initial_delay
        self._event = sim.schedule(delay, self._fire)

    @property
    def ticks(self) -> int:
        """Number of completed invocations."""
        return self._ticks

    @property
    def running(self) -> bool:
        return not self._stopped

    def stop(self) -> None:
        """Stop the task; any pending tick is cancelled."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        if self._stopped:
            return
        self._ticks += 1
        # Schedule the next tick before running the callback so a callback
        # that raises does not silently kill the task's cadence in tests
        # that catch the exception.
        self._event = self._sim.schedule(self._period, self._fire)
        self._callback()


class ExponentialBackoff:
    """Deterministic exponential backoff with seeded jitter.

    Retrying failed exchanges on a fixed cadence makes every retry wave hit
    the network at once (and keeps hammering a partner that is partitioned
    away); growing the delay geometrically and jittering it breaks both up.
    The jitter draws from the *caller's* seeded RNG, so same-seed runs back
    off identically — a requirement for byte-identical telemetry traces.

    ``delay(attempt)`` returns ``base * factor**attempt`` capped at ``cap``,
    scaled by a uniform factor in ``[1 - jitter, 1 + jitter]``; attempt 0 is
    the first (non-backed-off) try.
    """

    def __init__(
        self,
        base: float,
        factor: float = 2.0,
        cap: float | None = None,
        jitter: float = 0.2,
        rng: random.Random | None = None,
    ) -> None:
        if base <= 0:
            raise ValueError(f"backoff base must be positive, got {base}")
        if factor < 1.0:
            raise ValueError(f"backoff factor must be >= 1, got {factor}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"backoff jitter must be in [0, 1), got {jitter}")
        self._base = base
        self._factor = factor
        self._cap = cap
        self._jitter = jitter
        self._rng = rng

    def delay(self, attempt: int) -> float:
        """The delay before retry number ``attempt`` (0 = first try)."""
        raw = self._base * self._factor ** max(attempt, 0)
        if self._cap is not None:
            raw = min(raw, self._cap)
        if self._jitter and self._rng is not None:
            raw *= self._rng.uniform(1.0 - self._jitter, 1.0 + self._jitter)
        return raw


class Timer:
    """A one-shot timer that can be rescheduled or cancelled.

    Used for timeouts (e.g. WCL path construction retry timers).  Restarting
    an armed timer cancels the previous deadline.
    """

    def __init__(self, sim: Clock, callback: Callable[[], Any]) -> None:
        self._sim = sim
        self._callback = callback
        self._event: Cancellable | None = None

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` seconds from now."""
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()
