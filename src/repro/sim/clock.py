"""The clock/scheduler interface every protocol layer runs against.

Historically the stack was written directly against :class:`~repro.sim.engine.Simulator`.
To let the same, unmodified protocol code run both inside the discrete-event
simulation and as a live OS process (``repro.runtime``), the subset of the
simulator surface the protocols actually use is extracted here as a
structural :class:`Clock` protocol:

- ``now`` — the current time in seconds (simulated or wall-clock);
- ``schedule(delay, callback)`` / ``schedule_at(time, callback)`` — run a
  callback later, returning a cancellable handle.

Two implementations exist:

- :class:`repro.sim.engine.Simulator` — deterministic discrete-event clock;
- :class:`repro.runtime.clock.AsyncioScheduler` — an asyncio event loop.

Protocol layers (PSS, WCL, PPSS, traversal, backlog) annotate against
``Clock`` and never import the engine for anything beyond this surface, so
a node stack boots identically on either backend.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

__all__ = ["Cancellable", "Clock"]


@runtime_checkable
class Cancellable(Protocol):
    """Handle for a scheduled callback: cancellation must be idempotent."""

    cancelled: bool

    def cancel(self) -> None: ...


@runtime_checkable
class Clock(Protocol):
    """The scheduling surface shared by the sim engine and live runtimes."""

    @property
    def now(self) -> float: ...

    def schedule(
        self, delay: float, callback: Callable[[], Any], priority: int = 0
    ) -> Cancellable: ...

    def schedule_at(
        self, time: float, callback: Callable[[], Any], priority: int = 0
    ) -> Cancellable: ...
