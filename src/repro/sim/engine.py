"""Discrete-event simulation engine.

The engine is the substrate replacing the SPLAY deployment framework used by
the WHISPER paper: every protocol layer (Nylon PSS, WCL, PPSS, T-Chord) is
driven by events scheduled on a single simulated clock.  Determinism is a
design goal — given the same seed, a simulation replays identically, which
makes experiments and tests reproducible.

Events fire in (time, priority, sequence) order.  The sequence number breaks
ties deterministically: two events scheduled for the same instant fire in
scheduling order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from ..telemetry import NULL_TELEMETRY

if TYPE_CHECKING:
    from ..telemetry import Telemetry

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on misuse of the simulation engine (e.g. scheduling in the past)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events are totally ordered by ``(time, priority, seq)`` so the run is
    deterministic.  ``cancelled`` events stay in the heap but are skipped when
    popped (lazy deletion), which keeps cancellation O(1).
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so it will not fire."""
        self.cancelled = True


class Simulator:
    """A deterministic discrete-event scheduler with a simulated clock.

    Typical usage::

        sim = Simulator()
        sim.schedule(10.0, lambda: print("at t=10"))
        sim.run(until=60.0)

    Time is expressed in seconds (floats).  The simulator never advances past
    the time of the last event unless ``run(until=...)`` asks it to.
    """

    def __init__(
        self, start_time: float = 0.0, telemetry: "Telemetry | None" = None
    ) -> None:
        self._now = float(start_time)
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        self.bind_telemetry(telemetry if telemetry is not None else NULL_TELEMETRY)

    def bind_telemetry(self, telemetry: "Telemetry") -> None:
        """Attach a telemetry sink for event-loop statistics.

        Instruments are cached here so the per-event cost with telemetry
        disabled is one no-op method call on a shared singleton.
        """
        self._telemetry = telemetry
        self._tel_fired = telemetry.counter("sim.events", layer="sim")
        self._tel_scheduled = telemetry.counter("sim.scheduled", layer="sim")
        self._tel_skipped = telemetry.counter("sim.cancelled_skipped", layer="sim")
        self._tel_pending = telemetry.gauge("sim.pending", layer="sim")
        self._tel_now = telemetry.gauge("sim.now", layer="sim")

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[[], Any], priority: int = 0
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which can be cancelled.  A negative delay
        is an error: the simulated past is immutable.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, priority)

    def schedule_at(
        self, time: float, callback: Callable[[], Any], priority: int = 0
    ) -> Event:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        event = Event(time, priority, next(self._seq), callback)
        heapq.heappush(self._queue, event)
        self._tel_scheduled.inc()
        return event

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._tel_skipped.inc()
                continue
            self._now = event.time
            self._events_processed += 1
            self._tel_fired.inc()
            event.callback()
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        When ``until`` is given the clock is advanced to exactly ``until`` at
        the end of the run even if the last event fired earlier — matching the
        intuition of "simulate one hour".
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        fired = 0
        try:
            while self._queue:
                nxt = self._peek()
                if nxt is None:
                    break
                if until is not None and nxt.time > until:
                    break
                if max_events is not None and fired >= max_events:
                    break
                self.step()
                fired += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
            self._tel_pending.set(len(self._queue))
            self._tel_now.set(self._now)

    def _peek(self) -> Event | None:
        """Return the next live event without popping it."""
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            return event
        return None
