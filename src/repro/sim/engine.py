"""Discrete-event simulation engine.

The engine is the substrate replacing the SPLAY deployment framework used by
the WHISPER paper: every protocol layer (Nylon PSS, WCL, PPSS, T-Chord) is
driven by events scheduled on a single simulated clock.  Determinism is a
design goal — given the same seed, a simulation replays identically, which
makes experiments and tests reproducible.

Events fire in (time, priority, sequence) order.  The sequence number breaks
ties deterministically: two events scheduled for the same instant fire in
scheduling order.

Performance notes: the heap holds ``(time, priority, seq, event)`` tuples so
that ``heapq`` orders entries by comparing plain numbers — the ``seq``
component is unique, so two ``Event`` objects are never compared and the
event type needs no ordering protocol on the hot path.  ``run()`` drives the
loop inline (no per-event ``step()`` call) and batches its telemetry counter
updates, flushing once per ``run()`` rather than once per event; the flushed
totals are identical, so exported traces are unaffected.
"""

from __future__ import annotations

import gc
import heapq
import itertools
from typing import TYPE_CHECKING, Any, Callable

from ..telemetry import NULL_TELEMETRY

if TYPE_CHECKING:
    from ..telemetry import Telemetry

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on misuse of the simulation engine (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events are totally ordered by ``(time, priority, seq)`` so the run is
    deterministic.  ``cancelled`` events stay in the heap but are skipped when
    popped (lazy deletion), which keeps cancellation O(1); the owning
    simulator is notified of live cancellations so it can account queue depth
    accurately and compact the heap when lazily-deleted entries pile up.
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled", "_sim", "_done")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], Any],
        cancelled: bool = False,
        sim: "Simulator | None" = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = cancelled
        self._sim = sim
        self._done = False  # popped for firing (cancel() after this is a no-op)

    def cancel(self) -> None:
        """Mark the event so it will not fire."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None and not self._done:
            sim._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time}, prio={self.priority}, seq={self.seq}{state})"


class Simulator:
    """A deterministic discrete-event scheduler with a simulated clock.

    Typical usage::

        sim = Simulator()
        sim.schedule(10.0, lambda: print("at t=10"))
        sim.run(until=60.0)

    Time is expressed in seconds (floats).  The simulator never advances past
    the time of the last event unless ``run(until=...)`` asks it to.
    """

    def __init__(
        self, start_time: float = 0.0, telemetry: "Telemetry | None" = None
    ) -> None:
        self.now = float(start_time)
        # Heap of (time, priority, seq, event); seq is unique so the event
        # object itself is never compared.
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        self._cancelled_in_queue = 0  # lazily-deleted entries still heaped
        self._sched_delta = 0  # schedules not yet flushed to telemetry
        self.bind_telemetry(telemetry if telemetry is not None else NULL_TELEMETRY)

    def bind_telemetry(self, telemetry: "Telemetry") -> None:
        """Attach a telemetry sink for event-loop statistics.

        Instruments are cached here so the per-event cost with telemetry
        disabled is one no-op method call on a shared singleton.
        """
        self._telemetry = telemetry
        self._tel_fired = telemetry.counter("sim.events", layer="sim")
        self._tel_scheduled = telemetry.counter("sim.scheduled", layer="sim")
        self._tel_skipped = telemetry.counter("sim.cancelled_skipped", layer="sim")
        self._tel_pending = telemetry.gauge("sim.pending", layer="sim")
        self._tel_now = telemetry.gauge("sim.now", layer="sim")

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    # ``now`` is a plain attribute (set in __init__, advanced by the run
    # loop): it is read millions of times per run, and a property's
    # descriptor dispatch is measurable at that volume.  Treat it as
    # read-only from the outside.

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    @property
    def live_events(self) -> int:
        """Number of *live* events still queued (O(1)).

        Cancelled events awaiting lazy deletion are excluded: callers (and
        the ``sim.pending`` telemetry gauge) want actual scheduled work, not
        heap occupancy.  An earlier revision returned ``len(self._queue)``,
        overstating queue depth after cancellation storms.
        """
        return len(self._queue) - self._cancelled_in_queue

    def pending(self) -> int:
        """Alias for :attr:`live_events` (historical method form)."""
        return len(self._queue) - self._cancelled_in_queue

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[[], Any], priority: int = 0
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which can be cancelled.  A negative delay
        is an error: the simulated past is immutable.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        time = self.now + delay
        seq = next(self._seq)
        event = Event(time, priority, seq, callback, False, self)
        heapq.heappush(self._queue, (time, priority, seq, event))
        self._sched_delta += 1
        return event

    def schedule_at(
        self, time: float, callback: Callable[[], Any], priority: int = 0
    ) -> Event:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        seq = next(self._seq)
        event = Event(time, priority, seq, callback, False, self)
        heapq.heappush(self._queue, (time, priority, seq, event))
        self._sched_delta += 1
        return event

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Returns False when the queue is empty."""
        queue = self._queue
        while queue:
            time, _priority, _seq, event = heapq.heappop(queue)
            if event.cancelled:
                self._cancelled_in_queue -= 1
                self._tel_skipped.inc()
                continue
            event._done = True
            self.now = time
            self._events_processed += 1
            self._flush_scheduled()
            self._tel_fired.inc()
            event.callback()
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        When ``until`` is given the clock is advanced to exactly ``until`` at
        the end of the run even if the last event fired earlier — matching the
        intuition of "simulate one hour".
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        queue = self._queue
        heappop = heapq.heappop
        fired = 0
        # Event churn produces no reference cycles, so generational GC scans
        # during the run are pure overhead (~10% of wall time at scale).
        # Suppress collection for the duration and restore on exit.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while queue:
                entry = queue[0]
                event = entry[3]
                if event.cancelled:
                    # Lazily-deleted entry reached the top: drop it silently
                    # (run() has never counted these as "skipped" — only
                    # explicit step() calls do).
                    heappop(queue)
                    self._cancelled_in_queue -= 1
                    continue
                if until is not None and entry[0] > until:
                    break
                if max_events is not None and fired >= max_events:
                    break
                heappop(queue)
                event._done = True
                self.now = entry[0]
                self._events_processed += 1
                fired += 1
                event.callback()
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False
            if gc_was_enabled:
                gc.enable()
            if fired:
                self._tel_fired.inc(fired)
            self._flush_scheduled()
            self._tel_pending.set(self.pending())
            self._tel_now.set(self.now)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _flush_scheduled(self) -> None:
        """Push batched schedule counts out to the telemetry counter."""
        if self._sched_delta:
            self._tel_scheduled.inc(self._sched_delta)
            self._sched_delta = 0

    def _note_cancel(self) -> None:
        """A queued event was cancelled; account for the lazy deletion.

        When cancelled entries dominate the heap, compact it: drop them all
        and re-heapify the survivors.  This bounds both memory and the
        per-pop cost of skipping tombstones after cancellation storms.
        Compaction never touches the ``sim.cancelled_skipped`` counter —
        that counts only cancelled events *popped* by explicit ``step()``
        calls, and compacted entries are never popped.

        The trigger floor scales with queue size: a fixed floor would make
        a deep queue (100k-node runs hold hundreds of thousands of pending
        timers) compact — an O(queue) rebuild — on a trickle of
        cancellations that is negligible relative to the heap.  Tombstones
        must both exceed the proportional floor *and* outnumber live
        entries, so each O(n) rebuild is paid for by Ω(n) cancellations
        and the amortized cost per cancel stays O(1) at any depth.
        """
        self._cancelled_in_queue += 1
        queue_len = len(self._queue)
        if (
            self._cancelled_in_queue > 64 + (queue_len >> 3)
            and self._cancelled_in_queue * 2 > queue_len
        ):
            # In-place rebuild: run()/step() hold direct references to the
            # queue list, so its identity must survive compaction.
            queue = self._queue
            queue[:] = [e for e in queue if not e[3].cancelled]
            heapq.heapify(queue)
            self._cancelled_in_queue = 0

    def _peek(self) -> Event | None:
        """Return the next live event without popping it."""
        queue = self._queue
        while queue:
            event = queue[0][3]
            if event.cancelled:
                heapq.heappop(queue)
                self._cancelled_in_queue -= 1
                continue
            return event
        return None
