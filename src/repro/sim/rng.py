"""Seeded random-number streams.

Every stochastic component of the simulation (latency model, NAT assignment,
gossip partner choice, churn, crypto key generation) draws from its own named
stream derived from a single experiment seed.  This keeps runs reproducible
while ensuring that, e.g., adding one extra latency sample does not shift the
churn schedule — streams are independent.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RngRegistry"]


class RngRegistry:
    """Derives independent :class:`random.Random` streams from a root seed.

    Stream derivation is stable: ``registry.stream("churn")`` returns the same
    generator object on every call, and two registries built from the same
    root seed produce identical streams.
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the named stream, creating it deterministically on first use."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """Create a child registry with a seed derived from this one.

        Useful to give each node its own registry (``registry.fork(node_id)``)
        so per-node randomness is independent of node creation order.
        """
        digest = hashlib.sha256(f"{self._seed}/fork/{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
