"""Backwards-compatible shim: the exposure analysis moved to
:mod:`repro.adversary.exposure`.

This module re-exports the original names so pre-existing imports
(``from repro.analysis.anonymity import extract_flows`` and friends) keep
working.  New code should import from :mod:`repro.adversary`, which also
holds the global observer, corruption sets and the traffic-analysis
attacks built on top of this exposure toolkit.
"""

from __future__ import annotations

from ..adversary.exposure import (
    OnionFlow,
    adversary_sweep,
    carries_trace,
    exposure,
    extract_flows,
)

__all__ = [
    "carries_trace",
    "OnionFlow",
    "extract_flows",
    "exposure",
    "adversary_sweep",
]
