"""Offline security analysis over wiretap captures.

The exposure toolkit now lives in :mod:`repro.adversary`; this package
re-exports it for backwards compatibility.
"""

from .anonymity import (
    OnionFlow,
    adversary_sweep,
    carries_trace,
    exposure,
    extract_flows,
)

__all__ = [
    "OnionFlow",
    "adversary_sweep",
    "carries_trace",
    "exposure",
    "extract_flows",
]
