"""Offline security analysis over wiretap captures."""

from .anonymity import (
    OnionFlow,
    adversary_sweep,
    carries_trace,
    exposure,
    extract_flows,
)

__all__ = [
    "OnionFlow",
    "adversary_sweep",
    "carries_trace",
    "exposure",
    "extract_flows",
]
