"""Soak — live loopback nodes through a scripted fault schedule.

The whole-system robustness gate: N supervised WHISPER stacks on *real*
UDP sockets inside one process, carrying an open-loop CBR workload while
a :class:`~repro.faults.live.LiveFaultFabric` executes a scripted fault
schedule against their datagrams — a loss burst, a stall window, abrupt
node kills (healed by the :class:`~repro.runtime.supervisor.NodeSupervisor`),
and NAT rebinds that re-home sockets mid-run.

Every number in the report is telemetry-verified: the fabric's fault
counters, the supervisor's restart counters and the workload ledgers are
cross-checked against the ``faults.live.*`` / ``supervisor.*`` /
``workload.*`` instruments, so a fault that was injected but not counted
(or counted but not injected) fails loudly rather than skewing the ratio.

Route success is measured per *send window*: each emitted application
packet is tagged with the window it left in (before / during / after the
fault schedule), and delivery is credited to that window no matter when
the packet lands.  The headline gate is the post-heal window:
``check_post_heal_success`` asserts it clears an absolute floor
(``--route-floor``, the CI soak-smoke gate).

Reproducibility: plan-level fault decisions (stall victims, rebind
victims) come from a seeded stream over the sorted population, so the
same seed + plan reproduces the identical decision digest run-to-run —
the report prints it.

Wall-clock warning: unlike every other experiment this one runs on a real
clock; the default timeline is ~20 s plus convergence.  Scale the
population down (``--nodes``) for smoke runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..core.node import WhisperConfig, WhisperNode
from ..core.ppss import MemberState, PpssConfig
from ..faults.live import LiveFaultFabric
from ..faults.plan import FaultPlan, LossBurst, NatRebind, Stall
from ..harness.invariants import RecoveryViolation, check_post_heal_success
from ..harness.report import Report, Table
from ..nat.traversal import TraversalPolicy
from ..net.address import NodeId
from ..pss.gossip import PssConfig
from ..runtime.live import LiveRuntime
from ..runtime.supervisor import SupervisorConfig
from ..telemetry.export import export_jsonl
from ..workload.driver import WorkloadDriver
from .common import scaled

__all__ = ["run", "run_soak", "SoakResult", "DEFAULT_PLAN", "default_plan"]

_PAYLOAD = 160  # bytes per CBR packet (Table I's VoIP-like rate)
_CBR_INTERVAL = 0.25

# Timeline (seconds, relative to workload start).  The fault schedule
# lives inside the "during" window; "after" starts past a heal grace so
# keepalive eviction and supervisor restarts have had time to bite.
_BEFORE = (0.0, 3.0)
_DURING = (3.0, 8.0)
_AFTER = (9.5, 13.5)
_KILL_AT = 5.0
_TAIL = 1.0  # run past the last window so trailing deliveries land

DEFAULT_PLAN = FaultPlan(
    [
        LossBurst(3.0, 6.0, 0.25),
        Stall(4.0, 0.05, 2.0),
        NatRebind(6.5, 0.1),
    ]
)


def default_plan() -> FaultPlan:
    """The scripted schedule the soak runs when none is supplied."""
    return DEFAULT_PLAN


@dataclass
class SoakResult:
    """Everything the soak measured (the report is rendered from this)."""

    nodes: int = 0
    groups: int = 0
    formation_time: float = 0.0
    # window -> [delivered, sent] for packets *sent* in that window.
    windows: dict[str, list[int]] = field(
        default_factory=lambda: {"before": [0, 0], "during": [0, 0], "after": [0, 0]}
    )
    killed: tuple[NodeId, ...] = ()
    restarts: int = 0
    rejoined: int = 0
    reconvergence_time: float | None = None
    fault_counts: dict[str, int] = field(default_factory=dict)
    decision_digest: str = ""
    telemetry_consistent: bool = True
    telemetry_notes: list[str] = field(default_factory=list)

    def rate(self, window: str) -> float | None:
        delivered, sent = self.windows[window]
        return delivered / sent if sent else None


def _digest(decisions) -> str:
    blob = repr(decisions).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def _fast_config() -> WhisperConfig:
    # The paper's timers compressed onto the soak's ~20 s wall-clock
    # timeline: without second-scale keepalives, sessions to crashed or
    # rebound peers would outlive the whole run and poison WCL path
    # selection far past the heal.
    return WhisperConfig(
        pss=PssConfig(exchange_keys=True, cycle_time=0.5, response_timeout=2.0),
        ppss=PpssConfig(
            cycle_time=1.0, join_retry_every=1.0, response_timeout=3.0,
            heartbeat_enabled=False,
        ),
        traversal=TraversalPolicy(keepalive_interval=1.0, keepalive_misses=2),
    )


def run_soak(
    n_nodes: int,
    seed: int = 2026,
    plan: FaultPlan | None = None,
    trace_out: str | None = None,
) -> SoakResult:
    """Host ``n_nodes`` live loopback stacks through the fault schedule."""
    plan = plan if plan is not None else default_plan()
    result = SoakResult(nodes=n_nodes)
    rt = LiveRuntime(
        provider="sim",
        seed=seed,
        whisper=_fast_config(),
        telemetry_enabled=True,
    )
    try:
        _run_soak(rt, n_nodes, seed, plan, result)
        if trace_out is not None:
            export_jsonl(rt.telemetry, trace_out)
    finally:
        rt.close()
    return result


def _run_soak(
    rt: LiveRuntime,
    n_nodes: int,
    seed: int,
    plan: FaultPlan,
    result: SoakResult,
) -> None:
    scheduler = rt.scheduler
    for nid in range(n_nodes):
        rt.add_node(nid)
    introducer_ids = list(range(min(5, n_nodes)))
    rt.start([rt.descriptor(nid) for nid in introducer_ids])

    # ---- groups: ~12 members each, the leader doubles as the CBR sink ----
    group_size = 12
    n_groups = max(1, n_nodes // group_size)
    result.groups = n_groups
    leaders: dict[str, WhisperNode] = {}
    membership: dict[NodeId, str] = {}
    for g in range(n_groups):
        members = list(range(g * group_size, min((g + 1) * group_size, n_nodes)))
        gname = f"room-{g}"
        leader = rt.nodes[members[0]]
        ppss = leader.create_group(gname)
        leaders[gname] = leader
        membership[members[0]] = gname
        for nid in members[1:]:
            rt.nodes[nid].join_group(ppss.invite())
            membership[nid] = gname

    def formed() -> bool:
        return all(
            rt.nodes[nid].groups[gname].state is MemberState.MEMBER
            for nid, gname in membership.items()
        )

    t0 = scheduler.now
    rt.run_until(formed, timeout=60.0 + n_nodes)
    result.formation_time = scheduler.now - t0

    # ---- supervision + fault fabric -------------------------------------
    supervisor = rt.supervise(
        SupervisorConfig(
            probe_interval=0.5, backoff_base=0.25,
            backoff_max=2.0, healthy_after=5.0,
        )
    )
    rejoined_at: dict[NodeId, float] = {}

    def reinvite(node: WhisperNode) -> None:
        # A restarted incarnation comes back with no group state; hand it
        # a fresh invitation so it can rejoin its room.
        gname = membership.get(node.node_id)
        if gname is None or gname in node.groups:
            return
        node.join_group(leaders[gname].group(gname).invite())

    supervisor.on_restart = reinvite
    fabric = LiveFaultFabric(rt.network, seed=seed, telemetry=rt.telemetry)
    fabric.arm(plan)

    # ---- workload: per group, two member->leader CBR streams -------------
    driver = WorkloadDriver(scheduler, rt.telemetry, seed=seed)
    window = {"name": None}
    in_flight: dict[tuple[str, int], str] = {}
    horizon = _AFTER[1] + _TAIL

    def make_sink(gname: str):
        def sink(payload, _reply_to) -> None:
            if not isinstance(payload, dict) or payload.get("app") != "soak":
                return
            key = (payload["sid"], payload["seq"])
            sent_in = in_flight.pop(key, None)
            if sent_in is None:
                return  # duplicate delivery, or sent outside a window
            result.windows[sent_in][0] += 1
            driver.note_completion(
                payload["sid"],
                latency=scheduler.now - payload["t"],
                nbytes=payload["size"],
            )
        return sink

    def make_action(sender_id: NodeId, gname: str, sid: str):
        def action(seq: int, now: float) -> bool:
            node = rt.nodes.get(sender_id)
            if node is None or not node.alive:
                return False
            ppss = node.groups.get(gname)
            if ppss is None or ppss.state is not MemberState.MEMBER:
                return False
            leader_ppss = leaders[gname].group(gname)
            payload = {
                "app": "soak", "sid": sid, "seq": seq,
                "t": now, "size": _PAYLOAD,
            }
            if not ppss.send_app(
                leader_ppss.self_contact(), payload, _PAYLOAD,
                include_self_contact=False,
            ):
                return False
            name = window["name"]
            if name is not None:
                result.windows[name][1] += 1
                in_flight[(sid, seq)] = name
            driver.note_offered_bytes(sid, _PAYLOAD)
            return True
        return action

    senders: list[NodeId] = []
    for gname, leader in leaders.items():
        leader.group(gname).set_app_handler(make_sink(gname))
        members = [n for n, g in membership.items() if g == gname and n != leader.node_id]
        for i, sender_id in enumerate(members[:2]):
            sid = f"{gname}-s{i}"
            senders.append(sender_id)
            driver.add_stream(
                sid, "cbr", make_action(sender_id, gname, sid),
                interval=_CBR_INTERVAL, start=0.0, until=horizon,
            )
    driver.arm()

    # ---- node kills (healed by the supervisor) ---------------------------
    protected = set(introducer_ids) | {l.node_id for l in leaders.values()}
    kill_rng = rt.registry.stream("soak-kills")
    candidates = sorted(set(rt.nodes) - protected - set(senders))
    kill_count = min(len(candidates), max(2, round(0.05 * n_nodes)))
    victims = sorted(kill_rng.sample(candidates, kill_count)) if kill_count else []
    result.killed = tuple(victims)
    kill_time = {"at": None}

    def kill() -> None:
        kill_time["at"] = scheduler.now
        for nid in victims:
            rt.crash_node(nid)

    scheduler.schedule(_KILL_AT, kill)

    def poll_rejoin() -> None:
        if kill_time["at"] is None:
            scheduler.schedule(0.25, poll_rejoin)
            return
        for nid in victims:
            if nid in rejoined_at:
                continue
            node = rt.nodes.get(nid)
            gname = membership.get(nid)
            if (
                node is not None and node.alive and gname is not None
                and gname in node.groups
                and node.groups[gname].state is MemberState.MEMBER
            ):
                rejoined_at[nid] = scheduler.now
        if len(rejoined_at) < len(victims) and scheduler.now < horizon + 6.0:
            scheduler.schedule(0.25, poll_rejoin)

    scheduler.schedule(_KILL_AT + 0.5, poll_rejoin)

    # ---- walk the measurement timeline ----------------------------------
    base = scheduler.now
    for name, (start, end) in (
        ("before", _BEFORE), ("during", _DURING), ("after", _AFTER),
    ):
        rt.run_for(max(0.0, base + start - scheduler.now))
        window["name"] = name
        rt.run_for(base + end - scheduler.now)
        window["name"] = None
    rt.run_for(_TAIL)
    # Give late rejoins a chance to land before the final reckoning.
    rt.run_until(lambda: len(rejoined_at) >= len(victims), timeout=6.0)
    rt.drain(timeout=1.0)

    # ---- reduce ----------------------------------------------------------
    result.restarts = supervisor.stats.restarts
    result.rejoined = len(rejoined_at)
    if victims and kill_time["at"] is not None and rejoined_at:
        result.reconvergence_time = (
            max(rejoined_at.values()) - kill_time["at"]
            if len(rejoined_at) == len(victims)
            else None
        )
    stats = fabric.stats
    result.fault_counts = {
        "dropped": stats.dropped,
        "delayed": stats.delayed,
        "duplicated": stats.duplicated,
        "reordered": stats.reordered,
        "rebinds": stats.rebinds,
        "nodes_stalled": stats.nodes_stalled,
        "activated": stats.faults_activated,
        "healed": stats.faults_healed,
    }
    result.decision_digest = _digest(fabric.decision_digest())
    _cross_check_telemetry(rt, supervisor, stats, result)


def _cross_check_telemetry(rt, supervisor, fault_stats, result: SoakResult) -> None:
    """Every injected fault and restart must be visible in telemetry."""
    metrics = rt.telemetry.metrics

    def total(name: str) -> int:
        agg = metrics.aggregate(name)
        return int(agg.get("sum", 0)) if agg else 0

    checks = [
        ("faults.live.injected", fault_stats.faults_activated),
        ("faults.live.healed", fault_stats.faults_healed),
        ("faults.live.dropped", fault_stats.dropped),
        ("faults.live.delayed", fault_stats.delayed),
        ("faults.live.duplicated", fault_stats.duplicated),
        ("faults.live.rebinds", fault_stats.rebinds),
        ("faults.live.stalled_nodes", fault_stats.nodes_stalled),
        ("supervisor.restarts", supervisor.stats.restarts),
        ("net.rebinds", rt.network.stats.rebinds),
    ]
    for name, expected in checks:
        got = total(name)
        if got != expected:
            result.telemetry_consistent = False
            result.telemetry_notes.append(
                f"{name}: telemetry says {got}, in-memory stats say {expected}"
            )


def run(
    scale: float = 1.0,
    seed: int = 2026,
    nodes: int | None = None,
    fault_plan: str | None = None,
    trace_out: str | None = None,
    route_floor: float | None = None,
) -> Report:
    """Soak report; raises :class:`RecoveryViolation` below ``route_floor``."""
    n_nodes = nodes if nodes is not None else scaled(100, scale, minimum=24)
    if fault_plan is not None:
        with open(fault_plan, "r", encoding="utf-8") as fh:
            plan = FaultPlan.from_json(fh.read())
    else:
        plan = default_plan()
    result = run_soak(n_nodes, seed=seed, plan=plan, trace_out=trace_out)

    report = Report(title="Soak — live nodes under a scripted fault schedule")
    table = Table(
        title=(
            f"{result.nodes} live loopback nodes, {result.groups} groups; "
            f"formation {result.formation_time:.1f} s"
        ),
        headers=["Window", "Sent", "Delivered", "Route success"],
    )
    for name in ("before", "during", "after"):
        delivered, sent = result.windows[name]
        table.add_row(name, sent, delivered, _fmt(result.rate(name)))
    report.add(table)

    sup = Table(
        title="Supervision",
        headers=["Killed", "Restarts", "Rejoined", "Re-convergence"],
    )
    reconv = (
        f"{result.reconvergence_time:.1f} s"
        if result.reconvergence_time is not None
        else "-"
    )
    sup.add_row(
        len(result.killed), result.restarts,
        f"{result.rejoined}/{len(result.killed)}", reconv,
    )
    report.add(sup)

    faults = Table(
        title=f"Injected faults (decision digest {result.decision_digest})",
        headers=["Fault", "Count"],
    )
    for key, value in result.fault_counts.items():
        faults.add_row(key, value)
    report.add(faults)

    if result.telemetry_consistent:
        report.note(
            "All fault and restart counts are telemetry-verified "
            "(faults.live.*, supervisor.*, net.* counters match in-memory "
            "stats).  Same seed + plan reproduces the decision digest."
        )
    else:
        report.note(
            "TELEMETRY MISMATCH: " + "; ".join(result.telemetry_notes)
        )
    after_rate = result.rate("after")
    if route_floor is not None:
        if after_rate is None:
            raise RecoveryViolation("no packets sent in the post-heal window")
        check_post_heal_success(after_rate, route_floor)
        report.note(
            f"Post-heal route success {after_rate:.1%} clears the "
            f"{route_floor:.0%} floor."
        )
    if not result.telemetry_consistent:
        raise RecoveryViolation(
            "telemetry does not account for every injected fault: "
            + "; ".join(result.telemetry_notes)
        )
    return report


def _fmt(rate: float | None) -> str:
    return f"{rate:.1%}" if rate is not None else "-"
