"""``load`` — heavy-traffic workloads over the deployed stack.

Drives the :mod:`repro.workload` scenario catalogue — CBR group streams,
Zipf T-Chord lookups, a flash crowd of joins, hundreds of concurrent
groups — plus a fault variant (``cbr+loss``) that injects a 25% loss burst
mid-stream and asserts the streams actually recover
(:func:`~repro.harness.invariants.check_stream_recovery`).

Each scenario is one sweep point: its own seeded world, reduced to a
per-stream ledger plus a SHA-256 of the full telemetry trace.  The hash
lands in the rendered report, so "same seed ⇒ byte-identical run" is
directly diffable across reruns and worker counts — the open-loop
determinism contract, made visible.
"""

from __future__ import annotations

import contextlib
import hashlib
from dataclasses import dataclass, field, replace

from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan, LossBurst
from ..harness.invariants import (
    RecoveryViolation,
    check_invariants,
    check_stream_recovery,
)
from ..harness.report import CdfSummary, Report, Table
from ..harness.world import World, WorldConfig
from ..parallel import SweepSpec, derive_seed, run_sweep
from ..workload import build_scenario, world_size
from ..workload.attach import AttachedWorkload

__all__ = ["run", "run_scenario", "LoadResult"]

DEFAULT_SCENARIOS = ("cbr", "zipf", "flash", "multigroup", "cbr+loss")

_WARMUP = 120.0  # PSS/overlay bootstrap before groups form
_CONVERGE = 240.0  # group membership + ring gossip before traffic arms
_DRAIN = 60.0  # post-horizon window for in-flight completions
_LOSS_RATE = 0.25
_RECOVERY_GRACE = 15.0
_LOSS_MIN_DURATION = 120.0  # keep the after-window meaningful at small scales


@dataclass
class LoadResult:
    """One scenario world reduced to its picklable ledger."""

    name: str
    nodes: int
    groups: int
    streams: list[dict[str, object]] = field(default_factory=list)
    latency: dict[str, float] = field(default_factory=dict)  # pooled p50/p95/p99
    offered: int = 0
    completed: int = 0
    failed: int = 0
    lag: int = 0
    goodput_bps: float = 0.0
    trace_sha: str = ""
    # cbr+loss only: window name -> delivery ratio, plus the verdict.
    windows: dict[str, float] = field(default_factory=dict)
    recovered: bool | None = None

    @property
    def delivery_ratio(self) -> float:
        return self.completed / self.offered if self.offered else 0.0


def _point(point) -> LoadResult:
    scenario, point_seed, scale = point
    return run_scenario(scenario, point_seed, scale)


def run(
    scale: float = 1.0,
    seed: int = 7,
    scenarios: tuple[str, ...] | None = None,
    workers: int = 1,
) -> Report:
    report = Report(title="Load — heavy-traffic workloads over PPSS/T-Chord")
    names = scenarios if scenarios is not None else DEFAULT_SCENARIOS
    spec = SweepSpec(
        name="load",
        points=tuple(
            (name, derive_seed(seed, "load", name), scale) for name in names
        ),
        worker=_point,
    )
    results = run_sweep(spec, workers=workers)

    table = Table(
        title=f"scenarios at scale {scale:g} (seed {seed})",
        headers=[
            "Scenario", "Nodes", "Groups", "Streams", "Offered",
            "Delivered", "P95 lat (s)", "Goodput (B/s)", "Lag", "Trace",
        ],
    )
    for result in results:
        table.add_row(
            result.name,
            result.nodes,
            result.groups,
            len(result.streams),
            result.offered,
            f"{result.delivery_ratio:.1%}",
            _fmt_latency(result.latency.get("p95")),
            f"{result.goodput_bps:.1f}",
            result.lag,
            result.trace_sha[:12],
        )
    report.add(table)

    for result in results:
        if result.recovered is None:
            continue
        fault_table = Table(
            title=(
                f"{result.name}: delivery through a {_LOSS_RATE:.0%} "
                "loss burst"
            ),
            headers=["Window", "Delivery", "Verdict"],
        )
        for window in ("before", "during", "after"):
            fault_table.add_row(
                window,
                f"{result.windows.get(window, 0.0):.1%}",
                "recovered" if window == "after" and result.recovered else "",
            )
        report.add(fault_table)
        if not result.recovered:
            report.note(
                f"{result.name}: streams did NOT recover to the pre-fault "
                "delivery level"
            )

    cbr = next((r for r in results if r.name == "cbr"), None)
    if cbr is not None:
        samples = [
            float(row["p50"]) for row in cbr.streams if "p50" in row
        ]
        if samples:
            report.add(
                CdfSummary(
                    title="cbr per-stream median delivery latency",
                    samples=samples,
                    unit="s",
                )
            )
    report.note(
        "Trace = SHA-256 prefix of the full telemetry export: same seed "
        "must print the same hash at any --workers count."
    )
    report.note(
        "Lag counts offered-but-unresolved operations; open-loop arrivals "
        "never slow down, so sustained growth means offered load exceeds "
        "capacity."
    )
    return report


def _fmt_latency(value: object) -> str:
    return f"{value:.3f}" if isinstance(value, float) else "-"


def run_scenario(
    name: str, seed: int, scale: float = 1.0, probe=None
) -> LoadResult:
    """Run one load scenario in its own world; ``<base>+loss`` variants
    overlay a mid-stream loss burst and window the delivery accounting.

    ``probe`` is an optional :class:`~repro.perf.probe.PerfProbe`: phases
    wrap deploy/converge/traffic and the world's simulator + telemetry are
    attached, so ``bench_load`` gets the standard throughput metrics."""
    with_loss = name.endswith("+loss")
    base = name[: -len("+loss")] if with_loss else name
    spec = build_scenario(base, scale)
    if with_loss:
        # The before/during/after windows each need enough arrivals to
        # make their delivery ratios statistically meaningful, so the
        # fault variant floors every stream's duration.
        spec = replace(
            spec,
            models=tuple(
                replace(m, duration=max(m.duration, _LOSS_MIN_DURATION))
                if hasattr(m, "duration")
                else m
                for m in spec.models
            ),
        )
    phase = probe.phase if probe is not None else _null_phase
    world = World(WorldConfig(seed=seed, telemetry_enabled=True))
    with phase("deploy"):
        world.populate(world_size(spec, scale))
        world.start_all()
        world.run(_WARMUP)
    with phase("converge"):
        attached = AttachedWorkload(world, spec, seed=seed)
        world.run(_CONVERGE)
    attached.arm()

    horizon = spec.horizon()
    result = LoadResult(
        name=name, nodes=len(world.nodes), groups=spec.groups
    )
    with phase("traffic"):
        if with_loss:
            _run_loss_windows(world, attached, horizon, result)
        else:
            world.run(horizon + _DRAIN)
    attached.finish()
    if probe is not None:
        probe.attach_sim(world.sim)
        probe.attach_telemetry(world.telemetry)

    check_invariants(world)
    driver = attached.driver
    result.streams = attached.summary()
    result.offered = driver.offered
    result.completed = driver.completed
    result.failed = driver.failed
    result.lag = driver.lag
    now = world.sim.now
    result.goodput_bps = round(
        sum(a.goodput(now) for a in driver.accounts.values()), 3
    )
    result.latency = _pooled_latency(world)
    result.trace_sha = hashlib.sha256(
        world.telemetry.export_jsonl().encode("utf-8")
    ).hexdigest()
    return result


def _null_phase(name: str):
    return contextlib.nullcontext()


def _pooled_latency(world: World) -> dict[str, float]:
    """p50/p95/p99 over every stream's latency samples, rounded stably."""
    aggregate = world.telemetry.aggregate(
        "workload.latency", percentiles=(50.0, 95.0, 99.0)
    )
    return {
        key: round(float(value), 4)
        for key, value in aggregate.items()
        if key.startswith("p")
    }


def _run_loss_windows(
    world: World,
    attached: AttachedWorkload,
    horizon: float,
    result: LoadResult,
) -> None:
    """Walk before/during/after windows around a mid-stream loss burst."""
    fault_start = horizon / 3.0
    fault_end = 2.0 * horizon / 3.0
    FaultInjector(
        world,
        FaultPlan.of(
            LossBurst(start=fault_start, end=fault_end, rate=_LOSS_RATE)
        ),
    )
    driver = attached.driver

    def snapshot() -> tuple[int, int]:
        return driver.offered, driver.completed

    def ratio(before: tuple[int, int], after: tuple[int, int]) -> float:
        offered = after[0] - before[0]
        completed = after[1] - before[1]
        return completed / offered if offered else 0.0

    mark = snapshot()
    world.run(fault_start)
    before_mark = snapshot()
    result.windows["before"] = round(ratio(mark, before_mark), 4)
    world.run(fault_end - fault_start)
    during_mark = snapshot()
    result.windows["during"] = round(ratio(before_mark, during_mark), 4)
    world.run(_RECOVERY_GRACE)
    grace_mark = snapshot()
    world.run(horizon - fault_end - _RECOVERY_GRACE + _DRAIN)
    result.windows["after"] = round(min(ratio(grace_mark, snapshot()), 1.0), 4)
    try:
        check_stream_recovery(
            result.windows["before"],
            result.windows["during"],
            result.windows["after"],
        )
        result.recovered = True
    except RecoveryViolation:
        result.recovered = False
