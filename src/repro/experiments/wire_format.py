"""Wire format — measured frame sizes vs the paper's ``WireSizes`` model.

The paper's bandwidth figures (Fig. 6, Fig. 8) are computed from size
*estimates*: 1 KB public keys, 40-byte view entries, 128-byte onion
layer overheads.  With the binary codec those numbers become measurable.
This experiment reports three things:

1. codec throughput — encode/decode rate over realistic payloads of
   every registered message kind (the cost a live deployment pays per
   message, with no simulator in the loop);
2. measured vs estimated frame sizes — a sim run with the codec in
   ``"verify"`` mode records, for every fabric message, the bytes the
   codec produced next to the bytes the protocol layer claimed;
3. figure deltas — Fig. 6's headline cell re-run with ``"measured"``
   sizes, quantifying how the codec-true bytes shift the per-cycle
   bandwidth the paper reports.

Note the sim-provider caveat: in sim-crypto worlds, sealed envelopes
charge their *modelled* sizes but encode as structural placeholders, so
measured onion bytes under the sim provider are a floor, not a claim
about RSA output sizes.  Kind-level framing and gossip/control sizes are
provider-independent.
"""

from __future__ import annotations

import time

from .. import wire
from ..harness.report import Report, Table
from ..harness.world import World, WorldConfig
from ..wire.samples import SampleContext, sample_kinds, sample_payload
from .common import scaled
from .fig6_key_sampling import run as fig6_run

__all__ = ["run"]


def run(scale: float = 1.0, seed: int = 1010) -> Report:
    report = Report(title="Wire format — codec throughput and measured sizes")
    report.add(_throughput_table(seed))
    report.add(_audit_table(scale, seed))
    _fig6_delta(report, scale, seed)
    report.note(
        "ratio = measured frame bytes / WireSizes estimate; >1 means the "
        "paper's constants undershoot what the codec actually emits."
    )
    report.note(
        "sim-provider caveat: sealed blobs encode as structural placeholders, "
        "so onion-bearing kinds are measured floors, not RSA byte counts."
    )
    return report


def _throughput_table(seed: int, per_kind: int = 200) -> Table:
    table = Table(
        title="Codec throughput (sim-crypto payloads)",
        headers=["kind", "bytes/frame", "encode/s", "decode/s", "enc MB/s"],
    )
    ctx = SampleContext.fresh(seed=seed)
    for kind in sample_kinds():
        payloads = [sample_payload(kind, ctx) for _ in range(8)]
        frames = [wire.encode_message(kind, p) for p in payloads]
        t0 = time.perf_counter()
        for i in range(per_kind):
            wire.encode_message(kind, payloads[i % len(payloads)])
        t_enc = time.perf_counter() - t0
        t0 = time.perf_counter()
        for i in range(per_kind):
            wire.decode_message(frames[i % len(frames)])
        t_dec = time.perf_counter() - t0
        mean_bytes = sum(len(f) for f in frames) / len(frames)
        table.add_row(
            kind,
            round(mean_bytes),
            round(per_kind / max(t_enc, 1e-9)),
            round(per_kind / max(t_dec, 1e-9)),
            mean_bytes * per_kind / max(t_enc, 1e-9) / (1024 * 1024),
        )
    return table


def _audit_table(scale: float, seed: int) -> Table:
    """Run a small deployment with the codec verifying every send."""
    world = World(WorldConfig(seed=seed, wire_mode="verify"))
    world.populate(scaled(120, scale, minimum=24))
    world.start_all()
    leader = world.nodes[1].create_group("wire-audit")
    world.sim.run(until=60.0)
    world.nodes[4].join_group(leader.invite())
    world.nodes[7].join_group(leader.invite())
    world.sim.run(until=240.0)
    table = Table(
        title="Measured vs estimated bytes per fabric message (240 s sim run)",
        headers=["kind", "count", "est mean", "measured mean", "ratio"],
    )
    for row in world.network.wire_audit.table():
        table.add_row(
            row["kind"],
            row["count"],
            round(row["mean_estimated"]),
            round(row["mean_measured"]),
            row["ratio"],
        )
    return table


def _fig6_delta(report: Report, scale: float, seed: int) -> None:
    """Fig. 6 headline config under estimated vs codec-measured sizes."""
    small = min(scale, 0.2)  # the delta needs shape, not the full campaign
    kwargs = dict(scale=small, seed=seed, warmup_cycles=5, window_cycles=5)
    estimated = fig6_run(wire_mode="off", **kwargs)
    measured = fig6_run(wire_mode="measured", **kwargs)
    table = Table(
        title="Fig. 6 delta — 70/30 ratio, estimated vs measured sizes",
        headers=["config", "N up (est)", "N up (meas)", "P up (est)", "P up (meas)"],
    )
    est_table = estimated.sections[1]  # 70/30 is the second ratio table
    meas_table = measured.sections[1]
    for est_row, meas_row in zip(est_table.rows, meas_table.rows):
        table.add_row(
            est_row[0], est_row[1], meas_row[1], est_row[3], meas_row[3]
        )
    report.add(table)
