"""Fig. 5 — Biased PSS: impact on clustering and in-degree distribution.

1,000 nodes on the cluster testbed, view size c=10, 70% natted, Π swept
from 0 (unmodified PSS baseline) to 3.  Reported: the CDF of local
clustering coefficients over all nodes and the in-degree CDFs of N-nodes
and P-nodes separately.

Expected shape (paper): clustering is essentially unaffected by Π; the
P-node in-degree distribution shifts right as Π grows while N-node
in-degrees shift slightly left.

Each Π value is an independent seeded world; the sweep runs through
:func:`repro.parallel.run_sweep`, so ``workers=N`` uses N cores with
output byte-identical to the sequential run.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.node import WhisperConfig
from ..harness.report import CdfSummary, Report, Table
from ..harness.world import World, WorldConfig
from ..metrics.graph import in_degree_distribution, local_clustering_coefficient
from ..metrics.stats import percentile
from ..net.address import NodeKind
from ..parallel import SweepSpec, derive_seed, run_sweep
from .common import scaled

__all__ = ["run"]


def _point(point: tuple[int, int, int, int]) -> tuple[list, list, list]:
    """One Π world reduced to its sample vectors (picklable)."""
    pi, point_seed, n_nodes, cycles = point
    world = World(
        WorldConfig(
            seed=point_seed,
            whisper=replace(WhisperConfig(), pi=pi),
        )
    )
    world.populate(n_nodes)
    world.start_all()
    world.run(cycles * 10.0)
    graph = world.view_graph()
    clustering = [
        local_clustering_coefficient(graph, node.node_id)
        for node in world.alive_nodes()
    ]
    n_ids = [n.node_id for n in world.alive_nodes() if n.cm.kind is NodeKind.NATTED]
    p_ids = [n.node_id for n in world.alive_nodes() if n.cm.kind is NodeKind.PUBLIC]
    n_degrees = [float(d) for d in in_degree_distribution(graph, n_ids)]
    p_degrees = [float(d) for d in in_degree_distribution(graph, p_ids)]
    return clustering, n_degrees, p_degrees


def run(
    scale: float = 1.0,
    seed: int = 1005,
    pi_values: tuple[int, ...] = (0, 1, 2, 3),
    cycles: int = 120,
    workers: int = 1,
) -> Report:
    report = Report(title="Fig. 5 — Biased PSS: clustering and in-degree")
    n_nodes = scaled(1000, scale, minimum=100)
    summary = Table(
        title=f"Summary over {n_nodes} nodes, {cycles} cycles of 10 s",
        headers=[
            "Pi", "clust p50", "clust p90", "clust max",
            "N-deg p50", "N-deg p90", "P-deg p50", "P-deg p90", "P-deg max",
        ],
    )
    spec = SweepSpec(
        name="fig5",
        points=tuple(
            (pi, derive_seed(seed, "fig5", pi), n_nodes, cycles)
            for pi in pi_values
        ),
        worker=_point,
    )
    for pi, (clustering, n_degrees, p_degrees) in zip(
        pi_values, run_sweep(spec, workers=workers)
    ):
        summary.add_row(
            pi,
            percentile(clustering, 50), percentile(clustering, 90), max(clustering),
            percentile(n_degrees, 50), percentile(n_degrees, 90),
            percentile(p_degrees, 50), percentile(p_degrees, 90), max(p_degrees),
        )
        report.add(CdfSummary(
            title=f"Pi={pi}: local clustering coefficient", samples=clustering,
        ))
        report.add(CdfSummary(
            title=f"Pi={pi}: in-degree, N-nodes only", samples=n_degrees,
        ))
        report.add(CdfSummary(
            title=f"Pi={pi}: in-degree, P-nodes only", samples=p_degrees,
        ))
    report.sections.insert(0, summary)
    report.note(
        "Paper shape: clustering negligibly affected by Pi; P-node in-degree "
        "grows with Pi; N-node distribution shifts slightly left."
    )
    return report
