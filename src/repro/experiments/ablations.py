"""Ablations over WHISPER's design choices (beyond the paper's figures).

Four studies, each isolating one design knob the paper fixes:

- **path length** (footnote 2): f mixes tolerate f-1 colluding attackers —
  at what cost in latency and CPU?
- **Π sweep under churn**: the availability/imbalance compromise of
  Section III-B-1, measured as route success vs P-node in-degree.
- **session leases**: TCP-friendly NATs (24 h associations, the paper's
  emulation) vs UDP-only leases (5 min) — how much of WHISPER's route
  availability rests on association persistence?
- **truncation policy**: the paper's biased healer vs the aggressive
  variant that evicts every surplus P-node.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.contact import Gateway, PrivateContact
from ..core.node import WhisperConfig
from ..churn.script import ChurnDriver, parse_script
from ..harness.report import Report, Table
from ..harness.world import World, WorldConfig
from ..metrics.graph import in_degree_distribution
from ..metrics.stats import percentile
from ..nat.traversal import TraversalPolicy
from ..net.address import NodeKind, Protocol
from ..parallel import SweepSpec, derive_seed, run_sweep
from ..pss.policies import AggressiveBiasedPolicy
from .common import GroupPlan, scaled

__all__ = [
    "run_observation_sweep",
    "run_path_length",
    "run_pi_sweep",
    "run_session_leases",
    "run_truncation_policy",
]


def _contact_for(node) -> PrivateContact:
    gateways = ()
    if node.cm.kind is NodeKind.NATTED:
        gateways = tuple(
            Gateway(descriptor=e.descriptor, key=e.key)
            for e in node.backlog.gateways_for_self()
        )
    return PrivateContact(
        descriptor=node.descriptor(), key=node.wcl.public_key, gateways=gateways
    )


# ----------------------------------------------------------------------
def run_path_length(
    scale: float = 1.0, seed: int = 2001, messages: int = 200,
    mix_counts: tuple[int, ...] = (2, 3, 4, 5),
) -> Report:
    """Latency and CPU cost of longer onion paths (colluder tolerance)."""
    report = Report(title="Ablation — onion path length (f mixes)")
    n_nodes = scaled(300, scale, minimum=60)
    world = World(WorldConfig(seed=seed))
    world.populate(n_nodes)
    world.start_all()
    world.run(150.0)
    natted = world.natted_nodes()
    rng = world.registry.stream("ablation")
    table = Table(
        title=f"{messages} messages between random N-node pairs, {n_nodes} nodes",
        headers=[
            "mixes", "colluders tolerated", "delivered", "latency p50 (s)",
            "latency p90 (s)", "crypto ms/message",
        ],
    )
    for mixes in mix_counts:
        latencies: list[float] = []
        acct = world.provider.accountant
        charged_before = sum(acct.node_total_ms(n.node_id) for n in world.alive_nodes())
        sent = 0
        for _ in range(messages):
            src, dst = rng.sample(natted, 2)
            sent_at = world.sim.now
            dst.wcl.set_receive_upcall(
                lambda content, size, s=sent_at: latencies.append(world.sim.now - s)
            )
            if src.wcl.send_to(_contact_for(dst), "probe", 512, mixes=mixes):
                sent += 1
            world.run(3.0)
        world.run(20.0)
        charged_after = sum(acct.node_total_ms(n.node_id) for n in world.alive_nodes())
        crypto_per_msg = (charged_after - charged_before) / max(sent, 1)
        table.add_row(
            mixes, mixes - 1, f"{len(latencies)}/{sent}",
            percentile(latencies, 50) if latencies else "-",
            percentile(latencies, 90) if latencies else "-",
            f"{crypto_per_msg:.1f}",
        )
    report.add(table)
    report.note(
        "Each extra mix adds one P-node hop: ~1 RSA decrypt (~45 ms) plus "
        "one network traversal of latency."
    )
    return report


# ----------------------------------------------------------------------
def _pi_point(point):
    """One Π world under churn, reduced to (counts, p_p90, n_p90)."""
    pi, point_seed, n_nodes, churn_rate, group_count = point
    world = World(
        WorldConfig(seed=point_seed, whisper=replace(WhisperConfig(), pi=pi))
    )
    # Enough initial nodes to yield group_count P-node leaders.
    world.populate(max(round(n_nodes * 0.15), group_count * 4))
    world.start_all()
    world.run(40.0)
    plan = GroupPlan(world, group_count)
    counts = {"success": 0, "alt": 0, "no_alt": 0}

    def hook(outcome, attempts, partner, duration):
        if outcome != "success" and partner not in world.nodes:
            return
        if outcome in ("alt", "alt_failed"):
            counts["alt"] += 1
        else:
            counts[outcome] += 1

    def wire(node):
        def subscribe():
            if not node.alive:
                return
            for name in plan.subscribe(node, 1):
                node.group(name).exchange_outcome_hook = hook
        world.sim.schedule(60.0, subscribe)

    for name, leader in plan.leaders.items():
        leader.group(name).exchange_outcome_hook = hook
    for node in world.alive_nodes():
        if node.node_id not in plan.leader_ids():
            wire(node)
    script = (
        f"from 0s to 30s join {n_nodes - len(world.nodes)}\n"
        "at 240s set replacement ratio to 100%\n"
        f"from 240s to 840s const churn {churn_rate}% each 60s\n"
        "at 840s stop"
    )
    ChurnDriver(
        world, parse_script(script), on_join=wire, protected=plan.leader_ids(),
    )
    world.run(900.0)
    graph = world.view_graph()
    p_ids = [n.node_id for n in world.public_nodes()]
    n_ids = [n.node_id for n in world.natted_nodes()]
    p_p90 = percentile(
        [float(d) for d in in_degree_distribution(graph, p_ids)], 90
    )
    n_p90 = percentile(
        [float(d) for d in in_degree_distribution(graph, n_ids)], 90
    )
    return counts, p_p90, n_p90


def run_pi_sweep(
    scale: float = 1.0, seed: int = 2002,
    pi_values: tuple[int, ...] = (1, 2, 3, 5),
    churn_rate: float = 5.0, group_count: int = 8,
    workers: int = 1,
) -> Report:
    """Route availability under churn vs P-node load, as Π grows."""
    report = Report(title="Ablation — Pi: route availability vs P-node load")
    n_nodes = scaled(400, scale, minimum=100)
    table = Table(
        title=(
            f"{n_nodes} nodes, {churn_rate:g}%/min churn, {group_count} groups"
        ),
        headers=[
            "Pi", "success", "alt", "no alt", "P in-degree p90 / N p90",
        ],
    )
    spec = SweepSpec(
        name="ablation-pi",
        points=tuple(
            (pi, derive_seed(seed, "ablation-pi", pi), n_nodes, churn_rate,
             group_count)
            for pi in pi_values
        ),
        worker=_pi_point,
    )
    for pi, (counts, p_p90, n_p90) in zip(
        pi_values, run_sweep(spec, workers=workers)
    ):
        total = sum(counts.values()) or 1
        table.add_row(
            pi,
            f"{counts['success'] / total:.1%}",
            f"{counts['alt'] / total:.1%}",
            f"{counts['no_alt'] / total:.1%}",
            f"{p_p90:.0f} / {n_p90:.0f}",
        )
    report.add(table)
    report.note(
        "The paper's compromise: higher Pi buys churn resilience at the "
        "price of P-node in-degree imbalance."
    )
    return report


# ----------------------------------------------------------------------
def _lease_point(point):
    """One lease-policy world reduced to (delivered, sent).

    Both policies deliberately share the same seed (a controlled
    comparison).  The policy travels as a flag, not a ``TraversalPolicy``
    object, to keep points plain picklable scalars.
    """
    udp, point_seed, n_nodes, messages = point
    policy = (
        TraversalPolicy(session_lifetime=300.0, protocol=Protocol.UDP)
        if udp else TraversalPolicy()
    )
    world = World(
        WorldConfig(
            seed=point_seed,
            whisper=replace(WhisperConfig(), traversal=policy),
        )
    )
    world.populate(n_nodes)
    world.start_all()
    world.run(150.0)
    # Capture gateway advertisements now, then let them go stale.
    natted = world.natted_nodes()
    rng = world.registry.stream("ablation")
    pairs = [tuple(rng.sample(natted, 2)) for _ in range(messages)]
    contacts = {dst.node_id: _contact_for(dst) for _, dst in pairs}
    world.run(600.0)  # the quiet gap: UDP leases expire, TCP survive
    delivered = []
    sent = 0
    for src, dst in pairs:
        dst.wcl.set_receive_upcall(
            lambda content, size, d=dst: delivered.append(d.node_id)
        )
        if src.wcl.send_to(contacts[dst.node_id], "stale probe", 256):
            sent += 1
        world.run(1.0)
    world.run(30.0)
    return len(delivered), sent


def run_session_leases(
    scale: float = 1.0, seed: int = 2003, messages: int = 300,
    workers: int = 1,
) -> Report:
    """TCP-friendly (24 h) vs UDP-only (5 min) NAT association leases."""
    report = Report(title="Ablation — NAT association leases (TCP vs UDP)")
    n_nodes = scaled(300, scale, minimum=60)
    table = Table(
        title=f"{messages} confidential messages after a 10-minute quiet gap",
        headers=["lease policy", "delivered", "first-attempt rate"],
    )
    policies = (("TCP 24h (paper)", False), ("UDP 5min", True))
    spec = SweepSpec(
        name="ablation-leases",
        points=tuple(
            (udp, seed, n_nodes, messages) for _label, udp in policies
        ),
        worker=_lease_point,
    )
    for (label, _udp), (delivered, sent) in zip(
        policies, run_sweep(spec, workers=workers)
    ):
        table.add_row(
            label, f"{delivered}/{messages}",
            f"{delivered / max(sent, 1):.1%}",
        )
    report.add(table)
    report.note(
        "WHISPER's route availability rests on associations outliving view "
        "residency; with 5-minute UDP leases, stale gateway info fails."
    )
    return report


# ----------------------------------------------------------------------
def _truncation_point(point):
    """One truncation-policy world reduced to its summary row values.

    Both policies deliberately share the same seed (a controlled
    comparison), so the point seed is the caller's seed untouched.
    """
    aggressive, point_seed, n_nodes = point
    world = World(WorldConfig(seed=point_seed))
    world.populate(n_nodes)
    if aggressive:
        for node in world.nodes.values():
            node.pss.policy = AggressiveBiasedPolicy(
                node.pss.config.view_size, node.config.pi
            )
    world.start_all()
    world.run(600.0)
    graph = world.view_graph()
    p_ids = [n.node_id for n in world.public_nodes()]
    degrees = [float(d) for d in in_degree_distribution(graph, p_ids)]
    p_counts = [n.pss.view.count_public() for n in world.alive_nodes()]
    meeting = sum(1 for c in p_counts if c >= 3)
    return (
        sum(p_counts) / len(p_counts),
        percentile(degrees, 50),
        percentile(degrees, 90),
        f"{meeting}/{len(p_counts)}",
    )


def run_truncation_policy(
    scale: float = 1.0, seed: int = 2004, workers: int = 1,
) -> Report:
    """Paper's biased healer vs the aggressive surplus-P eviction variant."""
    report = Report(title="Ablation — view truncation policy (Pi=3)")
    n_nodes = scaled(500, scale, minimum=100)
    table = Table(
        title=f"{n_nodes} nodes, 60 cycles",
        headers=[
            "policy", "P per view (mean)", "P in-degree p50", "P in-degree p90",
            "views meeting Pi",
        ],
    )
    policies = (("biased healer (paper)", False), ("aggressive eviction", True))
    spec = SweepSpec(
        name="ablation-policy",
        points=tuple(
            (aggressive, seed, n_nodes) for _label, aggressive in policies
        ),
        worker=_truncation_point,
    )
    for (label, _aggressive), row in zip(
        policies, run_sweep(spec, workers=workers)
    ):
        table.add_row(label, *row)
    report.add(table)
    report.note(
        "Aggressive eviction caps P-node presence near Pi, trading view "
        "diversity for flatter P-node load."
    )
    return report


# ----------------------------------------------------------------------
def _observation_point(point):
    """One path-length world reduced to (flow count, sweep dict).

    Both path lengths deliberately share the same seed (a controlled
    comparison).
    """
    from ..analysis import adversary_sweep, extract_flows
    from ..net.observer import LinkObserver

    path_mixes, point_seed, n_nodes, messages = point
    world = World(WorldConfig(seed=point_seed))
    tap = LinkObserver()
    tap.watch_all()
    world.network.add_observer(tap)
    world.populate(n_nodes)
    world.start_all()
    world.run(150.0)
    tap.packets.clear()  # only analyse the confidential phase
    natted = world.natted_nodes()
    rng = world.registry.stream("observe")
    for i in range(messages):
        src, dst = rng.sample(natted, 2)
        src.wcl.send_to(_contact_for(dst), f"m{i}", 256, mixes=path_mixes)
        world.run(2.0)
    world.run(20.0)
    flows = extract_flows(tap.packets)
    sweep = adversary_sweep(
        flows, link_fractions=(0.1, 0.25, 0.5, 0.75, 0.9),
        trials=15, rng=world.registry.stream("adversary"),
    )
    return len(flows), sweep


def run_observation_sweep(
    scale: float = 1.0, seed: int = 2005, messages: int = 200,
    mixes: int = 2, workers: int = 1,
) -> Report:
    """Relationship anonymity vs adversary link coverage.

    The paper's threat model excludes multi-point traffic analysis; this
    study quantifies the boundary: an adversary observing a fraction p of
    the links that ever carried onions fully traces ~p^h of the messages
    (h = wire hops).  Longer paths (footnote 2) push the curve down.
    """
    report = Report(title="Ablation — anonymity vs adversary link coverage")
    n_nodes = scaled(300, scale, minimum=60)
    path_lengths = (mixes, mixes + 1)
    spec = SweepSpec(
        name="ablation-anonymity",
        points=tuple(
            (path_mixes, seed, n_nodes, messages) for path_mixes in path_lengths
        ),
        worker=_observation_point,
    )
    for path_mixes, (flow_count, sweep) in zip(
        path_lengths, run_sweep(spec, workers=workers)
    ):
        table = Table(
            title=(
                f"{path_mixes} mixes, {flow_count} traced onions, "
                f"{n_nodes} nodes"
            ),
            headers=["links observed", "flows fully traced"],
        )
        for fraction, value in sweep.items():
            table.add_row(f"{fraction:.0%}", f"{value:.1%}")
        report.add(table)
    report.note(
        "A single-link observer (the paper's adversary) traces 0%; full "
        "linkage needs every hop of a path — ~p^h for coverage p."
    )
    return report
