"""Table II — CPU time per PPSS cycle for AES and RSA operations.

1,000 nodes on the cluster, 20 private groups, Π = 3, 1-minute PPSS
cycles.  Measures the average simulated CPU time each node class (N vs P)
spends per cycle on AES (bulk payload encryption) and RSA (onion layer
sealing/peeling and passports), read from the ``crypto.ms`` / ``crypto.ops``
telemetry counters the calibrated cost model maintains per (node, op).

Expected shape: RSA dominates AES by orders of magnitude; P-nodes spend
about 2x the total CPU of N-nodes because WCL path construction makes them
the preferred mixes (~4x the RSA decrypts); everything stays well below 1%
of the 60 s cycle.
"""

from __future__ import annotations

from ..core.node import WhisperConfig
from ..core.ppss import PpssConfig
from ..harness.report import Report, Table
from ..harness.world import World, WorldConfig
from ..net.address import NodeKind
from .common import GroupPlan, scaled, subscribe_groups

__all__ = ["run"]


def run(
    scale: float = 1.0,
    seed: int = 1002,
    group_count: int = 20,
    window_cycles: int = 8,
    circuits: bool = False,
) -> Report:
    """The Table II measurement; ``circuits=True`` adds the amortized rows.

    The amortized variant reruns the identical workload with circuit-mode
    WCL (persistent per-hop keys, RSA only at setup) so the report shows
    the same node classes side by side: RSA drops to the setup/rekey
    residue, AES absorbs the per-frame layer work.
    """
    report = Report(title="Table II — CPU time per PPSS cycle (AES vs RSA)")
    n_nodes = scaled(1000, scale, minimum=120)
    report.add(_measure(n_nodes, seed, group_count, window_cycles, False))
    if circuits:
        report.add(_measure(n_nodes, seed, group_count, window_cycles, True))
    report.note(
        "Paper: N-node 0.63 ms AES / 293 ms RSA; P-node 1.5 ms AES / 626 ms "
        "RSA; P/N total ratio ~2.13x, RSA-decrypt ratio ~4.12x; < 0.65% of "
        "the cycle."
    )
    return report


def _measure(
    n_nodes: int,
    seed: int,
    group_count: int,
    window_cycles: int,
    circuits: bool,
) -> Table:
    cycle = 60.0
    whisper = WhisperConfig(circuit_mode=True) if circuits else WhisperConfig()
    world = World(
        WorldConfig(seed=seed, telemetry_enabled=True, whisper=whisper)
    )
    world.populate(n_nodes)
    world.start_all()
    world.run(150.0)
    plan = GroupPlan(world, group_count, ppss_config=PpssConfig())
    subscribe_groups(world, plan, per_node=1, exclude=plan.leader_ids())
    world.run(240.0)  # joins settle; exchanges under way

    start = _snapshot(world)
    world.run(window_cycles * cycle)
    end = _snapshot(world)

    variant = "circuit-mode WCL (amortized RSA)" if circuits else "Pi=3"
    table = Table(
        title=(
            f"{n_nodes} nodes, {group_count} groups, {variant}, averaged "
            f"over {window_cycles} one-minute cycles"
        ),
        headers=[
            "node class", "AES ms/cycle", "RSA ms/cycle", "total ms/cycle",
            "% of cycle", "RSA decrypts/cycle",
        ],
    )
    for kind, label in ((NodeKind.NATTED, "N-node"), (NodeKind.PUBLIC, "P-node")):
        nodes = [n for n in world.alive_nodes() if n.cm.kind is kind]
        aes, rsa, decrypts = _deltas(nodes, start, end)
        aes /= window_cycles * max(len(nodes), 1)
        rsa /= window_cycles * max(len(nodes), 1)
        decrypts /= window_cycles * max(len(nodes), 1)
        total = aes + rsa
        table.add_row(
            label,
            f"{aes:.3f}", f"{rsa:.1f}", f"{total:.1f}",
            f"{total / (cycle * 1000.0):.3%}",
            f"{decrypts:.2f}",
        )
    return table


def _snapshot(world: World) -> dict:
    """Per-node AES/RSA totals from the crypto telemetry counters."""
    metrics = world.telemetry.metrics
    state: dict = {}

    def entry(node_id) -> dict:
        return state.setdefault(
            node_id, {"aes": 0.0, "rsa": 0.0, "decrypts": 0.0}
        )

    for labels, counter in metrics.collect("crypto.ms").items():
        label_map = dict(labels)
        op = str(label_map["op"])
        if op == "aes":
            entry(label_map["node"])["aes"] += counter.value
        elif op.startswith("rsa"):
            entry(label_map["node"])["rsa"] += counter.value
    for labels, counter in metrics.collect("crypto.ops").items():
        label_map = dict(labels)
        if label_map["op"] == "rsa_decrypt":
            entry(label_map["node"])["decrypts"] += counter.value
    return state


def _deltas(nodes, start, end) -> tuple[float, float, float]:
    aes = rsa = decrypts = 0.0
    for node in nodes:
        s = start.get(node.node_id, {"aes": 0.0, "rsa": 0.0, "decrypts": 0})
        e = end.get(node.node_id)
        if e is None:
            continue
        aes += e["aes"] - s["aes"]
        rsa += e["rsa"] - s["rsa"]
        decrypts += e["decrypts"] - s["decrypts"]
    return aes, rsa, decrypts
