"""The paper's evaluation (Section V): one module per table/figure.

Every module exposes ``run(scale=..., seed=...) -> Report``; rendering the
report prints the same rows/series the paper plots.  The benchmark suite in
``benchmarks/`` is a thin wrapper over these functions.
"""

from . import (
    fig5_biased_pss,
    fig6_key_sampling,
    fig7_rtt,
    fig8_group_bandwidth,
    fig9_tchord,
    table1_churn,
    table2_cpu,
    wire_format,
)
from .common import bench_scale

__all__ = [
    "bench_scale",
    "fig5_biased_pss",
    "fig6_key_sampling",
    "fig7_rtt",
    "fig8_group_bandwidth",
    "fig9_tchord",
    "table1_churn",
    "table2_cpu",
    "wire_format",
]

from . import ablations  # noqa: E402  (ablation studies beyond the paper)

__all__.append("ablations")
