"""Resilience — recovery from injected partial failures.

Beyond the paper's Table I (full node churn), this suite measures how the
stack behaves under the *partial* failures real deployments see: network
partitions that heal, nodes that stall without departing, NAT reboots that
wipe association state, and loss bursts.  Faults are injected below the
protocols (the fabric counts them as ordinary loss), so every point of
recovery comes from the stack itself — keepalive eviction, exchange
retries with backoff, and the WCL's degraded mix pool.

For each scenario the PPSS exchange outcome stream is split into three
windows — before the fault, while it is active, and after it heals — and
the post-heal window must return to within 5 points of the pre-fault
success rate.  Private views must also re-converge onto live members
(:func:`~repro.harness.invariants.check_private_view_recovery`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..churn.script import ChurnDriver, parse_script
from ..core.node import WhisperNode
from ..core.ppss import PpssConfig
from ..harness.invariants import (
    RecoveryViolation,
    check_exchange_recovery,
    check_invariants,
    check_private_view_recovery,
)
from ..harness.report import Report, Table
from ..harness.world import World, WorldConfig
from ..parallel import SweepSpec, derive_seed, run_sweep
from .common import GroupPlan, scaled

__all__ = ["run", "SCENARIOS", "run_scenario", "ScenarioResult"]

# Timeline (seconds): groups form by 300; the fault spans [600, 900); the
# recovery window starts 60 s after healing to give gossip a full cycle.
_FAULT_START = 600.0
_FAULT_END = 900.0
_RECOVERY_GRACE = 60.0
_WINDOWS = (
    ("before", 300.0, _FAULT_START),
    ("during", _FAULT_START, _FAULT_END),
    ("after", _FAULT_END + _RECOVERY_GRACE, 1320.0),
)

SCENARIOS: dict[str, list[str]] = {
    "none": [],
    "partition": [
        f"from {_FAULT_START:g}s to {_FAULT_END:g}s partition groups a|b",
    ],
    "stall": [
        f"at {_FAULT_START:g}s stall 10% for {_FAULT_END - _FAULT_START:g}s",
    ],
    "nat+loss": [
        f"at {_FAULT_START:g}s reset nat 50%",
        f"from {_FAULT_START:g}s to {_FAULT_END:g}s loss 15%",
    ],
}


@dataclass
class ScenarioResult:
    """Per-window exchange outcomes for one fault scenario."""

    name: str
    # window -> [successes, total classified exchanges]
    windows: dict[str, list[int]] = field(
        default_factory=lambda: {name: [0, 0] for name, _, _ in _WINDOWS}
    )
    recovered: bool = False
    view_recovery_ok: bool = False

    def rate(self, window: str) -> float | None:
        success, total = self.windows[window]
        return success / total if total else None


def _point(point) -> ScenarioResult:
    """One fault-scenario world reduced to its window outcomes."""
    name, point_seed, n_nodes, group_count = point
    return run_scenario(name, point_seed, n_nodes, group_count)


def run(
    scale: float = 1.0,
    seed: int = 2001,
    scenarios: tuple[str, ...] | None = None,
    group_count: int = 8,
    workers: int = 1,
) -> Report:
    report = Report(title="Resilience — recovery from injected faults")
    n_nodes = scaled(400, scale, minimum=100)
    table = Table(
        title=(
            f"{n_nodes} nodes, {group_count} groups; fault "
            f"{_FAULT_START:g}-{_FAULT_END:g} s, recovery window after "
            f"+{_RECOVERY_GRACE:g} s grace"
        ),
        headers=[
            "Scenario", "Before", "During", "After", "Recovered", "Views",
        ],
    )
    names = scenarios if scenarios is not None else tuple(SCENARIOS)
    spec = SweepSpec(
        name="resilience",
        points=tuple(
            (name, derive_seed(seed, "resilience", name), n_nodes, group_count)
            for name in names
        ),
        worker=_point,
    )
    for name, result in zip(names, run_sweep(spec, workers=workers)):
        table.add_row(
            name,
            _fmt(result.rate("before")),
            _fmt(result.rate("during")),
            _fmt(result.rate("after")),
            "yes" if result.recovered else "NO",
            "ok" if result.view_recovery_ok else "DEGRADED",
        )
    report.add(table)
    report.note(
        "Recovered = post-heal exchange success within 5 points of the "
        "pre-fault window; Views = private views re-converged onto live "
        "members.  Faults are injected below the protocols, so recovery "
        "is entirely the stack's doing."
    )
    return report


def _fmt(rate: float | None) -> str:
    return f"{rate:.1%}" if rate is not None else "-"


def run_scenario(
    scenario: str,
    seed: int,
    n_nodes: int,
    group_count: int,
    tolerance: float = 0.05,
) -> ScenarioResult:
    """Run one fault scenario; returns per-window outcome counts."""
    fault_lines = SCENARIOS[scenario]
    world = World(WorldConfig(seed=seed))
    result = ScenarioResult(name=scenario)
    # Heartbeat-driven leader election is disabled: a partition genuinely
    # split-brains leadership (each side elects, each rolls the group key),
    # which is a key-management question, not the route-recovery question
    # this suite measures.  With elections off, the keyring stays linear
    # and check_invariants isolates transport-level recovery.
    ppss_config = PpssConfig(heartbeat_enabled=False)

    # Leaders are protected from nothing here — no churn is scripted — but
    # group formation still needs enough P-nodes up front.
    world.populate(max(round(n_nodes * 0.2), group_count * 4))
    world.start_all()
    world.run(40.0)
    plan = GroupPlan(world, group_count, ppss_config=ppss_config)

    window = {"name": None}

    def hook(outcome: str, attempts: int, partner: int, duration: float) -> None:
        name = window["name"]
        if name is None:
            return
        if outcome != "success" and partner not in world.nodes:
            return  # dead destination, not a route failure (footnote 3)
        counts = result.windows[name]
        counts[1] += 1
        if outcome == "success":
            counts[0] += 1

    def wire_node(node: WhisperNode) -> None:
        def subscribe() -> None:
            if not node.alive:
                return
            for name in plan.subscribe(node, 1):
                node.group(name).exchange_outcome_hook = hook

        world.sim.schedule(60.0, subscribe)

    for name, leader in plan.leaders.items():
        leader.group(name).exchange_outcome_hook = hook
    for node in world.alive_nodes():
        if node.node_id not in plan.leader_ids():
            wire_node(node)

    script_lines = [f"from 0s to 30s join {n_nodes - len(world.nodes)}"]
    script_lines += fault_lines
    script_lines.append("at 1350s stop")
    driver = ChurnDriver(
        world,
        parse_script("\n".join(script_lines)),
        on_join=wire_node,
        protected=plan.leader_ids(),
    )

    # Walk the timeline, opening and closing measurement windows.
    now = 0.0
    for name, start, end in _WINDOWS:
        world.run(start - now)
        window["name"] = name
        world.run(end - start)
        window["name"] = None
        now = end

    before = result.rate("before")
    after = result.rate("after")
    result.recovered = (
        before is not None
        and after is not None
        and after >= before - tolerance
    )
    if before is not None and after is not None:
        try:
            check_exchange_recovery(before, after, tolerance=tolerance)
        except RecoveryViolation:
            pass  # already reflected in result.recovered
    check_invariants(world)
    result.view_recovery_ok = True
    for name in plan.names:
        try:
            check_private_view_recovery(world, name)
        except RecoveryViolation:
            result.view_recovery_ok = False
    del driver
    return result
