"""Scale — 5,000-node PSS+WCL headroom run.

The paper's experiments top out at 1,000 cluster nodes; this experiment
pushes the same stack to 5,000 nodes (at ``scale=1.0``) to demonstrate the
simulator's headroom after the hot-path optimization pass.  The workload is
two-phase: the biased PSS gossips until views converge, then a sample of
natted pairs exchanges WCL messages through 2 mixes, exercising the NAT
traversal, backlog and onion layers at population scale.

Reported: view health (fill levels, P-node presence), WCL delivery for the
sampled pairs, and fabric totals.  When driven by the perf harness
(``python -m repro.perf run scale``) the optional ``probe`` records phase
wall-clock, engine statistics and telemetry counter totals alongside.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from dataclasses import replace
from typing import TYPE_CHECKING, Iterator

from ..core.contact import Gateway, PrivateContact
from ..core.node import WhisperConfig, WhisperNode
from ..harness.report import Report, Table
from ..harness.world import World, WorldConfig
from ..net.address import NodeKind
from .common import scaled

if TYPE_CHECKING:
    from ..perf.probe import PerfProbe

__all__ = ["run"]


def _contact_for(node: WhisperNode) -> PrivateContact:
    gateways = ()
    if node.cm.kind is NodeKind.NATTED:
        gateways = tuple(
            Gateway(descriptor=e.descriptor, key=e.key)
            for e in node.backlog.gateways_for_self()
        )
    return PrivateContact(
        descriptor=node.descriptor(), key=node.wcl.public_key, gateways=gateways
    )


@contextmanager
def _phase(probe: "PerfProbe | None", name: str) -> Iterator[None]:
    """Probe phase when measuring, no-op otherwise."""
    with (probe.phase(name) if probe is not None else nullcontext()):
        yield


def run(
    scale: float = 1.0,
    seed: int = 1010,
    cycles: int = 30,
    messages: int = 40,
    mixes: int = 2,
    probe: "PerfProbe | None" = None,
) -> Report:
    n_nodes = scaled(5000, scale, minimum=200)
    report = Report(title=f"Scale — {n_nodes}-node PSS+WCL headroom")
    world = World(
        WorldConfig(seed=seed, whisper=replace(WhisperConfig(), pi=2))
    )
    with _phase(probe, "scale.populate"):
        world.populate(n_nodes)
        world.start_all()
    with _phase(probe, "scale.gossip"):
        world.run(cycles * 10.0)

    alive = world.alive_nodes()
    view_sizes = [len(node.pss.view) for node in alive]
    public_counts = [
        sum(1 for e in node.pss.view.entries() if e.descriptor.is_public)
        for node in alive
    ]
    health = Table(
        title=f"View health after {cycles} cycles of 10 s",
        headers=["nodes", "view min", "view mean", "pub min", "pub mean"],
    )
    health.add_row(
        len(alive),
        min(view_sizes),
        round(sum(view_sizes) / len(view_sizes), 2),
        min(public_counts),
        round(sum(public_counts) / len(public_counts), 2),
    )
    report.add(health)

    delivered: list[int] = []
    sent = 0
    with _phase(probe, "scale.wcl"):
        natted = world.natted_nodes()
        rng = world.registry.stream("scale-experiment")
        for _ in range(messages):
            src, dst = rng.sample(natted, 2)
            dst.wcl.set_receive_upcall(
                lambda content, size, d=dst: delivered.append(d.node_id)
            )
            if src.wcl.send_to(_contact_for(dst), "scale probe", 512, mixes=mixes):
                sent += 1
            world.run(2.0)
        world.run(30.0)

    stats = world.network.stats
    wcl = Table(
        title=f"WCL sample: {messages} messages through {mixes} mixes",
        headers=["sent", "delivered", "rate", "net sent", "net delivered", "net lost"],
    )
    wcl.add_row(
        sent,
        len(delivered),
        f"{len(delivered) / max(sent, 1):.1%}",
        stats.sent,
        stats.delivered,
        stats.lost,
    )
    report.add(wcl)
    report.note(
        "Headroom run: same stack as the paper's 1,000-node deployments at "
        "5x population; expect full views, a healthy P-node floor and "
        "majority WCL delivery."
    )
    if probe is not None:
        probe.attach_sim(world.sim)
        probe.attach_telemetry(world.telemetry)
        probe.record(
            "net",
            {
                "sent": stats.sent,
                "delivered": stats.delivered,
                "lost": stats.lost,
                "filtered": stats.filtered,
                "no_handler": stats.no_handler,
            },
        )
        probe.record("wcl", {"sent": sent, "delivered": len(delivered)})
    return report
