"""Shared plumbing for the evaluation experiments (Section V).

Each experiment module exposes ``run(scale=..., seed=...) -> Report``.
``scale`` multiplies population sizes: 1.0 reproduces the paper's setup
(1,000-node cluster / 400-node PlanetLab slice); smaller values give quick
sanity runs.  The ``REPRO_BENCH_SCALE`` environment variable selects the
default for the benchmark suite: ``full`` (1.0), ``default`` (0.5) or
``quick`` (0.2).
"""

from __future__ import annotations

import os
import random

from ..core.node import WhisperNode
from ..core.ppss import PpssConfig
from ..harness.world import World

__all__ = ["bench_scale", "scaled", "subscribe_groups", "GroupPlan"]

_SCALES = {"full": 1.0, "default": 0.5, "quick": 0.2}


def bench_scale() -> float:
    """The population scale selected via REPRO_BENCH_SCALE."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "default").strip().lower()
    if raw in _SCALES:
        return _SCALES[raw]
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be full|default|quick or a float, got {raw!r}"
        ) from None
    if not 0.01 <= value <= 2.0:
        raise ValueError(f"REPRO_BENCH_SCALE out of range: {value}")
    return value


def scaled(count: int, scale: float, minimum: int = 10) -> int:
    return max(minimum, round(count * scale))


class GroupPlan:
    """Creates G groups led by distinct P-nodes and subscribes members.

    Mirrors the paper's multi-group deployments: "each subscribing to one
    random group out of a set of 20 private groups" (Table I) and "each
    P-node creates, and acts as a leader for, one private group" (Fig. 8).
    """

    def __init__(
        self,
        world: World,
        group_count: int,
        ppss_config: PpssConfig | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self.world = world
        self.ppss_config = ppss_config
        self._rng = rng if rng is not None else world.registry.stream("groups")
        publics = world.public_nodes()
        if len(publics) < group_count:
            raise ValueError(
                f"need {group_count} P-nodes to lead groups, have {len(publics)}"
            )
        self.leaders: dict[str, WhisperNode] = {}
        for i in range(group_count):
            name = f"group-{i}"
            publics[i].create_group(name, config=ppss_config)
            self.leaders[name] = publics[i]

    @property
    def names(self) -> list[str]:
        return list(self.leaders.keys())

    def leader_ids(self) -> set[int]:
        return {n.node_id for n in self.leaders.values()}

    def subscribe(self, node: WhisperNode, count: int = 1) -> list[str]:
        """Join ``node`` to ``count`` random groups it is not yet in."""
        candidates = [
            name for name in self.names
            if name not in node.groups
        ]
        chosen = self._rng.sample(candidates, min(count, len(candidates)))
        for name in chosen:
            leader = self.leaders[name]
            invitation = leader.group(name).invite(node.node_id)
            node.join_group(invitation, config=self.ppss_config)
        return chosen


def subscribe_groups(
    world: World,
    plan: GroupPlan,
    per_node: int,
    exclude: set[int] | None = None,
) -> None:
    """Subscribe every (non-excluded) alive node to ``per_node`` groups."""
    exclude = exclude or set()
    for node in world.alive_nodes():
        if node.node_id in exclude:
            continue
        plan.subscribe(node, per_node)
