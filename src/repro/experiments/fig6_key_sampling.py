"""Fig. 6 — Public key sampling service: bandwidth costs.

Per-cycle upload/download bandwidth of N-nodes and P-nodes for five stack
configurations (unbiased PSS without and with key sampling, then Π=1..3
with key sampling) across three N:P population ratios (80/20, 70/30,
50/50).  The paper reports cumulative averages over 1,000 nodes.

Expected shape: balanced N/P bandwidth when unbiased; P-node load grows
with Π but stays within ~2.5 KB per 10 s cycle; the scarcer P-nodes are,
the more they carry.

The 15-point Π × ratio sweep runs through
:func:`repro.parallel.run_sweep`.  Per-point seeds come from
:func:`~repro.parallel.derive_seed` over the point key — the additive
``seed + pi + round(natted_fraction * 100)`` scheme used before PR 5
collides between distinct points (Π=7/nf=0.05 and Π=2/nf=0.10 both map
to ``seed + 12``), silently reusing RNG streams.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.node import WhisperConfig
from ..harness.report import Report, Table
from ..harness.world import World, WorldConfig
from ..net.address import NodeKind
from ..parallel import SweepSpec, derive_seed, run_sweep
from ..pss.gossip import PssConfig
from .common import scaled

__all__ = ["run", "CONFIGS"]

# (label, pi, exchange_keys)
CONFIGS = (
    ("unbiased", 0, False),
    ("unbiased+KS", 0, True),
    ("Pi=1+KS", 1, True),
    ("Pi=2+KS", 2, True),
    ("Pi=3+KS", 3, True),
)

RATIOS = (0.8, 0.7, 0.5)  # natted fractions: N:P of 80/20, 70/30, 50/50

# Traffic that belongs to the PSS + key management plane.
_CATEGORIES = ("pss", "wcl.cb")


def _point(point) -> tuple[float, float, float, float]:
    """One (ratio, config) world reduced to its per-cycle KB row."""
    (natted_fraction, pi, exchange_keys, point_seed, n_nodes,
     warmup_cycles, window_cycles, wire_mode) = point
    cycle = 10.0
    world = World(
        WorldConfig(
            seed=point_seed,
            natted_fraction=natted_fraction,
            whisper=replace(
                WhisperConfig(),
                pi=pi,
                pss=PssConfig(exchange_keys=exchange_keys),
            ),
            wire_mode=wire_mode,
        )
    )
    world.populate(n_nodes)
    world.start_all()
    world.run(warmup_cycles * cycle)
    world.network.accountant.snapshot()  # reset the window
    world.run(window_cycles * cycle)
    window = world.network.accountant.snapshot()
    return _per_cycle_kb(world, window, window_cycles)


def run(
    scale: float = 1.0,
    seed: int = 1006,
    warmup_cycles: int = 20,
    window_cycles: int = 20,
    wire_mode: str = "off",
    workers: int = 1,
) -> Report:
    """``wire_mode="measured"`` re-runs the figure with codec-true frame
    sizes instead of the paper's ``WireSizes`` estimates (see
    EXPERIMENTS.md, "Wire format")."""
    suffix = " [codec-measured sizes]" if wire_mode == "measured" else ""
    report = Report(
        title="Fig. 6 — Key sampling bandwidth (KB per 10 s cycle)" + suffix
    )
    n_nodes = scaled(1000, scale, minimum=100)
    points = []
    for natted_fraction in RATIOS:
        for label, pi, exchange_keys in CONFIGS:
            points.append((
                natted_fraction, pi, exchange_keys,
                derive_seed(seed, "fig6", natted_fraction, label),
                n_nodes, warmup_cycles, window_cycles, wire_mode,
            ))
    rows = iter(run_sweep(
        SweepSpec(name="fig6", points=tuple(points), worker=_point),
        workers=workers,
    ))
    for natted_fraction in RATIOS:
        table = Table(
            title=(
                f"N:{natted_fraction:.0%} P:{1 - natted_fraction:.0%} — "
                f"{n_nodes} nodes, averaged over {window_cycles} cycles"
            ),
            headers=["config", "N up", "N down", "P up", "P down"],
        )
        for label, _pi, _exchange_keys in CONFIGS:
            n_up, n_down, p_up, p_down = next(rows)
            table.add_row(label, n_up, n_down, p_up, p_down)
        report.add(table)
    report.note(
        "Counted traffic: gossip exchanges incl. piggybacked 1 KB keys and "
        "explicit CB key probes (categories: " + ", ".join(_CATEGORIES) + ")."
    )
    report.note(
        "Paper shape: balanced when unbiased; P-node cost grows with Pi and "
        "with P-node scarcity, remaining under ~2.5 KB/cycle."
    )
    return report


def _per_cycle_kb(world, window, window_cycles):
    n_up = n_down = p_up = p_down = 0.0
    n_count = p_count = 0
    for node in world.alive_nodes():
        totals = window.get(node.node_id)
        if totals is None:
            continue
        up = sum(totals.up_by_category.get(c, 0) for c in _CATEGORIES)
        down = sum(totals.down_by_category.get(c, 0) for c in _CATEGORIES)
        if node.cm.kind is NodeKind.PUBLIC:
            p_up += up
            p_down += down
            p_count += 1
        else:
            n_up += up
            n_down += down
            n_count += 1
    kb = 1024.0
    return (
        n_up / max(n_count, 1) / window_cycles / kb,
        n_down / max(n_count, 1) / window_cycles / kb,
        p_up / max(p_count, 1) / window_cycles / kb,
        p_down / max(p_count, 1) / window_cycles / kb,
    )
