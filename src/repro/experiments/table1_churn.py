"""Table I — Availability of anonymizing routes under churn.

1,000 nodes (on average), each subscribed to one of 20 private groups,
Π = 3.  Churn follows the paper's SPLAY script: X% of the network leaves
per minute and is replaced by fresh joins (100% replacement) between
t=300 s and t=1200 s.  For every PPSS view exchange in that window we
classify the WCL route construction outcome:

- **Success** — the first onion path delivered and the response returned;
- **Alt.**    — the first path failed but an alternative (different mix
  pair) was available;
- **No alt.** — the first path failed and no alternative pair remained.

Exchanges whose partner had actually left the network are excluded, per
the paper's footnote 3 (a dead destination is not a route failure).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..churn.script import ChurnDriver, parse_script
from ..core.node import WhisperNode
from ..core.ppss import PpssConfig, PrivatePeerSamplingService
from ..harness.report import Report, Table
from ..harness.world import World, WorldConfig
from ..parallel import SweepSpec, derive_seed, run_sweep
from .common import GroupPlan, scaled

__all__ = ["run", "CHURN_RATES"]

# X%/minute rates of Table I (0 = no churn).
CHURN_RATES = (0.0, 0.2, 1.0, 5.0, 10.0)


@dataclass
class _Outcomes:
    window_open: bool = False
    success: int = 0
    alt: int = 0
    no_alt: int = 0
    dead_partner: int = 0
    retry_attempts: list[int] = field(default_factory=list)


def _point(point) -> _Outcomes:
    """One churn-rate world reduced to its outcome counts."""
    rate, point_seed, n_nodes, group_count = point
    return _run_one(rate, point_seed, n_nodes, group_count)


def run(
    scale: float = 1.0,
    seed: int = 1001,
    rates: tuple[float, ...] = CHURN_RATES,
    group_count: int = 20,
    workers: int = 1,
) -> Report:
    report = Report(title="Table I — WCL route availability under churn")
    n_nodes = scaled(1000, scale, minimum=120)
    table = Table(
        title=f"{n_nodes} nodes avg, {group_count} groups, Pi=3, churn 300-1200 s",
        headers=["Churn X%/min", "Success", "Alt.", "No alt.", "exchanges"],
    )
    spec = SweepSpec(
        name="table1",
        points=tuple(
            (rate, derive_seed(seed, "table1", rate), n_nodes, group_count)
            for rate in rates
        ),
        worker=_point,
    )
    for rate, outcome in zip(rates, run_sweep(spec, workers=workers)):
        total = outcome.success + outcome.alt + outcome.no_alt
        if total == 0:
            table.add_row(f"{rate:g}", "-", "-", "-", 0)
            continue
        table.add_row(
            f"{rate:g}",
            f"{outcome.success / total:.1%}",
            f"{outcome.alt / total:.1%}",
            f"{outcome.no_alt / total:.1%}",
            total,
        )
    report.add(table)
    report.note(
        "Paper: success stays >= ~91% even at 10%/min; alternatives cover "
        "most failures; 'No alt.' stays around ~1%."
    )
    return report


def _run_one(rate: float, seed: int, n_nodes: int, group_count: int) -> _Outcomes:
    world = World(WorldConfig(seed=seed))
    outcomes = _Outcomes()
    # PPSS timing as in the paper: 1-minute cycles, Pi=3 retries.
    ppss_config = PpssConfig()

    # Leaders first: they are protected from churn so groups outlive it
    # (the paper measures route availability, not group bootstrap).
    # Enough initial nodes to yield group_count P-node leaders.
    world.populate(max(round(n_nodes * 0.1), group_count * 4))
    world.start_all()
    world.run(40.0)
    plan = GroupPlan(world, group_count, ppss_config=ppss_config)

    def hook(outcome: str, attempts: int, partner: int, duration: float) -> None:
        if not outcomes.window_open:
            return
        if outcome != "success" and partner not in world.nodes:
            outcomes.dead_partner += 1
            return
        if outcome == "success":
            outcomes.success += 1
        elif outcome in ("alt", "alt_failed"):
            outcomes.alt += 1
            outcomes.retry_attempts.append(attempts)
        else:
            outcomes.no_alt += 1

    def wire_node(node: WhisperNode) -> None:
        # Subscribe to one random group once the PSS has warmed up.
        def subscribe() -> None:
            if not node.alive:
                return
            for name in plan.subscribe(node, 1):
                ppss = node.group(name)
                ppss.exchange_outcome_hook = hook
        world.sim.schedule(60.0, subscribe)

    for name, leader in plan.leaders.items():
        leader.group(name).exchange_outcome_hook = hook

    script_lines = [f"from 0s to 30s join {n_nodes - len(world.nodes)}"]
    if rate > 0:
        script_lines += [
            "at 300s set replacement ratio to 100%",
            f"from 300s to 1200s const churn {rate}% each 60s",
        ]
    script_lines.append("at 1200s stop")
    driver = ChurnDriver(
        world,
        parse_script("\n".join(script_lines)),
        on_join=wire_node,
        protected=plan.leader_ids(),
    )
    # Initially-populated non-leader nodes also subscribe.
    for node in world.alive_nodes():
        if node.node_id not in plan.leader_ids():
            wire_node(node)

    world.run(300.0)  # bootstrap + group formation
    outcomes.window_open = True
    world.run(900.0)  # the churn measurement window
    outcomes.window_open = False
    del driver
    return outcomes
