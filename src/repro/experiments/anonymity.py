"""``anonymity`` — traffic-analysis attacks vs. countermeasure ablations.

Three variants of the same CBR deployment, one sweep point each:

- ``baseline`` — persistent senders, no countermeasures;
- ``cover`` — every group member also emits decoy traffic
  (:class:`~repro.workload.spec.CoverTraffic` →
  ``PrivatePeerSamplingService.send_cover``);
- ``mixing`` — WCL relays hold-and-flush forwarded onions at
  deterministic batch boundaries
  (``WorkloadSpec.mix_batch_interval`` →
  ``WhisperCommunicationLayer.enable_mix_batching``).

Each variant runs its own seeded world with a
:class:`~repro.adversary.GlobalObserver` taping the traffic window, then
replays the tape against adversaries drawn at a sweep of link-corruption
fractions, running the intersection and predecessor attacks per target
and recording ``anonymity.*`` telemetry *into the world's trace* before
hashing it — the per-variant trace SHA covers the attack outcomes, so
"same seed ⇒ byte-identical attack results" is directly diffable across
reruns and ``--workers`` counts.

The report is attack success vs. corruption fraction per variant; the
``--attack-gate`` flag additionally enforces that cover traffic cuts the
intersection attack and batched mixing cuts the predecessor attack
(:func:`~repro.harness.invariants.check_attack_mitigation`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..adversary import (
    GlobalObserver,
    IntersectionAttack,
    PredecessorAttack,
    record_attack_telemetry,
)
from ..harness.invariants import check_attack_mitigation, check_invariants
from ..harness.report import Report, Table
from ..harness.world import World, WorldConfig
from ..parallel import SweepSpec, derive_seed, run_sweep
from ..workload import CbrStreams, CoverTraffic, WorkloadSpec, world_size
from ..workload.attach import AttachedWorkload
from .common import scaled

__all__ = ["run", "run_variant", "AnonymityResult", "VARIANTS", "FRACTIONS"]

VARIANTS = ("baseline", "cover", "mixing")
FRACTIONS = (0.1, 0.25, 0.5, 0.75, 0.9)
TRIALS = 3  # adversary redraws per fraction
ATTACKS = ("intersection", "predecessor")

MIX_BATCH_INTERVAL = 1.0  # s; >> the predecessor chaining delta (0.25 s)

_WARMUP = 120.0  # PSS/overlay bootstrap before groups form
_CONVERGE = 240.0  # group membership gossip before traffic arms
_DRAIN = 60.0  # post-horizon window for in-flight completions


@dataclass
class AnonymityResult:
    """One variant world reduced to its picklable attack ledger."""

    variant: str
    nodes: int
    groups: int
    targets: int
    # attack name -> corruption fraction -> success rate over targets×trials
    success: dict[str, dict[float, float]] = field(default_factory=dict)
    # attack name -> mean final anonymity-set size over targets×trials
    final_set_size: dict[str, float] = field(default_factory=dict)
    trace_sha: str = ""
    trace_path: str | None = None

    def mean_success(self, attack: str) -> float:
        rates = self.success.get(attack, {})
        return sum(rates.values()) / len(rates) if rates else 0.0


def _variant_spec(variant: str, scale: float) -> WorkloadSpec:
    # One CBR stream per group: within a group exactly one member is a
    # persistent sender, so the intersection attack has a well-posed
    # single-culprit question per target.
    groups = scaled(2, scale, minimum=2)
    duration = float(scaled(90, scale, minimum=60))
    models: list = [
        CbrStreams(streams=groups, interval=0.5, payload=160, duration=duration)
    ]
    if variant == "cover":
        models.append(
            CoverTraffic(interval=0.5, payload=160, duration=duration)
        )
    return WorkloadSpec(
        name=f"anonymity-{variant}",
        groups=groups,
        members_per_group=scaled(6, scale, minimum=5),
        models=tuple(models),
        mix_batch_interval=MIX_BATCH_INTERVAL if variant == "mixing" else None,
    )


def _point(point) -> AnonymityResult:
    variant, point_seed, scale, trace_out = point
    return run_variant(variant, point_seed, scale, trace_out=trace_out)


def run_variant(
    variant: str,
    seed: int,
    scale: float = 1.0,
    trace_out: str | None = None,
) -> AnonymityResult:
    """Run one countermeasure variant: deploy, tape, attack, hash."""
    if variant not in VARIANTS:
        known = ", ".join(VARIANTS)
        raise ValueError(f"unknown variant {variant!r} (known: {known})")
    spec = _variant_spec(variant, scale)
    world = World(WorldConfig(seed=seed, telemetry_enabled=True))
    world.populate(world_size(spec, scale))
    world.start_all()
    world.run(_WARMUP)
    attached = AttachedWorkload(world, spec, seed=seed)
    world.run(_CONVERGE)
    # The tape starts at arm time: the adversary observes the traffic
    # window, which also bounds the capture's memory.
    tap = GlobalObserver(seed=derive_seed(seed, "observer", variant))
    world.network.add_observer(tap)
    attached.arm()
    world.run(spec.horizon() + _DRAIN)
    attached.finish()
    check_invariants(world)

    member_ids = {
        name: [n.node_id for n in nodes]
        for name, nodes in attached.members.items()
    }
    # One target per CBR stream, ground truth from the attachment: the
    # adversary must name the persistent sender towards each receiver,
    # choosing among the receiver's fellow group members.
    targets = []
    for sid in sorted(attached.cbr_endpoints):
        group, sender, receiver = attached.cbr_endpoints[sid]
        candidates = [m for m in member_ids[group] if m != receiver]
        targets.append((sender, receiver, candidates))

    result = AnonymityResult(
        variant=variant,
        nodes=len(world.nodes),
        groups=spec.groups,
        targets=len(targets),
    )
    attacks = (IntersectionAttack(), PredecessorAttack())
    link_universe = tap.link_universe()
    telemetry = world.telemetry
    wins = {a.name: {f: 0 for f in FRACTIONS} for a in attacks}
    finals: dict[str, list[int]] = {a.name: [] for a in attacks}
    totals = {f: 0 for f in FRACTIONS}
    for fraction in FRACTIONS:
        for trial in range(TRIALS):
            corruption = tap.corruption(fraction, label=f"trial-{trial}")
            visible = corruption.visible_links(link_universe)
            for attack in attacks:
                outcomes = [
                    attack.run(
                        tap.packets, visible,
                        true_sender=sender, target=receiver,
                        candidates=candidates,
                    )
                    for sender, receiver, candidates in targets
                ]
                record_attack_telemetry(telemetry, variant, fraction, outcomes)
                wins[attack.name][fraction] += sum(
                    1 for o in outcomes if o.success
                )
                finals[attack.name].extend(
                    o.set_sizes[-1] for o in outcomes if o.set_sizes
                )
            totals[fraction] += len(targets)
    for attack in attacks:
        result.success[attack.name] = {
            fraction: (
                wins[attack.name][fraction] / totals[fraction]
                if totals[fraction]
                else 0.0
            )
            for fraction in FRACTIONS
        }
        sizes = finals[attack.name]
        result.final_set_size[attack.name] = (
            round(sum(sizes) / len(sizes), 3) if sizes else 0.0
        )

    if trace_out:
        result.trace_path = f"{trace_out}.{variant}.jsonl"
        text = telemetry.export_jsonl(result.trace_path)
    else:
        text = telemetry.export_jsonl()
    result.trace_sha = hashlib.sha256(text.encode("utf-8")).hexdigest()
    return result


def run(
    scale: float = 1.0,
    seed: int = 7,
    variants: tuple[str, ...] | None = None,
    workers: int = 1,
    attack_gate: bool = False,
    trace_out: str | None = None,
) -> Report:
    report = Report(
        title="Anonymity — traffic-analysis attacks vs countermeasures"
    )
    names = variants if variants is not None else VARIANTS
    spec = SweepSpec(
        name="anonymity",
        points=tuple(
            (name, derive_seed(seed, "anonymity", name), scale, trace_out)
            for name in names
        ),
        worker=_point,
    )
    results = run_sweep(spec, workers=workers)
    by_variant = {r.variant: r for r in results}

    table = Table(
        title=(
            f"attack success vs corruption fraction at scale {scale:g} "
            f"(seed {seed}, {TRIALS} adversaries/fraction)"
        ),
        headers=[
            "Variant", "Attack",
            *[f"p={f:g}" for f in FRACTIONS],
            "Final set", "Trace",
        ],
    )
    for result in results:
        for attack in ATTACKS:
            rates = result.success.get(attack, {})
            table.add_row(
                result.variant,
                attack,
                *[f"{rates.get(f, 0.0):.0%}" for f in FRACTIONS],
                f"{result.final_set_size.get(attack, 0.0):g}",
                result.trace_sha[:12],
            )
    report.add(table)
    report.note(
        "Success = adversary names the true sender exactly (unique "
        "singleton / unique argmax); each cell averages "
        f"{TRIALS} independent corruption draws x {results[0].targets if results else 0} targets."
    )
    report.note(
        "Full-path exposure stays near the analytic p^h bound "
        "(ablation-anonymity); these attacks show what leaks *below* "
        "full-path observation — and what cover traffic / batched mixing "
        "win back."
    )
    report.note(
        "Trace = SHA-256 prefix of the telemetry export incl. anonymity.* "
        "metrics: same seed must print the same hash at any --workers "
        "count."
    )
    if attack_gate:
        _gate(by_variant)
    return report


def _gate(by_variant: dict[str, AnonymityResult]) -> None:
    """The CI floor gate: each countermeasure must cut its attack."""
    baseline = by_variant.get("baseline")
    if baseline is None:
        raise ValueError("--attack-gate needs the baseline variant")
    cover = by_variant.get("cover")
    if cover is not None:
        check_attack_mitigation(
            baseline.mean_success("intersection"),
            cover.mean_success("intersection"),
            what="intersection attack under cover traffic",
        )
    mixing = by_variant.get("mixing")
    if mixing is not None:
        check_attack_mitigation(
            baseline.mean_success("predecessor"),
            mixing.mean_success("predecessor"),
            what="predecessor attack under batched mixing",
        )
