"""Fig. 8 — Bandwidth vs. number of private groups per node.

400 nodes on PlanetLab operating 120 private groups (every P-node creates
and leads one).  The number of groups each node subscribes to sweeps 1, 2,
4, ..., 32; the result is the distribution (stacked percentiles
5/25/50/75/90) of upload and download bandwidth for P-nodes and N-nodes.

Per-node byte totals come from the telemetry counters ``net.up_bytes`` /
``net.down_bytes`` maintained by the network fabric; the measurement window
is the difference between two counter snapshots.

Expected shape: bandwidth grows linearly with the number of subscribed
groups; P-nodes pay more than N-nodes (mix/gateway duty) but stay within
reasonable bounds.
"""

from __future__ import annotations

from ..core.ppss import PpssConfig
from ..harness.report import Report, Table
from ..harness.world import World, WorldConfig
from ..metrics.stats import stacked_percentiles
from ..net.address import NodeKind
from ..parallel import SweepSpec, derive_seed, run_sweep
from .common import GroupPlan, scaled, subscribe_groups

__all__ = ["run", "GROUPS_PER_NODE"]

GROUPS_PER_NODE = (1, 2, 4, 8, 16, 32)


def run(
    scale: float = 1.0,
    seed: int = 1008,
    memberships: tuple[int, ...] = GROUPS_PER_NODE,
    window_cycles: int = 5,
    wire_mode: str = "off",
    workers: int = 1,
) -> Report:
    """``wire_mode="measured"`` re-runs the figure with codec-true frame
    sizes instead of the paper's ``WireSizes`` estimates (see
    EXPERIMENTS.md, "Wire format")."""
    suffix = " [codec-measured sizes]" if wire_mode == "measured" else ""
    report = Report(
        title="Fig. 8 — Bandwidth vs. groups per node (KB/s, PlanetLab)" + suffix
    )
    n_nodes = scaled(400, scale, minimum=60)
    for direction in ("up", "down"):
        for kind, kind_label in (
            (NodeKind.PUBLIC, "P-nodes"), (NodeKind.NATTED, "N-nodes"),
        ):
            table = Table(
                title=f"{kind_label} {direction}load ({n_nodes} nodes)",
                headers=["groups/node", "p5", "p25", "p50", "p75", "p90"],
            )
            report.add(table)
    tables = report.sections  # [P-up, N-up, P-down, N-down]
    spec = SweepSpec(
        name="fig8",
        points=tuple(
            (per_node, derive_seed(seed, "fig8", per_node), n_nodes,
             window_cycles, wire_mode)
            for per_node in memberships
        ),
        worker=_point,
    )
    for per_node, rows in zip(memberships, run_sweep(spec, workers=workers)):
        for table, stacked in zip(tables, rows):
            table.add_row(
                per_node,
                *(stacked[level] for level in (5.0, 25.0, 50.0, 75.0, 90.0)),
            )
    report.note(
        "Counted traffic: all categories (PPSS exchanges over WCL, mixes, "
        "relays, PSS, key management)."
    )
    report.note(
        "Paper shape: linear growth in subscribed groups; P-nodes > N-nodes."
    )
    return report


def _point(point):
    """One membership-count world reduced to its four percentile rows."""
    per_node, point_seed, n_nodes, window_cycles, wire_mode = point
    return _run_one(per_node, point_seed, n_nodes, window_cycles, wire_mode)


def _run_one(
    per_node: int, seed: int, n_nodes: int, window_cycles: int,
    wire_mode: str = "off",
):
    world = World(
        WorldConfig(
            seed=seed, latency="planetlab", telemetry_enabled=True,
            wire_mode=wire_mode,
        )
    )
    world.populate(n_nodes)
    world.start_all()
    world.run(120.0)
    # Every P-node creates and leads one group (120 groups at full scale).
    group_count = len(world.public_nodes())
    ppss_config = PpssConfig()
    plan = GroupPlan(world, group_count, ppss_config=ppss_config)
    subscribe_groups(world, plan, per_node=per_node)
    # Joins are retried every 15 s; give larger memberships longer to settle.
    world.run(180.0 + 10.0 * per_node)
    metrics = world.telemetry.metrics
    before = _per_node_bytes(metrics)
    window_seconds = window_cycles * 60.0
    world.run(window_seconds)
    after = _per_node_bytes(metrics)

    rows = []
    for direction in ("up", "down"):
        for kind in (NodeKind.PUBLIC, NodeKind.NATTED):
            samples = []
            for node in world.alive_nodes():
                if node.cm.kind is not kind:
                    continue
                byte_count = after[direction].get(node.node_id, 0) - before[
                    direction
                ].get(node.node_id, 0)
                samples.append(byte_count / window_seconds / 1024.0)
            rows.append(stacked_percentiles(samples))
    return rows


def _per_node_bytes(metrics) -> dict[str, dict[object, float]]:
    """Per-node cumulative byte totals from the fabric's telemetry counters."""
    return {
        "up": metrics.values_by_label("net.up_bytes", "node"),
        "down": metrics.values_by_label("net.down_bytes", "node"),
    }
