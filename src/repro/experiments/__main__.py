"""Command-line runner for the evaluation experiments.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig5 --scale 0.5
    python -m repro.experiments table1 --scale 1.0 --seed 7
    python -m repro.experiments all --scale 0.2

Reports print to stdout in the paper's row/series format.
"""

from __future__ import annotations

import argparse
import inspect
import sys

from ..faults import FaultPlanError
from ..harness.invariants import RecoveryViolation

from . import (
    ablations,
    anonymity,
    fig5_biased_pss,
    fig6_key_sampling,
    fig7_rtt,
    fig8_group_bandwidth,
    fig9_tchord,
    load,
    resilience,
    scale as scale_experiment,
    soak,
    table1_churn,
    table2_cpu,
    wire_format,
)

EXPERIMENTS = {
    "fig5": ("Fig. 5 — biased PSS quality", fig5_biased_pss.run),
    "fig6": ("Fig. 6 — key sampling bandwidth", fig6_key_sampling.run),
    "table1": ("Table I — routes under churn", table1_churn.run),
    "resilience": ("Resilience — recovery from injected faults",
                   resilience.run),
    "soak": ("Soak — live loopback nodes under a scripted fault schedule",
             soak.run),
    "load": ("Load — heavy-traffic workloads over PPSS/T-Chord", load.run),
    "anonymity": ("Anonymity — traffic-analysis attacks vs countermeasures",
                  anonymity.run),
    "fig7": ("Fig. 7 — RTT breakdown", fig7_rtt.run),
    "table2": ("Table II — CPU per PPSS cycle", table2_cpu.run),
    "fig8": ("Fig. 8 — bandwidth vs groups", fig8_group_bandwidth.run),
    "fig9": ("Fig. 9 — T-Chord routing delays", fig9_tchord.run),
    "wire": ("Wire format — codec throughput and measured sizes",
             wire_format.run),
    "scale": ("Scale — 5,000-node PSS+WCL headroom", scale_experiment.run),
    "ablation-path": ("Ablation — path length", ablations.run_path_length),
    "ablation-pi": ("Ablation — Pi sweep", ablations.run_pi_sweep),
    "ablation-leases": ("Ablation — NAT leases", ablations.run_session_leases),
    "ablation-policy": ("Ablation — truncation policy",
                        ablations.run_truncation_policy),
    "ablation-anonymity": ("Ablation — adversary coverage sweep",
                           ablations.run_observation_sweep),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the WHISPER paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "list", "all"],
        help="which experiment to run ('list' to enumerate, 'all' for every one)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.5,
        help="population scale; 1.0 = paper size (default 0.5)",
    )
    parser.add_argument("--seed", type=int, default=None, help="override the seed")
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for multi-point sweeps (default 1 = "
             "sequential; output is byte-identical either way; 0 = one "
             "per core)",
    )
    parser.add_argument(
        "--nodes", type=int, default=None,
        help="exact population size (experiments that accept it; "
             "overrides --scale)",
    )
    parser.add_argument(
        "--fault-plan", default=None, metavar="PATH",
        help="JSON FaultPlan file to run instead of the built-in schedule "
             "(soak)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the run's telemetry as JSONL to PATH (soak; anonymity "
             "writes one PATH.<variant>.jsonl per variant)",
    )
    parser.add_argument(
        "--route-floor", type=float, default=None, metavar="RATIO",
        help="fail (exit 1) if post-heal route success drops below RATIO "
             "(soak; e.g. 0.95)",
    )
    parser.add_argument(
        "--attack-gate", action="store_true", default=None,
        help="fail (exit 1) unless each countermeasure reduces its attack's "
             "success below the baseline (anonymity)",
    )
    parser.add_argument(
        "--circuits", action="store_true", default=None,
        help="also measure the circuit-mode (amortized RSA) variant "
             "(table2)",
    )
    args = parser.parse_args(argv)
    workers = args.workers
    if workers == 0:
        from ..parallel import default_workers

        workers = default_workers()

    if args.experiment == "list":
        for name, (title, _run) in EXPERIMENTS.items():
            print(f"{name:<16} {title}")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        _title, run = EXPERIMENTS[name]
        params = inspect.signature(run).parameters
        kwargs = {"scale": args.scale}
        if args.seed is not None:
            kwargs["seed"] = args.seed
        # Sweep-style experiments take a worker count; single-world ones
        # (fig7, fig9, table2, scale, wire, ablation-path) stay sequential.
        if workers > 1 and "workers" in params:
            kwargs["workers"] = workers
        # Soak-style flags travel only to experiments that declare them.
        for flag in (
            "nodes", "fault_plan", "trace_out", "route_floor", "attack_gate",
            "circuits",
        ):
            value = getattr(args, flag)
            if value is not None and flag in params:
                kwargs[flag] = value
        try:
            report = run(**kwargs)
        except RecoveryViolation as exc:
            print(f"{name}: FAILED — {exc}", file=sys.stderr)
            return 1
        except (FaultPlanError, OSError) as exc:
            print(f"{name}: bad fault plan — {exc}", file=sys.stderr)
            return 1
        print(report.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
