"""Fig. 7 — Breakdown of PPSS view-exchange round-trip times.

CDFs over ~1,500 confidential private-view exchanges on the two testbeds
(1,000-node cluster / 400-node PlanetLab): total RTT, onion path build time
at the source (request and response sides), per-exchange RSA decrypt time
along the path, and the residual network routing time.

Expected shape: network delays dominate; path building and layer decrypts
are roughly two orders of magnitude below the RTT; on the cluster all
exchanges finish < 500 ms, on PlanetLab > 80% within 2 s.
"""

from __future__ import annotations

from collections import defaultdict

from ..core.ppss import PpssConfig
from ..harness.report import CdfSummary, Report, Table
from ..harness.world import World, WorldConfig
from ..metrics.stats import percentile
from .common import GroupPlan, scaled, subscribe_groups

__all__ = ["run"]

TESTBEDS = (
    ("cluster", 1000),
    ("planetlab", 400),
)


def run(
    scale: float = 1.0,
    seed: int = 1007,
    target_exchanges: int = 1500,
    group_count: int = 20,
) -> Report:
    report = Report(title="Fig. 7 — PPSS exchange RTT breakdown (seconds)")
    for latency, population in TESTBEDS:
        _run_testbed(
            report, latency, scaled(population, scale, minimum=80),
            seed, target_exchanges, group_count,
        )
    report.note(
        "Paper shape: network dominates; crypto ~2 orders of magnitude "
        "below RTT; cluster < 0.5 s, PlanetLab 80% < 2 s."
    )
    return report


def _run_testbed(
    report: Report,
    latency: str,
    n_nodes: int,
    seed: int,
    target_exchanges: int,
    group_count: int,
) -> None:
    world = World(WorldConfig(seed=seed, latency=latency, trace_enabled=True))
    world.populate(n_nodes)
    world.start_all()
    world.run(150.0)
    groups = min(group_count, len(world.public_nodes()))
    ppss_config = PpssConfig()
    plan = GroupPlan(world, groups, ppss_config=ppss_config)
    subscribe_groups(world, plan, per_node=1, exclude=plan.leader_ids())

    rtts: list[float] = []

    def hook(outcome: str, attempts: int, partner: int, duration: float) -> None:
        if outcome == "success":  # first-attempt exchanges only: clean RTTs
            rtts.append(duration)

    def wire_all() -> None:
        for node in world.alive_nodes():
            for ppss in node.groups.values():
                ppss.exchange_outcome_hook = hook

    world.run(180.0)  # joins complete
    wire_all()
    # Run until enough exchanges were measured (bounded).
    for _ in range(40):
        if len(rtts) >= target_exchanges:
            break
        world.run(60.0)

    build_req, build_resp, peels = _trace_breakdown(world)
    routing = _routing_residual(rtts, build_req, build_resp, peels)
    title = f"{latency}, {n_nodes} nodes"
    table = Table(
        title=f"{title}: component medians",
        headers=["component", "p50 (s)", "p90 (s)", "n"],
    )
    for label, series in (
        ("total rtt", rtts),
        ("build WCL path (request)", build_req),
        ("build WCL path (response)", build_resp),
        ("RSA decrypts (per onion)", peels),
        ("WCL routing (residual)", routing),
    ):
        if series:
            table.add_row(label, percentile(series, 50), percentile(series, 90),
                          len(series))
        else:
            table.add_row(label, "-", "-", 0)
    report.add(table)
    report.add(CdfSummary(title=f"{title}: total RTT", samples=rtts, unit="s"))
    report.add(CdfSummary(
        title=f"{title}: path build (request)", samples=build_req, unit="s",
    ))
    report.add(CdfSummary(
        title=f"{title}: RSA decrypts per onion", samples=peels, unit="s",
    ))


def _trace_breakdown(world: World):
    """Pull per-onion crypto timings out of the measurement trace."""
    build_req: list[float] = []
    build_resp: list[float] = []
    peel_ms: dict[int, float] = defaultdict(float)
    request_traces: set[int] = set()
    response_traces: set[int] = set()
    for event, trace_id, _node, _time, ms in world.trace.events:
        if event == "ppss.request.build":
            build_req.append(ms / 1000.0)
            request_traces.add(trace_id)
        elif event == "ppss.response.build":
            build_resp.append(ms / 1000.0)
            response_traces.add(trace_id)
        elif event == "wcl.peel":
            peel_ms[trace_id] += ms
    peels = [
        total / 1000.0
        for tid, total in peel_ms.items()
        if tid in request_traces or tid in response_traces
    ]
    return build_req, build_resp, peels


def _routing_residual(rtts, build_req, build_resp, peels):
    """Network share of the RTT: total minus typical crypto components."""
    if not rtts:
        return []
    crypto = 0.0
    for series in (build_req, build_resp):
        if series:
            crypto += percentile(series, 50)
    if peels:
        crypto += 2 * percentile(peels, 50)  # request + response onions
    return [max(rtt - crypto, 0.0) for rtt in rtts]
