"""Fig. 7 — Breakdown of PPSS view-exchange round-trip times.

CDFs over ~1,500 confidential private-view exchanges on the two testbeds
(1,000-node cluster / 400-node PlanetLab): total RTT, onion path build time
at the source (request and response sides), per-exchange RSA decrypt time
along the path, and the wire transit time.

All components are derived from the telemetry subsystem: ``ppss.*.build``
spans carry the charged build CPU, ``wcl.peel`` spans the per-hop decrypt
CPU, and each onion's wire transit is the gap between its ``*.sent`` and
``wcl.delivered`` instants minus the mix CPU spent en route.  Onions whose
trace crossed a ``nat.relay`` instant are reported separately from those
that travelled direct sessions only.

Expected shape: network delays dominate; path building and layer decrypts
are roughly two orders of magnitude below the RTT; on the cluster all
exchanges finish < 500 ms, on PlanetLab > 80% within 2 s.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from ..core.ppss import PpssConfig
from ..harness.report import CdfSummary, Report, Table
from ..harness.world import World, WorldConfig
from ..metrics.stats import percentile
from .common import GroupPlan, scaled, subscribe_groups

__all__ = ["run"]

TESTBEDS = (
    ("cluster", 1000),
    ("planetlab", 400),
)


def run(
    scale: float = 1.0,
    seed: int = 1007,
    target_exchanges: int = 1500,
    group_count: int = 20,
) -> Report:
    report = Report(title="Fig. 7 — PPSS exchange RTT breakdown (seconds)")
    for latency, population in TESTBEDS:
        _run_testbed(
            report, latency, scaled(population, scale, minimum=80),
            seed, target_exchanges, group_count,
        )
    report.note(
        "Paper shape: network dominates; crypto ~2 orders of magnitude "
        "below RTT; cluster < 0.5 s, PlanetLab 80% < 2 s."
    )
    return report


def _run_testbed(
    report: Report,
    latency: str,
    n_nodes: int,
    seed: int,
    target_exchanges: int,
    group_count: int,
) -> None:
    world = World(WorldConfig(seed=seed, latency=latency, telemetry_enabled=True))
    world.populate(n_nodes)
    world.start_all()
    world.run(150.0)
    groups = min(group_count, len(world.public_nodes()))
    ppss_config = PpssConfig()
    plan = GroupPlan(world, groups, ppss_config=ppss_config)
    subscribe_groups(world, plan, per_node=1, exclude=plan.leader_ids())

    rtts: list[float] = []

    def hook(outcome: str, attempts: int, partner: int, duration: float) -> None:
        if outcome == "success":  # first-attempt exchanges only: clean RTTs
            rtts.append(duration)

    def wire_all() -> None:
        for node in world.alive_nodes():
            for ppss in node.groups.values():
                ppss.exchange_outcome_hook = hook

    world.run(180.0)  # joins complete
    wire_all()
    # Run until enough exchanges were measured (bounded).
    for _ in range(40):
        if len(rtts) >= target_exchanges:
            break
        world.run(60.0)

    breakdown = _span_breakdown(world)
    title = f"{latency}, {n_nodes} nodes"
    table = Table(
        title=f"{title}: component medians",
        headers=["component", "p50 (s)", "p90 (s)", "n"],
    )
    for label, series in (
        ("total rtt", rtts),
        ("build WCL path (request)", breakdown.build_req),
        ("build WCL path (response)", breakdown.build_resp),
        ("RSA decrypts (per onion)", breakdown.peels),
        ("onion transit (direct hops)", breakdown.transit_direct),
        ("onion transit (>=1 relay hop)", breakdown.transit_relayed),
    ):
        if series:
            table.add_row(label, percentile(series, 50), percentile(series, 90),
                          len(series))
        else:
            table.add_row(label, "-", "-", 0)
    report.add(table)
    report.add(CdfSummary(title=f"{title}: total RTT", samples=rtts, unit="s"))
    report.add(CdfSummary(
        title=f"{title}: path build (request)",
        samples=breakdown.build_req, unit="s",
    ))
    report.add(CdfSummary(
        title=f"{title}: RSA decrypts per onion",
        samples=breakdown.peels, unit="s",
    ))
    report.add(CdfSummary(
        title=f"{title}: onion wire transit",
        samples=breakdown.transit_direct + breakdown.transit_relayed, unit="s",
    ))


@dataclass
class _Breakdown:
    """Per-component sample series pulled from the telemetry spans."""

    build_req: list[float]
    build_resp: list[float]
    peels: list[float]  # summed decrypt CPU per onion
    transit_direct: list[float]  # wire time, direct sessions only
    transit_relayed: list[float]  # wire time, >=1 Nylon relay hop


def _span_breakdown(world: World) -> _Breakdown:
    """Derive Fig. 7's components from the telemetry span store.

    Build and peel spans carry the charged CPU milliseconds as a ``ms``
    attribute.  Wire transit is measured per onion as the gap between the
    source's ``*.sent`` instant and the destination's ``wcl.delivered``
    instant, minus the mix-side peel CPU spent en route (the destination's
    own decrypt happens after delivery, so it is excluded by role).  A
    ``nat.relay`` instant tagged with the onion's trace id classifies the
    path as having crossed at least one relay hop.
    """
    tel = world.telemetry
    build_req: list[float] = []
    build_resp: list[float] = []
    wanted: set[int] = set()
    for span in tel.spans_named("ppss.request.build"):
        build_req.append(span.attrs["ms"] / 1000.0)
        wanted.add(span.trace_id)
    for span in tel.spans_named("ppss.response.build"):
        build_resp.append(span.attrs["ms"] / 1000.0)
        wanted.add(span.trace_id)
    peel_s: dict[int, float] = defaultdict(float)
    mix_cpu_s: dict[int, float] = defaultdict(float)
    for span in tel.spans_named("wcl.peel"):
        if span.trace_id in wanted:
            peel_s[span.trace_id] += span.attrs["ms"] / 1000.0
            if span.attrs.get("role") == "mix":
                mix_cpu_s[span.trace_id] += span.attrs["ms"] / 1000.0
    sent_at: dict[int, float] = {}
    for name in ("ppss.request.sent", "ppss.response.sent"):
        for span in tel.spans_named(name):
            sent_at.setdefault(span.trace_id, span.start)
    delivered_at: dict[int, float] = {}
    for span in tel.spans_named("wcl.delivered"):
        if span.trace_id in wanted:
            delivered_at.setdefault(span.trace_id, span.start)
    relayed = {
        s.trace_id for s in tel.spans_named("nat.relay") if s.trace_id in wanted
    }
    transit_direct: list[float] = []
    transit_relayed: list[float] = []
    for tid, t_sent in sorted(sent_at.items()):
        t_done = delivered_at.get(tid)
        if t_done is None:
            continue  # onion lost or still in flight at measurement end
        transit = max(t_done - t_sent - mix_cpu_s.get(tid, 0.0), 0.0)
        (transit_relayed if tid in relayed else transit_direct).append(transit)
    peels = [peel_s[tid] for tid in sorted(peel_s)]
    return _Breakdown(build_req, build_resp, peels, transit_direct, transit_relayed)
