"""Fig. 9 — Routing delays of a private T-Chord DHT.

400 nodes on the cluster; 60 of them operate a private index: a Chord ring
bootstrapped with T-Chord/T-Man inside a private group over the PPSS.
After convergence, 350 random queries are issued from random members; the
reply always reaches the querying node over a single WCL path using the
contact information shipped with the query.

Expected shape: delays from ~0.2 s up to ~1.5 s depending on route length,
with the CDF staircase following the hop-count distribution.
"""

from __future__ import annotations

import random

from ..apps.tchord import LookupResult, TChordNode
from ..core.ppss import PpssConfig
from ..harness.report import CdfSummary, Report, Table
from ..harness.world import World, WorldConfig
from ..metrics.stats import percentile
from .common import scaled

__all__ = ["run"]


def run(
    scale: float = 1.0,
    seed: int = 1009,
    queries: int = 350,
    ring_size: int = 60,
) -> Report:
    report = Report(title="Fig. 9 — T-Chord routing delays in a private group")
    n_nodes = scaled(400, scale, minimum=80)
    ring_size = min(scaled(ring_size, scale, minimum=20), n_nodes // 3)
    world = World(WorldConfig(seed=seed, latency="cluster"))
    world.populate(n_nodes)
    world.start_all()
    world.run(120.0)

    nodes = world.alive_nodes()
    leader = nodes[0]
    ppss_config = PpssConfig(cycle_time=30.0)
    group = leader.create_group("private-index", config=ppss_config)
    members = [leader]
    for node in nodes[1:ring_size]:
        node.join_group(group.invite(node.node_id), config=ppss_config)
        members.append(node)
    world.run(300.0)

    tchords = [
        TChordNode(
            member.group("private-index"),
            world.sim,
            world.registry.fork(f"tchord-{member.node_id}").stream("t"),
        )
        for member in members
    ]
    world.run(400.0)  # T-Man convergence to the ring

    ring_ok = sum(1 for tc in tchords if tc.successor is not None)
    results: list[LookupResult | None] = []
    rng = random.Random(seed + 7)
    for i in range(queries):
        querier = rng.choice(tchords)
        querier.lookup(f"fig9-key-{i}", results.append)
    world.run(180.0)

    completed = [r for r in results if r is not None]
    delays = [r.latency for r in completed]
    hops = [float(r.hops) for r in completed]
    table = Table(
        title=(
            f"{ring_size}-node ring in a {n_nodes}-node cluster, "
            f"{queries} queries"
        ),
        headers=["metric", "value"],
    )
    table.add_row("ring members with successor", f"{ring_ok}/{len(tchords)}")
    table.add_row("queries completed", f"{len(completed)}/{queries}")
    if delays:
        table.add_row("delay p50 (s)", percentile(delays, 50))
        table.add_row("delay p90 (s)", percentile(delays, 90))
        table.add_row("delay max (s)", max(delays))
        table.add_row("hops p50", percentile(hops, 50))
        table.add_row("hops max", max(hops))
    report.add(table)
    report.add(CdfSummary(title="routing delay", samples=delays, unit="s"))
    report.add(CdfSummary(title="route length (hops)", samples=hops))
    report.note(
        "Paper: delays 0.19-1.5 s; the smallest delays are queries answered "
        "one hop away; replies always travel one WCL path."
    )
    return report
