"""Deterministic process-pool execution of experiment sweeps.

Every multi-point experiment in this repository (``fig5`` over Π,
``fig6`` over Π × NAT-fraction, ``fig8`` over group memberships,
``table1`` over churn rates, ``resilience`` over fault scenarios, the
ablation sweeps) is embarrassingly parallel: each sweep point builds its
own seeded :class:`~repro.harness.world.World`, runs it to completion and
reduces it to a small picklable result.  This module dispatches those
points over ``multiprocessing`` workers while keeping the output
**byte-identical regardless of worker count**:

- each point's seed comes from :func:`derive_seed`, a stable hash of
  ``(seed, point-key)`` — never from shared RNG state, never from
  worker identity or scheduling order;
- workers receive one point each (``chunksize=1``) and the results are
  merged back **in point order**, so the reduction the caller performs is
  the same list it would have built sequentially;
- a :class:`SweepSpec`'s worker must be a module-level function taking
  the point as its only argument (the ``spawn`` start method pickles it
  by qualified name).

``workers <= 1`` bypasses ``multiprocessing`` entirely and runs the
points in-process — the default everywhere, preserving single-process
behavior for tests and small runs.  The determinism contract
(``workers=1`` output == ``workers=N`` output) is enforced by
``tests/test_parallel.py`` and the CI ``parallel-smoke`` job.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
from dataclasses import dataclass
from typing import Any, Callable, Sequence

__all__ = ["SweepSpec", "derive_seed", "default_workers", "run_sweep"]

# 63 bits keeps derived seeds inside the non-negative int range every
# stdlib RNG consumer here accepts.
_SEED_MASK = (1 << 63) - 1


def derive_seed(seed: int, *parts: object) -> int:
    """A stable per-point seed from a base seed and the point's key.

    The additive offsets the sweeps used before PR 5 (``seed + pi +
    round(nf * 100)`` and friends) collide between distinct points —
    e.g. Π=7/nf=0.05 and Π=2/nf=0.10 both land on ``seed + 12`` — which
    silently reuses RNG streams across supposedly independent worlds.
    Hashing the full ``(seed, parts)`` key makes collisions vanishingly
    unlikely while staying reproducible across processes, platforms and
    Python versions (``repr`` of ints/floats/strs/bools is stable, and
    blake2b is part of the format contract).

    ``parts`` should be the point's identity: experiment name plus the
    swept parameter values, as plain scalars.
    """
    material = repr((int(seed), parts)).encode("utf-8")
    digest = hashlib.blake2b(material, digest_size=8).digest()
    return int.from_bytes(digest, "big") & _SEED_MASK


def default_workers() -> int:
    """Worker count that saturates the machine: one per available core."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without CPU affinity
        return os.cpu_count() or 1


@dataclass(frozen=True)
class SweepSpec:
    """One parallelizable sweep: an ordered point list and its worker.

    ``worker`` must be a **module-level** function of one argument (the
    point) returning a picklable result; closures and lambdas break the
    ``spawn`` start method.  Points must themselves be picklable — plain
    tuples of scalars are the norm.
    """

    name: str
    points: tuple[Any, ...]
    worker: Callable[[Any], Any]


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    *,
    start_method: str | None = None,
) -> list[Any]:
    """Run every point of ``spec`` and return results in point order.

    ``workers <= 1`` (the default) runs sequentially in-process; higher
    counts dispatch over a ``multiprocessing`` pool, capped at the number
    of points.  Results are position-stable: ``run_sweep(spec, 1) ==
    run_sweep(spec, n)`` for any deterministic worker.

    ``start_method`` overrides the pool's start method (``"fork"`` where
    the OS offers it, else the platform default) — tests use it to pin
    ``spawn`` and prove workers survive re-import.
    """
    points = list(spec.points)
    effective = min(int(workers), len(points))
    if effective <= 1:
        return [spec.worker(point) for point in points]
    if start_method is None:
        start_method = (
            "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        )
    ctx = multiprocessing.get_context(start_method)
    with ctx.Pool(processes=effective) as pool:
        # chunksize=1: points are coarse (whole simulated worlds), so
        # per-task dispatch overhead is noise and scheduling stays even.
        return pool.map(spec.worker, points, chunksize=1)
