"""Deterministic parallel execution of experiment sweeps.

See :mod:`repro.parallel.executor` for the worker model and the
determinism contract (``--workers N`` output is byte-identical to the
sequential run).
"""

from .executor import SweepSpec, default_workers, derive_seed, run_sweep

__all__ = ["SweepSpec", "default_workers", "derive_seed", "run_sweep"]
