"""Named, probe-instrumented benchmarks (the bench trajectory's workloads).

Each entry builds a deterministic workload, runs it under a
:class:`~.probe.PerfProbe` with named phases, and returns the
:class:`~.probe.PerfResult`:

- ``scale1k`` — the canonical throughput benchmark: the Fig. 5 workload at
  paper scale (1,000 nodes, 70% natted, Pi=2) gossiping for ``cycles``
  PSS cycles.  Its result is the repository-root ``BENCH_scale.json``.
  ``wire_mode="verify"`` runs the same workload through the wire codec's
  encode→decode loop — the codec-throughput benchmark.
- ``fig5`` — the full Fig. 5 campaign (four Pi values, 120 cycles) under
  one probe; the heavyweight regeneration cost.
- ``fig6`` — the 15-point Fig. 6 sweep under one probe; the multi-point
  sweep benchmark (``workers=N`` exercises the parallel executor).
- ``scale`` — the 5,000-node PSS+WCL headroom experiment
  (:mod:`repro.experiments.scale`).
- ``scale100k`` — the sharded-core headline: 100,000 nodes across
  ``partitions`` deterministic shards gossiping for ``cycles`` barrier
  windows (:mod:`repro.harness.sharded`).  ``shards`` (execution lanes)
  lands in the timing half only — the deterministic half, including the
  merged trace SHA, is byte-identical at any lane count.
- ``bench_load`` — the heavy-traffic ``mixed`` workload scenario
  (:mod:`repro.experiments.load`): CBR streams + Zipf lookups + a flash
  crowd over one world.  The probe's deterministic extras carry the
  per-stream goodput/delivery ledger and the telemetry trace SHA, so
  ``compare --strict`` pins the workload behaviourally, not just by
  throughput.

``scale`` here is the usual population multiplier: ``run_bench("scale1k",
scale=0.2)`` runs a 200-node variant for smoke tests and CI.

``workers`` never enters a probe's ``config``: the deterministic half of
a sweep document must be byte-identical at any worker count, so the
count lands in the ``timing`` section via ``annotate_timing``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable

from ..core.node import WhisperConfig
from ..experiments.common import scaled
from ..harness.world import World, WorldConfig
from .probe import PerfProbe, PerfResult

__all__ = ["BENCHES", "run_bench", "CANONICAL_BENCH", "TRAJECTORY_FILE"]

CANONICAL_BENCH = "scale1k"
TRAJECTORY_FILE = "BENCH_scale.json"


def _net_stats(world: World) -> dict[str, int]:
    stats = world.network.stats
    return {
        "sent": stats.sent,
        "delivered": stats.delivered,
        "lost": stats.lost,
        "filtered": stats.filtered,
        "no_handler": stats.no_handler,
    }


def run_scale1k(
    scale: float = 1.0,
    seed: int = 1005,
    alloc: bool = False,
    label: str = "",
    cycles: int = 30,
    pi: int = 2,
    wire_mode: str = "off",
) -> PerfResult:
    """Fig. 5's 1,000-node PSS workload, measured for throughput.

    ``wire_mode`` belongs to the deterministic config: a verify-mode run
    is a different workload (every send round-trips the codec), not a
    different environment.
    """
    n_nodes = scaled(1000, scale, minimum=100)
    config = {
        "nodes": n_nodes, "cycles": cycles, "seed": seed,
        "pi": pi, "natted_fraction": 0.7, "scale": scale,
    }
    if wire_mode != "off":
        # Only annotate non-default modes so existing "off" documents
        # (and the committed trajectory) keep their config shape.
        config["wire_mode"] = wire_mode
    probe = PerfProbe(
        CANONICAL_BENCH,
        config=config,
        alloc=alloc,
        label=label,
    )
    world = World(
        WorldConfig(
            seed=seed,
            whisper=replace(WhisperConfig(), pi=pi),
            wire_mode=wire_mode,
        )
    )
    with probe.phase("populate"):
        world.populate(n_nodes)
        world.start_all()
    with probe.phase("gossip"):
        world.run(cycles * 10.0)
    probe.attach_sim(world.sim)
    probe.attach_telemetry(world.telemetry)
    probe.record("net", _net_stats(world))
    probe.record("caches", world.network.cache_stats())
    return probe.finish()


class _AggregateSim:
    """Deployment-wide ``sim`` section for a sharded world's probe."""

    def __init__(self, sharded: Any) -> None:
        self.events_processed = sharded.events_processed
        self.now = sharded.now
        self._pending = sum(w.sim.pending() for w in sharded.worlds)

    def pending(self) -> int:
        return self._pending


def run_scale100k(
    scale: float = 1.0,
    seed: int = 1013,
    alloc: bool = False,
    label: str = "",
    cycles: int = 6,
    partitions: int = 8,
    shards: int = 1,
) -> PerfResult:
    """A 100,000-node gossip window on the sharded simulation core.

    The population joins through the usual introducer bootstrap, then
    gossips for ``cycles`` PSS cycles with a cross-shard barrier at every
    cycle edge.  ``partitions`` is part of the deterministic config (it is
    part of the world's identity, like the seed); ``shards`` — the
    execution-lane count — is annotated in the timing half only, because
    results are byte-identical at any lane count.  The deterministic
    extras pin the merged trace SHA, the deployment-wide fabric totals,
    per-partition populations and the cross-shard message count; the
    timing half carries per-partition compute seconds and peak-RSS
    watermarks plus the total barrier cost, so the gate sees both *what*
    the sharded core computed and *where* the wall-clock went.
    """
    from ..harness.sharded import ShardedWorld

    n_nodes = scaled(100_000, scale, minimum=1_000)
    probe = PerfProbe(
        "scale100k",
        config={
            "nodes": n_nodes, "cycles": cycles, "seed": seed,
            "partitions": partitions, "natted_fraction": 0.7, "scale": scale,
        },
        alloc=alloc,
        label=label,
    )
    probe.annotate_timing("shards", shards)
    # Telemetry stays OFF like scale1k: per-link counters at 100k nodes
    # would dominate the run.  The merged trace SHA is still a strong
    # witness because the shard headers embed each partition's event
    # count, clock and fabric totals; the telemetry-on JSONL equivalence
    # is pinned at small scale by tests/test_sharded.py.
    sharded = ShardedWorld(WorldConfig(seed=seed), partitions=partitions)
    with probe.phase("populate"):
        sharded.populate(n_nodes)
        sharded.start_all()
    with probe.phase("gossip"):
        sharded.run_windows(10.0, cycles, shards=shards)
    probe.attach_sim(_AggregateSim(sharded))
    for world in sharded.worlds:
        probe.attach_telemetry(world.telemetry, accumulate=True)
    probe.record("net", sharded.net_totals())
    probe.record("trace_sha", sharded.trace_sha())
    probe.record("partition_nodes", [len(w.nodes) for w in sharded.worlds])
    probe.record("cross_shard_msgs", sharded.cross_shard_msgs)
    caches = [w.network.cache_stats() for w in sharded.worlds]
    probe.record("caches", {
        name: {
            key: sum(c[name][key] for c in caches)
            for key in ("hits", "misses", "evictions", "size", "capacity")
        }
        for name in caches[0]
    })
    probe.annotate_timing(
        "shard_compute_s", [round(s, 6) for s in sharded.compute_s]
    )
    probe.annotate_timing("shard_peak_rss_kb", list(sharded.partition_rss_kb))
    probe.annotate_timing("barrier_s", round(sharded.barrier_s, 6))
    probe.annotate_timing("barrier_windows", sharded.barrier_windows)
    return probe.finish()


def run_fig5(
    scale: float = 1.0, seed: int = 1005, alloc: bool = False, label: str = "",
    workers: int = 1,
) -> PerfResult:
    """The full Fig. 5 campaign (4 Pi values) under one probe."""
    from ..experiments import fig5_biased_pss

    probe = PerfProbe(
        "fig5",
        config={"scale": scale, "seed": seed},
        alloc=alloc,
        label=label,
    )
    probe.annotate_timing("workers", workers)
    with probe.phase("campaign"):
        report = fig5_biased_pss.run(scale=scale, seed=seed, workers=workers)
    probe.record("sections", len(report.sections))
    probe.record("rendered", report.render())
    return probe.finish()


def run_fig6(
    scale: float = 1.0, seed: int = 1006, alloc: bool = False, label: str = "",
    workers: int = 1, wire_mode: str = "off",
) -> PerfResult:
    """The full 15-point Fig. 6 sweep under one probe.

    The multi-point sweep benchmark: ``workers=N`` fans the points over N
    processes, and the probe records the *rendered report* in the
    deterministic half, so ``repro.perf compare --strict`` proves the
    parallel run reproduced the sequential output byte for byte.
    """
    from ..experiments import fig6_key_sampling

    config: dict[str, Any] = {"scale": scale, "seed": seed}
    if wire_mode != "off":
        config["wire_mode"] = wire_mode
    probe = PerfProbe("fig6", config=config, alloc=alloc, label=label)
    probe.annotate_timing("workers", workers)
    with probe.phase("sweep"):
        report = fig6_key_sampling.run(
            scale=scale, seed=seed, wire_mode=wire_mode, workers=workers
        )
    probe.record("sections", len(report.sections))
    probe.record("rendered", report.render())
    return probe.finish()


def run_scale_experiment(
    scale: float = 1.0, seed: int = 1010, alloc: bool = False, label: str = ""
) -> PerfResult:
    """The 5,000-node PSS+WCL headroom experiment under a probe."""
    from ..experiments import scale as scale_experiment

    probe = PerfProbe(
        "scale",
        config={"scale": scale, "seed": seed},
        alloc=alloc,
        label=label,
    )
    with probe.phase("experiment"):
        report = scale_experiment.run(scale=scale, seed=seed, probe=probe)
    probe.record("sections", len(report.sections))
    return probe.finish()


def run_bench_load(
    scale: float = 1.0, seed: int = 1011, alloc: bool = False, label: str = "",
    scenario: str = "mixed",
) -> PerfResult:
    """One heavy-traffic workload scenario under a probe.

    The workload ledger (per-stream goodput, delivery ratios, pooled
    latency percentiles) and the telemetry trace SHA land in the
    deterministic extras: a perf regression shows up in the timing half,
    a behaviour change shows up as drift.
    """
    from ..experiments import load

    probe = PerfProbe(
        "bench_load",
        config={"scenario": scenario, "scale": scale, "seed": seed},
        alloc=alloc,
        label=label,
    )
    outcome = load.run_scenario(scenario, seed, scale, probe=probe)
    probe.record("trace_sha", outcome.trace_sha)
    probe.record(
        "workload",
        {
            "nodes": outcome.nodes,
            "groups": outcome.groups,
            "offered": outcome.offered,
            "completed": outcome.completed,
            "failed": outcome.failed,
            "lag": outcome.lag,
            "delivery_ratio": round(outcome.delivery_ratio, 4),
            "goodput_bps": outcome.goodput_bps,
            "latency": outcome.latency,
        },
    )
    probe.record("streams", outcome.streams)
    return probe.finish()


def run_bench_onion_throughput(
    scale: float = 1.0, seed: int = 1012, alloc: bool = False, label: str = "",
    key_bits: int = 512,
) -> PerfResult:
    """Per-message onions vs circuit frames over one S->A->B->D path.

    The amortization micro-benchmark behind circuit mode: phase
    ``per_message`` builds and fully peels a fresh RSA onion per message;
    phase ``circuit`` pays one setup onion, then pushes the same messages
    through symmetric ``wrap_layers``/``unwrap_layer`` only.  Real crypto
    (no simulated envelopes) with the fast stream cipher, so the wall
    numbers measure actual work.  The deterministic extras carry the
    *charged* CPU ledger (jitter-free accountant) and the amortized
    speedup, so ``compare --strict`` pins the cost model's verdict while
    the timing half tracks the implementation's wall throughput.
    """
    import random

    from ..core.onion import (
        CircuitHop,
        HopSpec,
        build_circuit_setup,
        build_onion,
        peel,
        peel_setup,
    )
    from ..crypto.costmodel import CpuAccountant
    from ..crypto.provider import RealCryptoProvider

    messages = scaled(2000, scale, minimum=200)
    probe = PerfProbe(
        "bench_onion_throughput",
        config={
            "messages": messages, "key_bits": key_bits,
            "scale": scale, "seed": seed,
        },
        alloc=alloc,
        label=label,
    )
    rng = random.Random(seed)
    accountant = CpuAccountant()  # no RNG: jitter-free, deterministic ms
    provider = RealCryptoProvider(
        rng, accountant, key_bits=key_bits, use_aes=False
    )
    keypairs = [provider.generate_keypair() for _ in range(3)]  # A, B, D
    path = [
        HopSpec(node_id=101 + i, public_key=pair.public)
        for i, pair in enumerate(keypairs)
    ]
    content = {"seq": 0, "body": "x" * 512}
    source, dest = 100, 103

    with probe.phase("per_message"):
        for seq in range(messages):
            packet = build_onion(
                provider, path, {**content, "seq": seq}, 1024,
                node=source, context="bench",
            )
            body = packet.body
            for hop, pair in enumerate(keypairs):
                layer, packet = peel(
                    provider, pair, packet, node=101 + hop, context="bench"
                )
            provider.decrypt_payload(layer.key, body, node=dest, context="bench")

    per_message_ms = {
        node: round(accountant.node_total_ms(node), 6)
        for node in (source, 101, 102, 103)
    }

    circuit_source, circuit_nodes = 200, (201, 202, 203)
    circuit_path = [
        HopSpec(node_id=circuit_nodes[i], public_key=keypairs[i].public)
        for i in range(3)
    ]
    with probe.phase("circuit"):
        keys = tuple(provider.new_symmetric_key() for _ in circuit_path)
        labels = [500 + i for i in range(3)]
        hops = [
            CircuitHop(
                circuit_id=labels[i], key=keys[i],
                next_circuit_id=labels[i + 1] if i < 2 else None,
                lifetime=600.0,
            )
            for i in range(3)
        ]
        setup = build_circuit_setup(
            provider, circuit_path, hops, node=circuit_source, context="bench",
        )
        for hop, pair in enumerate(keypairs):
            _, setup_next = peel_setup(
                provider, pair, setup, node=circuit_nodes[hop], context="bench"
            )
            setup = setup_next
        for seq in range(messages):
            body = provider.wrap_layers(
                list(keys), {**content, "seq": seq}, 1024,
                node=circuit_source, context="bench",
            )
            for hop in range(3):
                body = provider.unwrap_layer(
                    keys[hop], body, node=circuit_nodes[hop], context="bench"
                )

    circuit_ms = {
        node: round(accountant.node_total_ms(node), 6)
        for node in (circuit_source, *circuit_nodes)
    }
    per_message_total = sum(per_message_ms.values())
    circuit_total = sum(circuit_ms.values())
    speedup = (
        per_message_total / circuit_total if circuit_total > 0 else float("inf")
    )
    probe.record("charged_ms", {
        "per_message": per_message_ms,
        "circuit": circuit_ms,
        "per_message_total": round(per_message_total, 6),
        "circuit_total": round(circuit_total, 6),
        "amortized_speedup": round(speedup, 2),
    })
    probe.record("ops", {
        node: {
            op: record.count
            for op, record in sorted(accountant.op_breakdown(node).items())
        }
        for node in (source, 101, 102, 103, circuit_source, *circuit_nodes)
    })
    return probe.finish()


BENCHES: dict[str, Callable[..., PerfResult]] = {
    "scale1k": run_scale1k,
    "scale100k": run_scale100k,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "scale": run_scale_experiment,
    "bench_load": run_bench_load,
    "bench_onion_throughput": run_bench_onion_throughput,
}


def run_bench(name: str, **kwargs: Any) -> PerfResult:
    """Run one named benchmark; unknown names raise ``KeyError``."""
    try:
        bench = BENCHES[name]
    except KeyError:
        known = ", ".join(sorted(BENCHES))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None
    return bench(**kwargs)
