"""Command-line entry points for the perf subsystem.

Usage::

    python -m repro.perf run scale1k --scale 1.0 --out benchmarks/results/BENCH_scale1k.json
    python -m repro.perf run scale1k --trajectory          # also writes BENCH_scale.json
    python -m repro.perf compare BENCH_scale.json new.json --budget 10%
    python -m repro.perf compare                           # auto-gate mode
    python -m repro.perf list

``compare`` exits 0 when the new measurement is within budget, 1 on a
regression (or, with ``--strict``, on deterministic drift), 2 on usage
errors — so it slots directly into CI.  With no paths it runs the
*auto-gate*: every committed ``benchmarks/baselines/BENCH_*.json`` is
compared against its fresh ``benchmarks/results/`` counterpart (a missing
fresh result fails the gate), with a wider default budget (25%) because
committed baselines were recorded on a different machine.
"""

from __future__ import annotations

import argparse
import inspect
import sys

from .bench import BENCHES, CANONICAL_BENCH, TRAJECTORY_FILE, run_bench
from .compare import auto_compare_pairs, compare_files, parse_budget

AUTO_BUDGET = "25%"  # committed baselines come from a different machine


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Record and gate WHISPER performance measurements.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run a named benchmark under PerfProbe")
    run_parser.add_argument("bench", choices=sorted(BENCHES))
    run_parser.add_argument("--scale", type=float, default=1.0,
                            help="population scale; 1.0 = paper size")
    run_parser.add_argument("--seed", type=int, default=None)
    run_parser.add_argument("--out", default=None,
                            help="result path (default benchmarks/results/BENCH_<name>.json)")
    run_parser.add_argument("--label", default="",
                            help="free-form label recorded in the timing section")
    run_parser.add_argument("--alloc", action="store_true",
                            help="sample tracemalloc allocation windows (slows the run)")
    run_parser.add_argument("--workers", type=int, default=1,
                            help="worker processes for sweep benches (fig5/fig6); "
                                 "deterministic output is identical at any count "
                                 "(0 = one per core)")
    run_parser.add_argument("--wire-mode", default="off",
                            choices=("off", "verify", "measured"),
                            help="wire codec mode for benches that take one "
                                 "(scale1k/fig6)")
    run_parser.add_argument("--cycles", type=int, default=None,
                            help="gossip cycles / barrier windows for benches "
                                 "that take them (scale1k/scale100k)")
    run_parser.add_argument("--partitions", type=int, default=None,
                            help="deterministic shard count (scale100k); part "
                                 "of the world's identity like the seed")
    run_parser.add_argument("--shards", type=int, default=None,
                            help="execution lanes for sharded benches "
                                 "(scale100k); output is byte-identical at "
                                 "any count")
    run_parser.add_argument("--trajectory", action="store_true",
                            help=f"also write {TRAJECTORY_FILE} at the repo root "
                                 f"(default for the canonical '{CANONICAL_BENCH}' bench "
                                 "at scale 1.0)")

    cmp_parser = sub.add_parser("compare", help="gate a new measurement against a baseline")
    cmp_parser.add_argument("old", nargs="?", default=None,
                            help="baseline result JSON (omit both paths for the "
                                 "auto-gate over benchmarks/baselines/)")
    cmp_parser.add_argument("new", nargs="?", default=None,
                            help="candidate result JSON")
    cmp_parser.add_argument("--budget", default=None,
                            help="allowed wall-clock/throughput regression "
                                 f"(default 10%%, or {AUTO_BUDGET} in auto-gate mode)")
    cmp_parser.add_argument("--strict", action="store_true",
                            help="also fail on deterministic drift (same-config runs)")

    sub.add_parser("list", help="enumerate the known benchmarks")

    args = parser.parse_args(argv)

    if args.command == "list":
        for name in sorted(BENCHES):
            marker = " (canonical)" if name == CANONICAL_BENCH else ""
            print(f"{name}{marker}")
        return 0

    if args.command == "run":
        kwargs = {"scale": args.scale, "alloc": args.alloc, "label": args.label}
        if args.seed is not None:
            kwargs["seed"] = args.seed
        params = inspect.signature(BENCHES[args.bench]).parameters
        workers = args.workers
        if workers == 0:
            from ..parallel import default_workers

            workers = default_workers()
        if workers > 1:
            if "workers" not in params:
                print(f"error: bench {args.bench!r} does not take --workers",
                      file=sys.stderr)
                return 2
            kwargs["workers"] = workers
        if args.wire_mode != "off":
            if "wire_mode" not in params:
                print(f"error: bench {args.bench!r} does not take --wire-mode",
                      file=sys.stderr)
                return 2
            kwargs["wire_mode"] = args.wire_mode
        for flag in ("cycles", "partitions", "shards"):
            value = getattr(args, flag)
            if value is None:
                continue
            if flag not in params:
                print(f"error: bench {args.bench!r} does not take --{flag}",
                      file=sys.stderr)
                return 2
            kwargs[flag] = value
        result = run_bench(args.bench, **kwargs)
        out = args.out or f"benchmarks/results/BENCH_{args.bench}.json"
        result.write(out)
        print(f"wrote {out}")
        if args.trajectory or (
            args.bench == CANONICAL_BENCH and args.scale == 1.0 and args.out is None
        ):
            result.write(TRAJECTORY_FILE)
            print(f"wrote {TRAJECTORY_FILE}")
        timing = result.document["timing"]
        sim = result.document["sim"]
        print(
            f"{args.bench}: {sim.get('events', 0)} events in "
            f"{timing['wall_s']:.2f}s -> {timing['events_per_sec']:.0f} events/sec"
        )
        return 0

    if args.command == "compare":
        auto = args.old is None
        if auto and args.new is not None:
            print("error: compare takes two paths or none", file=sys.stderr)
            return 2
        if not auto and args.new is None:
            print("error: compare needs both old and new paths", file=sys.stderr)
            return 2
        try:
            budget = parse_budget(
                args.budget if args.budget is not None
                else (AUTO_BUDGET if auto else "10%")
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not auto:
            try:
                outcome = compare_files(args.old, args.new, budget)
            except (OSError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            print(outcome.render(strict=args.strict))
            return 0 if outcome.ok(strict=args.strict) else 1
        # Auto-gate: every committed baseline against its fresh result.
        try:
            pairs = auto_compare_pairs()
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        failed = False
        for name, baseline, fresh in pairs:
            print(f"== {name} ({baseline} vs {fresh})")
            try:
                outcome = compare_files(baseline, fresh, budget)
            except (OSError, ValueError) as exc:
                print(f"  error: {exc}")
                failed = True
                continue
            print(outcome.render(strict=args.strict))
            failed = failed or not outcome.ok(strict=args.strict)
        print(f"auto-gate verdict: {'FAIL' if failed else 'PASS'}")
        return 1 if failed else 0

    return 2


if __name__ == "__main__":
    sys.exit(main())
