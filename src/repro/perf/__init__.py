"""Performance regression subsystem.

The WHISPER reproduction targets millions-of-users scale, which makes the
wall-clock cost of every subsystem a first-class, *recorded* quantity.  This
package provides:

- :class:`~.probe.PerfProbe` — a harness that wraps any experiment or
  benchmark run and samples events/sec, wall-clock per phase, peak RSS,
  allocation counts (``tracemalloc`` windows) and the run's telemetry
  counters, emitting a deterministic-schema JSON document;
- :mod:`.bench` — the registry of named probe-instrumented benchmarks
  (``scale1k`` is the canonical one: the Fig. 5 1,000-node PSS workload);
- :mod:`.compare` — the regression gate: ``python -m repro.perf compare
  old.json new.json --budget 10%`` exits non-zero when the new measurement
  regresses beyond the budget, and is wired into CI against the committed
  baseline (``BENCH_scale.json`` at the repository root).

The JSON schema separates *deterministic* content (workload config, event
counts, sim time, telemetry counter totals — byte-identical across
same-seed runs) from the environment-dependent ``timing`` section and the
``timestamp`` field, so traces double as regression substrate: see
:func:`~.probe.deterministic_view`.
"""

from __future__ import annotations

from .bench import BENCHES, run_bench
from .compare import CompareResult, compare_documents, compare_files, parse_budget
from .probe import PerfProbe, PerfResult, deterministic_view, load_result

__all__ = [
    "BENCHES",
    "CompareResult",
    "PerfProbe",
    "PerfResult",
    "compare_documents",
    "compare_files",
    "deterministic_view",
    "load_result",
    "parse_budget",
    "run_bench",
]
