"""The regression gate: compare two perf documents against a budget.

``python -m repro.perf compare old.json new.json --budget 10%`` loads two
:mod:`.probe` documents and fails (exit code 1) when the new run regresses
beyond the budget on any gated metric:

- ``events_per_sec`` — lower is a regression (throughput);
- ``wall_s`` — higher is a regression (total wall clock).

Deterministic drift (a different event count or counter total for the same
workload config) is *reported* but only fails under ``--strict`` — across
PRs the deterministic content legitimately changes whenever protocol
behaviour changes, whereas within one PR the same-seed identity tests pin
it exactly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

from .probe import PerfResult, deterministic_view, load_result

__all__ = [
    "CompareResult",
    "auto_compare_pairs",
    "compare_documents",
    "compare_files",
    "parse_budget",
    "BASELINE_DIR",
    "RESULTS_DIR",
]

GATED_METRICS = ("events_per_sec", "wall_s")
_HIGHER_IS_BETTER = {"events_per_sec": True, "wall_s": False}

# The no-argument `repro.perf compare` gate: every committed baseline in
# BASELINE_DIR is compared against its fresh counterpart in RESULTS_DIR.
BASELINE_DIR = "benchmarks/baselines"
RESULTS_DIR = "benchmarks/results"


def parse_budget(text: str) -> float:
    """Parse a budget: ``"10%"`` -> 0.10, ``"0.1"`` -> 0.1."""
    raw = text.strip()
    if raw.endswith("%"):
        value = float(raw[:-1]) / 100.0
    else:
        value = float(raw)
    if not 0.0 <= value < 10.0:
        raise ValueError(f"budget out of range: {text!r}")
    return value


@dataclass
class MetricDelta:
    metric: str
    old: float
    new: float
    ratio: float  # new / old
    regressed: bool

    def describe(self) -> str:
        direction = "+" if self.ratio >= 1.0 else ""
        pct = (self.ratio - 1.0) * 100.0
        status = "REGRESSION" if self.regressed else "ok"
        return (
            f"{self.metric:<16} {self.old:>14.3f} -> {self.new:>14.3f}  "
            f"({direction}{pct:.1f}%)  {status}"
        )


@dataclass
class CompareResult:
    """Outcome of one comparison; ``ok`` is the gate verdict."""

    budget: float
    deltas: list[MetricDelta] = field(default_factory=list)
    drift: list[str] = field(default_factory=list)  # deterministic differences
    notes: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    def ok(self, strict: bool = False) -> bool:
        if self.regressions:
            return False
        if strict and self.drift:
            return False
        return True

    def render(self, strict: bool = False) -> str:
        lines = [f"perf compare (budget {self.budget * 100:.1f}%)"]
        lines += ["  " + d.describe() for d in self.deltas]
        for entry in self.drift:
            marker = "DRIFT (strict)" if strict else "drift"
            lines.append(f"  {marker}: {entry}")
        lines += ["  " + note for note in self.notes]
        verdict = "PASS" if self.ok(strict) else "FAIL"
        lines.append(f"  verdict: {verdict}")
        return "\n".join(lines)


def compare_documents(
    old: dict[str, Any], new: dict[str, Any], budget: float = 0.10
) -> CompareResult:
    """Gate ``new`` against ``old`` with a fractional ``budget``."""
    result = CompareResult(budget=budget)
    if old.get("name") != new.get("name"):
        result.notes.append(
            f"note: comparing different benchmarks "
            f"({old.get('name')!r} vs {new.get('name')!r})"
        )
    old_timing = old.get("timing", {})
    new_timing = new.get("timing", {})
    for metric in GATED_METRICS:
        old_value = old_timing.get(metric)
        new_value = new_timing.get(metric)
        if not old_value or new_value is None:
            result.notes.append(f"note: metric {metric!r} missing; skipped")
            continue
        ratio = new_value / old_value
        if _HIGHER_IS_BETTER[metric]:
            regressed = ratio < 1.0 - budget
        else:
            regressed = ratio > 1.0 + budget
        result.deltas.append(
            MetricDelta(
                metric=metric, old=old_value, new=new_value,
                ratio=ratio, regressed=regressed,
            )
        )
    result.drift.extend(_deterministic_drift(old, new))
    return result


def compare_files(
    old_path: str, new_path: str, budget: float = 0.10
) -> CompareResult:
    return compare_documents(
        load_result(old_path).document, load_result(new_path).document, budget
    )


def auto_compare_pairs(
    baseline_dir: str = BASELINE_DIR, results_dir: str = RESULTS_DIR
) -> list[tuple[str, str, str]]:
    """Pair committed baselines with fresh results for the no-arg gate.

    Returns ``(bench_name, baseline_path, result_path)`` for every
    ``BENCH_*.json`` under ``baseline_dir``; a baseline whose fresh result
    is missing is an error for the caller to surface (the gate must not
    silently pass because a bench did not run), so the result path is
    returned regardless of existence.
    """
    if not os.path.isdir(baseline_dir):
        raise OSError(f"no baseline directory {baseline_dir!r}")
    pairs: list[tuple[str, str, str]] = []
    for entry in sorted(os.listdir(baseline_dir)):
        if not (entry.startswith("BENCH_") and entry.endswith(".json")):
            continue
        name = entry[len("BENCH_"):-len(".json")]
        pairs.append(
            (name, os.path.join(baseline_dir, entry), os.path.join(results_dir, entry))
        )
    if not pairs:
        raise OSError(f"no BENCH_*.json baselines under {baseline_dir!r}")
    return pairs


def _deterministic_drift(old: dict[str, Any], new: dict[str, Any]) -> list[str]:
    """Human-readable differences in the deterministic document parts."""
    out: list[str] = []
    old_det, new_det = deterministic_view(old), deterministic_view(new)
    if old_det.get("config") != new_det.get("config"):
        out.append(f"config: {old_det.get('config')} != {new_det.get('config')}")
        return out  # different workloads: finer-grained drift is meaningless
    for section in ("sim", "counters"):
        old_section = old_det.get(section, {}) or {}
        new_section = new_det.get(section, {}) or {}
        for key in sorted(set(old_section) | set(new_section)):
            old_value = old_section.get(key)
            new_value = new_section.get(key)
            if old_value != new_value:
                out.append(f"{section}.{key}: {old_value} != {new_value}")
    # Probe extras (everything recorded via PerfProbe.record) are part of
    # the deterministic identity too — e.g. the sweep benches record the
    # rendered report so `--strict` proves a parallel run reproduced the
    # sequential output.  Values can be large; report only the key.
    fixed = {"schema", "name", "config", "sim", "counters"}
    for key in sorted((set(old_det) | set(new_det)) - fixed):
        if old_det.get(key) != new_det.get(key):
            out.append(f"extras.{key}: differs")
    return out


def result_delta(old: PerfResult, new: PerfResult) -> float:
    """Convenience: throughput ratio new/old (0 when not measurable)."""
    if not old.events_per_sec:
        return 0.0
    return new.events_per_sec / old.events_per_sec
