"""The :class:`PerfProbe` harness: measure a run, emit a schema'd document.

A probe wraps one benchmark/experiment execution::

    probe = PerfProbe("scale1k", config={"nodes": 1000, "seed": 1005})
    with probe.phase("populate"):
        world.populate(1000); world.start_all()
    with probe.phase("gossip"):
        world.run(300.0)
    probe.attach_sim(world.sim)
    probe.attach_telemetry(world.telemetry)
    result = probe.finish()
    result.write("benchmarks/results/BENCH_scale1k.json")

The emitted document has a fixed schema (``SCHEMA_VERSION``) split in two:

- **deterministic** content — ``name``, ``config``, ``sim`` (events fired,
  sim time, final queue depth), ``counters`` (telemetry counter totals by
  name) and anything recorded via :meth:`PerfProbe.record`.  Two same-seed
  runs produce byte-identical deterministic content, which the test suite
  asserts.
- **environment-dependent** content — the ``timestamp`` field and the
  ``timing`` section (wall clock per phase and total, events/sec, peak RSS,
  optional ``tracemalloc`` allocation windows, interpreter/platform info,
  free-form ``label``).  This is what the regression gate budgets.

``tracemalloc`` windows are opt-in (``PerfProbe(alloc=True)``) because
tracing allocations slows the measured code by 2-4x; enable them for
allocation hunts, not for recording throughput baselines.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import sys
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:
    from ..sim.engine import Simulator
    from ..telemetry import Telemetry

__all__ = [
    "PerfProbe",
    "PerfResult",
    "SCHEMA_VERSION",
    "deterministic_view",
    "load_result",
]

SCHEMA_VERSION = 1

_NONDETERMINISTIC_KEYS = ("timestamp", "timing")
"""Top-level keys excluded from the deterministic identity of a document."""


def _peak_rss_kb() -> int | None:
    """Peak resident set size of this process in KB (None if unavailable)."""
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KB; macOS reports bytes.
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)


@dataclass
class _Phase:
    name: str
    wall_s: float = 0.0
    alloc_peak_kb: float | None = None
    alloc_blocks: int | None = None


@dataclass
class PerfResult:
    """One finished measurement, ready to serialize."""

    document: dict[str, Any] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.document.get("name", "")

    @property
    def events_per_sec(self) -> float:
        return self.document.get("timing", {}).get("events_per_sec", 0.0)

    @property
    def wall_s(self) -> float:
        return self.document.get("timing", {}).get("wall_s", 0.0)

    def to_json(self) -> str:
        """Canonical serialization: sorted keys, two-space indent, newline."""
        return json.dumps(self.document, sort_keys=True, indent=2) + "\n"

    def write(self, path: str | os.PathLike[str]) -> None:
        directory = os.path.dirname(os.fspath(path))
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    def deterministic_json(self) -> str:
        """The identity-relevant serialization (see :func:`deterministic_view`)."""
        return json.dumps(deterministic_view(self.document), sort_keys=True, indent=2) + "\n"


def deterministic_view(document: dict[str, Any]) -> dict[str, Any]:
    """The document minus its environment-dependent parts.

    Strips ``timestamp`` and the whole ``timing`` section; what remains is a
    pure function of (code, seed, workload) and must be byte-identical
    across same-seed runs.
    """
    return {
        key: value
        for key, value in document.items()
        if key not in _NONDETERMINISTIC_KEYS
    }


def load_result(path: str | os.PathLike[str]) -> PerfResult:
    with open(path, "r", encoding="utf-8") as fh:
        document = json.load(fh)
    if not isinstance(document, dict) or "schema" not in document:
        raise ValueError(f"{path}: not a perf result document")
    return PerfResult(document=document)


class PerfProbe:
    """Wraps one run; collects deterministic metrics + wall-clock samples."""

    def __init__(
        self,
        name: str,
        config: dict[str, Any] | None = None,
        alloc: bool = False,
        label: str = "",
    ) -> None:
        self.name = name
        self.config = dict(config or {})
        self.label = label
        self._alloc = alloc
        self._phases: list[_Phase] = []
        self._phase_names: set[str] = set()
        self._deterministic: dict[str, Any] = {}
        self._counters: dict[str, float] = {}
        self._sim_section: dict[str, Any] = {}
        self._timing_notes: dict[str, Any] = {}
        self._started = time.perf_counter()
        self._finished: float | None = None

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Measure one named phase (wall clock, optional allocation window)."""
        if name in self._phase_names:
            raise ValueError(f"duplicate phase name {name!r}")
        self._phase_names.add(name)
        record = _Phase(name=name)
        self._phases.append(record)
        owns_tracemalloc = False
        if self._alloc and not tracemalloc.is_tracing():
            tracemalloc.start()
            owns_tracemalloc = True
        if self._alloc:
            tracemalloc.reset_peak()
            base_size, _ = tracemalloc.get_traced_memory()
            base_blocks = _traced_blocks()
        start = time.perf_counter()
        try:
            yield
        finally:
            record.wall_s = time.perf_counter() - start
            if self._alloc:
                _, peak = tracemalloc.get_traced_memory()
                record.alloc_peak_kb = round((peak - base_size) / 1024.0, 1)
                record.alloc_blocks = _traced_blocks() - base_blocks
                if owns_tracemalloc:
                    tracemalloc.stop()

    def record(self, key: str, value: Any) -> None:
        """Attach one deterministic datum (e.g. fabric stats) to the document."""
        if key in ("schema", "name", "config", "sim", "counters", *_NONDETERMINISTIC_KEYS):
            raise ValueError(f"reserved document key: {key!r}")
        self._deterministic[key] = value

    def annotate_timing(self, key: str, value: Any) -> None:
        """Attach one environment datum to the ``timing`` section.

        For execution facts that affect wall clock but must not enter the
        document's deterministic identity — the sweep worker count is the
        canonical example (``workers=1`` and ``workers=4`` must emit
        byte-identical deterministic halves).
        """
        if key in ("wall_s", "events_per_sec", "peak_rss_kb", "phases",
                   "python", "platform", "label"):
            raise ValueError(f"reserved timing key: {key!r}")
        self._timing_notes[key] = value

    def attach_sim(self, sim: "Simulator") -> None:
        """Capture the engine's deterministic end-of-run statistics."""
        self._sim_section = {
            "events": sim.events_processed,
            "sim_time_s": sim.now,
            "pending_final": sim.pending(),
        }

    def attach_telemetry(
        self, telemetry: "Telemetry", accumulate: bool = False
    ) -> None:
        """Sum every telemetry counter by name (deterministic totals).

        ``accumulate=True`` adds into the totals already attached — a
        sharded world carries one telemetry instance per partition, and the
        probe document wants the deployment-wide sums.
        """
        totals: dict[str, float] = dict(self._counters) if accumulate else {}
        for (name, _labels), metric in telemetry.metrics.items():
            if metric.kind != "counter":
                continue
            totals[name] = totals.get(name, 0) + metric.value
        self._counters = totals

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def finish(self) -> PerfResult:
        """Close the measurement and build the result document."""
        if self._finished is None:
            self._finished = time.perf_counter()
        wall_s = self._finished - self._started
        events = self._sim_section.get("events", 0)
        timing: dict[str, Any] = {
            "wall_s": round(wall_s, 6),
            "events_per_sec": round(events / wall_s, 3) if wall_s > 0 else 0.0,
            "peak_rss_kb": _peak_rss_kb(),
            "phases": {
                p.name: _phase_timing(p) for p in self._phases
            },
            "python": platform.python_version(),
            "platform": sys.platform,
        }
        timing.update(self._timing_notes)
        if self.label:
            timing["label"] = self.label
        document: dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "name": self.name,
            "config": self.config,
            "sim": dict(self._sim_section),
            "counters": self._counters,
            "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
                timespec="seconds"
            ),
            "timing": timing,
        }
        document.update(self._deterministic)
        return PerfResult(document=document)


def _phase_timing(p: _Phase) -> dict[str, Any]:
    entry: dict[str, Any] = {"wall_s": round(p.wall_s, 6)}
    if p.alloc_peak_kb is not None:
        entry["alloc_peak_kb"] = p.alloc_peak_kb
        entry["alloc_blocks"] = p.alloc_blocks
    return entry


def _traced_blocks() -> int:
    """Number of currently traced allocation blocks (cheap snapshot count)."""
    stats = tracemalloc.take_snapshot().statistics("filename")
    return sum(s.count for s in stats)
