"""Network size estimation over gossip aggregation [11].

The classic averaging trick: exactly one initiator holds mass 1.0 and every
other participant 0.0; push-pull averaging converges every node's value to
1/N, so ``1 / value`` estimates the group size.  Inside WHISPER this runs
over the PPSS app channel, estimating the size of a *private group* without
any member ever enumerating the membership — a natural companion to
membership privacy.
"""

from __future__ import annotations

import random

from ..core.ppss import PrivatePeerSamplingService
from ..sim.clock import Clock
from .aggregation import AggregationProtocol, average_merge

__all__ = ["SizeEstimator"]


class SizeEstimator:
    """One node's participation in a group-size estimation epoch."""

    def __init__(
        self,
        ppss: PrivatePeerSamplingService,
        sim: Clock,
        rng: random.Random,
        is_initiator: bool,
        cycle_time: float = 20.0,
        name: str = "sizeest",
    ) -> None:
        self.aggregation = AggregationProtocol(
            name=name,
            ppss=ppss,
            sim=sim,
            rng=rng,
            initial=1.0 if is_initiator else 0.0,
            merge=average_merge,
            cycle_time=cycle_time,
        )

    def handle_payload(self, payload: dict, reply_to) -> bool:
        """PPSS app-channel hook; True when the payload was ours."""
        return self.aggregation.handle_payload(payload, reply_to)

    def stop(self) -> None:
        """Stop participating in the estimation epoch."""
        self.aggregation.stop()

    @property
    def estimate(self) -> float | None:
        """Current size estimate; None until any mass reached this node."""
        value = self.aggregation.value
        if value <= 0.0:
            return None
        return 1.0 / value
