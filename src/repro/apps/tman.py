"""T-Man: gossip-based overlay topology construction [12].

T-Man turns a random overlay (here: the PPSS private view) into a structured
one: each node keeps an application view ranked by a problem-specific
proximity function and gossips it with neighbours, keeping the best entries
from the union.  Convergence to the target topology takes a few cycles.

The framework is deliberately oblivious to WHISPER: all communication goes
through the PPSS app channel, exactly as Section IV-C prescribes ("these
protocols are oblivious to the fact that the communication ... takes place
using a confidentiality-enforcing mechanism").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable

from ..core.contact import PrivateContact
from ..core.ppss import PrivatePeerSamplingService
from ..net.address import NodeId
from ..sim.clock import Clock
from ..sim.process import PeriodicTask

__all__ = ["TManEntry", "TManProtocol"]


@dataclass(frozen=True, slots=True)
class TManEntry:
    """A candidate neighbour: identity, application profile, reachability."""

    node_id: NodeId
    profile: Any
    contact: PrivateContact


# A selector receives (own profile, candidate entries) and returns the
# entries to keep, best first, at most its own size budget.
Selector = Callable[[Any, list[TManEntry]], list[TManEntry]]


@dataclass
class TManStats:
    """Counters for one T-Man instance."""

    rounds: int = 0
    pushes: int = 0
    pulls: int = 0


class TManProtocol:
    """One node's T-Man instance over one private group."""

    def __init__(
        self,
        name: str,
        ppss: PrivatePeerSamplingService,
        sim: Clock,
        rng: random.Random,
        profile: Any,
        selector: Selector,
        cycle_time: float = 20.0,
        exchange_size: int = 8,
        on_view_change: Callable[[list[TManEntry]], None] | None = None,
    ) -> None:
        self.name = name
        self.ppss = ppss
        self._sim = sim
        self._rng = rng
        self.profile = profile
        self._selector = selector
        self.exchange_size = exchange_size
        self._on_view_change = on_view_change
        self.view: dict[NodeId, TManEntry] = {}
        self.stats = TManStats()
        self._task = PeriodicTask(
            sim, cycle_time, self._cycle, initial_delay=rng.uniform(0, cycle_time)
        )

    def stop(self) -> None:
        """Stop the periodic T-Man cycle."""
        self._task.stop()

    def entries(self) -> list[TManEntry]:
        """Current application view, unordered."""
        return list(self.view.values())

    # ------------------------------------------------------------------
    def _self_entry(self) -> TManEntry:
        return TManEntry(
            node_id=self.ppss.node_id,
            profile=self.profile,
            contact=self.ppss.self_contact(),
        )

    def _cycle(self) -> None:
        self.stats.rounds += 1
        partner = self._pick_partner()
        if partner is None:
            return
        payload = {
            "app": "tman",
            "name": self.name,
            "op": "push",
            "entries": self._exchange_buffer(),
        }
        self.ppss.send_app(partner, payload, self._buffer_size())
        self.stats.pushes += 1

    def _pick_partner(self) -> PrivateContact | None:
        """Alternate between structured neighbours (refinement) and random
        PPSS peers (exploration) — the classic T-Man peer selection."""
        entries = self.entries()
        if entries and self._rng.random() < 0.5:
            return self._rng.choice(entries).contact
        return self.ppss.get_peer()

    def _exchange_buffer(self) -> list[TManEntry]:
        entries = self.entries()
        k = min(self.exchange_size, len(entries))
        sample = self._rng.sample(entries, k) if k else []
        return [self._self_entry()] + sample

    def _buffer_size(self) -> int:
        # Profile assumed small; entries dominated by the contact material.
        return sum(64 + e.contact.wire_size() for e in self._exchange_buffer())

    # ------------------------------------------------------------------
    def handle_payload(self, payload: dict, reply_to: PrivateContact | None) -> bool:
        """PPSS app-channel hook; True when the payload was ours."""
        if payload.get("app") != "tman" or payload.get("name") != self.name:
            return False
        received: list[TManEntry] = payload["entries"]
        if payload["op"] == "push" and reply_to is not None:
            answer = {
                "app": "tman",
                "name": self.name,
                "op": "pull",
                "entries": self._exchange_buffer(),
            }
            self.ppss.send_app(
                reply_to, answer, self._buffer_size(), include_self_contact=False
            )
        else:
            self.stats.pulls += 1
        self._merge(received)
        return True

    def _merge(self, received: list[TManEntry]) -> None:
        candidates: dict[NodeId, TManEntry] = dict(self.view)
        for entry in received:
            if entry.node_id != self.ppss.node_id:
                candidates[entry.node_id] = entry
        kept = self._selector(self.profile, list(candidates.values()))
        self.view = {e.node_id: e for e in kept}
        if self._on_view_change is not None:
            self._on_view_change(self.entries())

    def drop_peer(self, node_id: NodeId) -> None:
        """Evict a failed neighbour from the application view."""
        self.view.pop(node_id, None)
