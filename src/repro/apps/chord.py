"""Chord ring structures and routing logic [24].

Pure data/logic module: identifier space arithmetic, ring neighbour
selection and finger-table targets.  The gossip-based *construction* of the
ring lives in :mod:`repro.apps.tchord`; this module provides what any Chord
implementation needs regardless of how links are maintained.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..net.address import NodeId

__all__ = [
    "ID_BITS",
    "ID_SPACE",
    "chord_id",
    "in_interval",
    "distance_cw",
    "FingerTable",
    "RingNeighbours",
]

ID_BITS = 32
ID_SPACE = 1 << ID_BITS


def chord_id(node_id: NodeId) -> int:
    """Hash a node identifier onto the ring (SHA-1 in the original paper;
    SHA-256 truncated here — uniformity is all that matters)."""
    digest = hashlib.sha256(f"chord:{node_id}".encode()).digest()
    return int.from_bytes(digest[:4], "big") % ID_SPACE


def key_id(key: str) -> int:
    """Hash an application key onto the ring."""
    digest = hashlib.sha256(f"key:{key}".encode()).digest()
    return int.from_bytes(digest[:4], "big") % ID_SPACE


def in_interval(x: int, left: int, right: int, inclusive_right: bool = True) -> bool:
    """Is ``x`` in the clockwise interval (left, right] on the ring?"""
    x, left, right = x % ID_SPACE, left % ID_SPACE, right % ID_SPACE
    if left == right:
        # The interval covers the whole ring (single-node case).
        return True if not inclusive_right else True
    if left < right:
        return (left < x < right) or (inclusive_right and x == right)
    return (x > left) or (x < right) or (inclusive_right and x == right)


def distance_cw(a: int, b: int) -> int:
    """Clockwise distance from a to b."""
    return (b - a) % ID_SPACE


@dataclass(frozen=True, slots=True)
class RingPeer:
    """A known ring participant (identity + ring position)."""

    node_id: NodeId
    ring_id: int


class RingNeighbours:
    """Successor/predecessor selection among known candidates."""

    def __init__(self, own_ring_id: int) -> None:
        self.own = own_ring_id

    def best_successor(self, candidates: list[RingPeer]) -> RingPeer | None:
        """Closest peer clockwise from us."""
        others = [c for c in candidates if c.ring_id != self.own]
        if not others:
            return None
        return min(others, key=lambda c: distance_cw(self.own, c.ring_id))

    def best_predecessor(self, candidates: list[RingPeer]) -> RingPeer | None:
        """Closest peer counterclockwise from us."""
        others = [c for c in candidates if c.ring_id != self.own]
        if not others:
            return None
        return min(others, key=lambda c: distance_cw(c.ring_id, self.own))

    def successor_list(self, candidates: list[RingPeer], k: int) -> list[RingPeer]:
        """The k closest peers clockwise (successor redundancy)."""
        others = [c for c in candidates if c.ring_id != self.own]
        return sorted(others, key=lambda c: distance_cw(self.own, c.ring_id))[:k]


class FingerTable:
    """Classic power-of-two finger targets with best-match selection."""

    def __init__(self, own_ring_id: int, bits: int = ID_BITS) -> None:
        self.own = own_ring_id
        self.bits = bits
        self.fingers: dict[int, RingPeer] = {}  # finger index -> peer

    def targets(self) -> list[tuple[int, int]]:
        """(finger index, target ring id) pairs."""
        return [(i, (self.own + (1 << i)) % ID_SPACE) for i in range(self.bits)]

    def consider(self, peer: RingPeer) -> None:
        """Adopt ``peer`` for any finger it improves (first peer at or after
        the finger target, clockwise)."""
        if peer.ring_id == self.own:
            return
        for index, target in self.targets():
            current = self.fingers.get(index)
            peer_distance = distance_cw(target, peer.ring_id)
            if current is None or peer_distance < distance_cw(target, current.ring_id):
                self.fingers[index] = peer

    def drop(self, node_id: NodeId) -> None:
        """Remove a failed peer from every finger it occupied."""
        self.fingers = {
            i: p for i, p in self.fingers.items() if p.node_id != node_id
        }

    def closest_preceding(self, key: int) -> RingPeer | None:
        """Best next hop: the known peer closest before ``key`` clockwise."""
        best: RingPeer | None = None
        best_distance = None
        for peer in self.fingers.values():
            if peer.ring_id == key:
                continue
            if in_interval(peer.ring_id, self.own, key, inclusive_right=False):
                d = distance_cw(peer.ring_id, key)
                if best_distance is None or d < best_distance:
                    best, best_distance = peer, d
        return best

    def known_peers(self) -> list[RingPeer]:
        """Deduplicated peers currently referenced by any finger."""
        unique: dict[NodeId, RingPeer] = {}
        for peer in self.fingers.values():
            unique[peer.node_id] = peer
        return list(unique.values())
