"""T-Chord: a Chord DHT bootstrapped by gossip inside a private group [15].

This is the paper's flagship application (Section V-G): 60 nodes of a
400-node deployment operate a private index.  T-Chord uses the T-Man
framework to converge to the Chord ring — every node gossips (ring id,
contact) profiles and keeps, per link type, the best matches: the closest
clockwise node (successor), the closest counterclockwise (predecessor) and
the finger targets.  Ring neighbours are made persistent through the PPSS
connection pool so lookups can use them directly.

Lookups are routed recursively along fingers/successors; the node
responsible for the key answers the querying node *directly* with a single
WCL path, using the contact information shipped with the query (identity,
public key and Π P-nodes) — exactly the scheme described for Fig. 9.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable

from ..core.contact import PrivateContact
from ..core.ppss import PrivatePeerSamplingService
from ..net.address import NodeId
from ..sim.clock import Clock
from ..sim.process import Timer
from .chord import (
    FingerTable,
    RingNeighbours,
    RingPeer,
    chord_id,
    distance_cw,
    in_interval,
    key_id,
)
from .tman import TManEntry, TManProtocol

__all__ = ["TChordNode", "LookupResult", "TChordStats"]

MAX_HOPS = 32
SUCCESSOR_SLOTS = 3
PREDECESSOR_SLOTS = 3
FINGER_SLOTS = 8


@dataclass(frozen=True, slots=True)
class LookupResult:
    key: str
    owner_id: NodeId
    owner_ring_id: int
    hops: int
    latency: float


@dataclass
class TChordStats:
    """Counters for one T-Chord instance."""

    lookups_started: int = 0
    lookups_completed: int = 0
    lookups_timed_out: int = 0
    queries_forwarded: int = 0
    queries_answered: int = 0


@dataclass
class _PendingLookup:
    key: str
    started_at: float
    callback: Callable[[LookupResult | None], None]
    timer: Timer | None = None


class TChordNode:
    """One node's T-Chord instance over one private group."""

    def __init__(
        self,
        ppss: PrivatePeerSamplingService,
        sim: Clock,
        rng: random.Random,
        cycle_time: float = 20.0,
        lookup_timeout: float = 30.0,
    ) -> None:
        self.ppss = ppss
        self._sim = sim
        self._rng = rng
        self.ring_id = chord_id(ppss.node_id)
        self.neighbours = RingNeighbours(self.ring_id)
        self.fingers = FingerTable(self.ring_id)
        self.successor: TManEntry | None = None
        self.predecessor: TManEntry | None = None
        self._contacts: dict[NodeId, PrivateContact] = {}
        self.lookup_timeout = lookup_timeout
        self.stats = TChordStats()
        self._pending: dict[int, _PendingLookup] = {}
        # Per-instance qids: answers are routed back to the origin and
        # resolved against *its* pending map, so uniqueness per node
        # suffices.  A module-level counter would leak state between runs
        # in one process (its value is pickled into query bodies, where
        # the serialized length feeds the charged crypto cost) and break
        # the workers-equivalence determinism contract.
        self._query_counter = itertools.count(1)
        self.tman = TManProtocol(
            name="tchord",
            ppss=ppss,
            sim=sim,
            rng=rng,
            profile=self.ring_id,
            selector=self._select,
            cycle_time=cycle_time,
            on_view_change=self._rebuild_links,
        )
        ppss.set_app_handler(self._on_app)

    def stop(self) -> None:
        self.tman.stop()
        for pending in self._pending.values():
            if pending.timer is not None:
                pending.timer.cancel()
        self._pending.clear()

    # ------------------------------------------------------------------
    # T-Man ranking: per-link-type selection (Section V-G)
    # ------------------------------------------------------------------
    def _select(self, own_ring_id: int, candidates: list[TManEntry]) -> list[TManEntry]:
        peers = {
            e.node_id: RingPeer(node_id=e.node_id, ring_id=e.profile)
            for e in candidates
        }
        by_id = {e.node_id: e for e in candidates}
        keep: dict[NodeId, TManEntry] = {}
        ring = list(peers.values())
        for peer in self.neighbours.successor_list(ring, SUCCESSOR_SLOTS):
            keep[peer.node_id] = by_id[peer.node_id]
        # Predecessor side: closest counterclockwise.
        ordered_ccw = sorted(
            (p for p in ring if p.ring_id != self.ring_id),
            key=lambda p: distance_cw(p.ring_id, self.ring_id),
        )
        for peer in ordered_ccw[:PREDECESSOR_SLOTS]:
            keep[peer.node_id] = by_id[peer.node_id]
        # Finger targets: rebuild a scratch table over all candidates.
        scratch = FingerTable(self.ring_id)
        for peer in ring:
            scratch.consider(peer)
        for peer in scratch.known_peers()[:FINGER_SLOTS]:
            keep[peer.node_id] = by_id[peer.node_id]
        return list(keep.values())

    def _rebuild_links(self, entries: list[TManEntry]) -> None:
        self._contacts = {e.node_id: e.contact for e in entries}
        ring = [RingPeer(node_id=e.node_id, ring_id=e.profile) for e in entries]
        by_id = {e.node_id: e for e in entries}
        successor_peer = self.neighbours.best_successor(ring)
        predecessor_peer = self.neighbours.best_predecessor(ring)
        self.successor = by_id.get(successor_peer.node_id) if successor_peer else None
        self.predecessor = (
            by_id.get(predecessor_peer.node_id) if predecessor_peer else None
        )
        self.fingers = FingerTable(self.ring_id)
        for peer in ring:
            self.fingers.consider(peer)
        # Ring links become persistent connections (Section IV-C).
        if self.successor is not None:
            self.ppss.pin_contact(self.successor.contact)
        if self.predecessor is not None:
            self.ppss.pin_contact(self.predecessor.contact)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def lookup(
        self, key: str, callback: Callable[[LookupResult | None], None]
    ) -> None:
        """Find the node responsible for ``key``; None on timeout."""
        self.stats.lookups_started += 1
        qid = next(self._query_counter)
        pending = _PendingLookup(
            key=key, started_at=self._sim.now, callback=callback
        )
        pending.timer = Timer(self._sim, lambda: self._lookup_timeout(qid))
        pending.timer.start(self.lookup_timeout)
        self._pending[qid] = pending
        query = {
            "app": "tchord",
            "op": "query",
            "qid": qid,
            "key": key,
            "kid": key_id(key),
            "origin": self.ppss.self_contact(),
            "origin_id": self.ppss.node_id,
            "hops": 0,
        }
        self._route(query)

    def _lookup_timeout(self, qid: int) -> None:
        pending = self._pending.pop(qid, None)
        if pending is None:
            return
        self.stats.lookups_timed_out += 1
        pending.callback(None)

    def _route(self, query: dict) -> None:
        kid: int = query["kid"]
        hops: int = query["hops"]
        if hops > MAX_HOPS:
            return  # routing loop safety valve; origin will time out
        successor_peer = (
            RingPeer(self.successor.node_id, self.successor.profile)
            if self.successor is not None
            else None
        )
        at_origin = hops == 0 and query["origin_id"] == self.ppss.node_id
        if successor_peer is None:
            # Degenerate ring: we are alone, we own everything.
            self._answer(query, owner_id=self.ppss.node_id, owner_ring=self.ring_id)
            return
        # Case 1: we own the key (it falls between our predecessor and us).
        if self.predecessor is not None and in_interval(
            kid, self.predecessor.profile, self.ring_id
        ):
            if not at_origin:
                self._answer(
                    query, owner_id=self.ppss.node_id, owner_ring=self.ring_id
                )
                return
            # The paper routes every query through the ring even for keys
            # held by the querying node (min delay ~190 ms in Fig. 9): hand
            # the query to our predecessor, which will resolve it back to us
            # and reply over a WCL path.
            if self.predecessor is not None:
                self._forward_query(query, self.predecessor.node_id)
                return
        # Case 2: our successor owns the key.  At the origin we still ship
        # the query to the successor so the answer travels a WCL path.
        if in_interval(kid, self.ring_id, successor_peer.ring_id):
            if not at_origin:
                self._answer(
                    query, owner_id=successor_peer.node_id,
                    owner_ring=successor_peer.ring_id,
                )
                return
            self._forward_query(query, successor_peer.node_id)
            return
        # Case 3: forward to the closest preceding finger (or successor).
        next_peer = self.fingers.closest_preceding(kid) or successor_peer
        if not self._forward_query(query, next_peer.node_id):
            self._answer(
                query, owner_id=successor_peer.node_id,
                owner_ring=successor_peer.ring_id,
            )

    def _forward_query(self, query: dict, next_node: NodeId) -> bool:
        contact = self._contacts.get(next_node)
        if contact is None:
            return False
        forwarded = dict(query)
        forwarded["hops"] = query["hops"] + 1
        self.stats.queries_forwarded += 1
        self.ppss.send_app(contact, forwarded, 160, include_self_contact=False)
        return True

    def _answer(self, query: dict, owner_id: NodeId, owner_ring: int) -> None:
        """Reply straight to the querying node over a single WCL path."""
        self.stats.queries_answered += 1
        answer = {
            "app": "tchord",
            "op": "answer",
            "qid": query["qid"],
            "key": query["key"],
            "owner_id": owner_id,
            "owner_ring": owner_ring,
            "hops": query["hops"],
        }
        origin: PrivateContact = query["origin"]
        if origin.node_id == self.ppss.node_id:
            self._deliver_answer(answer)
        else:
            self.ppss.send_app(origin, answer, 128, include_self_contact=False)

    def _deliver_answer(self, answer: dict) -> None:
        pending = self._pending.pop(answer["qid"], None)
        if pending is None:
            return  # duplicate or post-timeout answer
        if pending.timer is not None:
            pending.timer.cancel()
        self.stats.lookups_completed += 1
        pending.callback(
            LookupResult(
                key=pending.key,
                owner_id=answer["owner_id"],
                owner_ring_id=answer["owner_ring"],
                hops=answer["hops"],
                latency=self._sim.now - pending.started_at,
            )
        )

    # ------------------------------------------------------------------
    def _on_app(self, payload: dict, reply_to: PrivateContact | None) -> None:
        if self.tman.handle_payload(payload, reply_to):
            return
        if payload.get("app") != "tchord":
            return
        if payload["op"] == "query":
            self._route(payload)
        elif payload["op"] == "answer":
            self._deliver_answer(payload)
