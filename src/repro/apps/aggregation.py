"""Gossip-based aggregation inside a private group (Jelasity et al. [8]).

Push-pull epidemic aggregation over PPSS app messages: every cycle a node
exchanges its current aggregate with a random member from its private view
and both adopt the merged value.  ``max`` converges to the global maximum in
O(log N) cycles (this is the primitive behind WHISPER's leader election);
``avg`` implements the classic mass-conserving averaging.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..core.contact import PrivateContact
from ..core.ppss import PrivatePeerSamplingService
from ..sim.clock import Clock
from ..sim.process import PeriodicTask

__all__ = ["AggregationProtocol", "max_merge", "average_merge"]


def max_merge(local: float, remote: float) -> tuple[float, float]:
    """Both parties keep the maximum."""
    best = max(local, remote)
    return best, best


def average_merge(local: float, remote: float) -> tuple[float, float]:
    """Mass-conserving averaging: both adopt the mean."""
    mean = (local + remote) / 2.0
    return mean, mean


@dataclass
class AggregationStats:
    """Counters for one aggregation instance."""

    rounds: int = 0
    exchanges: int = 0
    replies: int = 0


class AggregationProtocol:
    """One node's aggregation instance for one group.

    Multiple higher-level protocols can share the group's app channel, so
    every payload is tagged with the protocol ``name``; the dispatcher in
    :meth:`handle_payload` ignores other apps' traffic.
    """

    PAYLOAD_SIZE = 64

    def __init__(
        self,
        name: str,
        ppss: PrivatePeerSamplingService,
        sim: Clock,
        rng: random.Random,
        initial: float,
        merge: Callable[[float, float], tuple[float, float]] = max_merge,
        cycle_time: float = 30.0,
    ) -> None:
        self.name = name
        self.ppss = ppss
        self._sim = sim
        self._rng = rng
        self.value = initial
        self._merge = merge
        self.stats = AggregationStats()
        self._task = PeriodicTask(
            sim, cycle_time, self._cycle, initial_delay=rng.uniform(0, cycle_time)
        )

    def stop(self) -> None:
        """Stop the periodic aggregation cycle."""
        self._task.stop()

    # ------------------------------------------------------------------
    def _cycle(self) -> None:
        self.stats.rounds += 1
        partner = self.ppss.get_peer()
        if partner is None:
            return
        payload = {"app": "agg", "name": self.name, "op": "push", "value": self.value}
        if self.ppss.send_app(partner, payload, self.PAYLOAD_SIZE):
            self.stats.exchanges += 1

    def handle_payload(self, payload: dict, reply_to: PrivateContact | None) -> bool:
        """Returns True when the payload belonged to this protocol."""
        if payload.get("app") != "agg" or payload.get("name") != self.name:
            return False
        if payload["op"] == "push":
            mine, theirs = self._merge(self.value, payload["value"])
            self.value = mine
            if reply_to is not None:
                answer = {
                    "app": "agg", "name": self.name, "op": "pull", "value": theirs,
                }
                self.ppss.send_app(
                    reply_to, answer, self.PAYLOAD_SIZE, include_self_contact=False
                )
        elif payload["op"] == "pull":
            self.stats.replies += 1
            mine, _theirs = self._merge(self.value, payload["value"])
            self.value = mine
        return True
