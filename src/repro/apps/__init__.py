"""Applications and protocols layered on the PPSS: aggregation, T-Man, T-Chord."""

from .aggregation import AggregationProtocol, average_merge, max_merge
from .chord import (
    ID_BITS,
    ID_SPACE,
    FingerTable,
    RingNeighbours,
    RingPeer,
    chord_id,
    distance_cw,
    in_interval,
    key_id,
)
from .sizeestim import SizeEstimator
from .tchord import LookupResult, TChordNode, TChordStats
from .tman import TManEntry, TManProtocol

__all__ = [
    "AggregationProtocol",
    "FingerTable",
    "ID_BITS",
    "ID_SPACE",
    "LookupResult",
    "RingNeighbours",
    "RingPeer",
    "SizeEstimator",
    "TChordNode",
    "TChordStats",
    "TManEntry",
    "TManProtocol",
    "average_merge",
    "chord_id",
    "distance_cw",
    "in_interval",
    "key_id",
    "max_merge",
]
