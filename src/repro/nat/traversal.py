"""NAT traversal: sessions, hole punching, rendezvous chains and relays.

This module implements the connectivity machinery of Nylon [21], the
NAT-resilient peer sampling substrate WHISPER builds on.  Its contract
(Section II-C of the paper): *for any node B in the view of a node A, there
exists a possibility, known to the layer, to open a communication channel
from A to B* — via a chain of rendezvous (RV) nodes, hole punching when the
NAT types permit it, and relaying when they do not.

How a descriptor's *route* comes to exist: when node C gossips an entry for
node B to node A, C either has an open session with B (it gossiped with B
recently) or knows a chain towards B; the entry handed to A carries that
chain with C prepended.  A can always reach the first hop (its gossip
partner), each hop can reach the next, and the final hop — the RV — has an
open session with B.

Connection establishment then follows Nylon:

1. A sends ``CONNECT`` along the chain, carrying its reflexive (external)
   endpoint learned from previous exchanges.
2. The RV forwards a ``PUNCH_OFFER`` to B over its session.
3. If both NAT types permit hole punching, B fires ``HELLO`` packets at A's
   external endpoint (opening B's own egress mapping and filter) and returns
   a ``PUNCH_ACCEPT`` with its external endpoint along the reverse chain; A
   then fires ``HELLO`` at B — both ingress filters are now open and a
   *direct* session exists.
4. Otherwise (symmetric NAT involved) the RV stays on the path as a
   *relay*: payloads are wrapped in ``RELAY`` envelopes.

Sessions are bidirectional (gossip exchanges are request/response) and decay
with NAT association leases; stale sessions surface as timeouts that callers
(the PSS and the WCL) handle with retries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..net.address import Endpoint, NodeId, NodeKind, Protocol
from ..net.message import Message, sizes
from ..net.network import Network
from ..sim.clock import Clock
from ..sim.process import PeriodicTask
from ..telemetry import NULL_TELEMETRY, Span, Telemetry
from .types import NatType, hole_punching_possible

__all__ = [
    "NodeDescriptor",
    "Session",
    "TraversalPolicy",
    "ConnectionManager",
    "MAX_ROUTE_LENGTH",
]

MAX_ROUTE_LENGTH = 5
_CONNECT_TIMEOUT = 5.0
_PUNCH_TIMEOUT = 3.0


@dataclass(frozen=True, slots=True)
class NodeDescriptor:
    """How to reach a node, as circulated in PSS views.

    ``route`` lists intermediary node ids, nearest-to-the-holder first; the
    last element is the rendezvous that holds an open session with the node.
    An empty route means the holder itself has (or had) a session — or the
    node is public and directly reachable at ``public_endpoint``.
    """

    node_id: NodeId
    kind: NodeKind
    nat_type: NatType
    public_endpoint: Endpoint | None = None  # P-nodes only
    route: tuple[NodeId, ...] = ()

    @property
    def is_public(self) -> bool:
        return self.kind is NodeKind.PUBLIC

    def via(self, forwarder: NodeId) -> "NodeDescriptor":
        """Descriptor as handed to a gossip partner: ``forwarder`` prepended."""
        if self.kind is NodeKind.PUBLIC:
            return self
        # Direct construction: dataclasses.replace() re-derives every field
        # through the dataclass machinery, and this runs for each shipped
        # entry of every gossip exchange.
        return NodeDescriptor(
            self.node_id,
            self.kind,
            self.nat_type,
            self.public_endpoint,
            (forwarder, *self.route),
        )

    def route_too_long(self) -> bool:
        return len(self.route) > MAX_ROUTE_LENGTH


@dataclass(slots=True)
class Session:
    """An open (NAT-traversed) channel to a peer."""

    peer: NodeId
    remote_endpoint: Endpoint | None  # where to address packets (direct)
    # Relay chain towards the peer: intermediate hops ending at the
    # rendezvous that holds a session with the peer.  None = direct.
    relay_chain: tuple[NodeId, ...] | None
    established_at: float
    last_used: float  # last time *we* pushed traffic through it
    last_seen: float = 0.0  # last inbound evidence the peer is alive
    missed_probes: int = 0  # unanswered keepalives since last evidence

    @property
    def is_relayed(self) -> bool:
        return self.relay_chain is not None


@dataclass(frozen=True)
class TraversalPolicy:
    """Tunables for the traversal behaviour.

    ``force_relay_for_symmetric`` reflects the paper's setting: "sym NAT
    devices require the use of relay nodes by the Nylon layer".  Disabling it
    lets the full compatibility matrix decide (an ablation knob).

    Defaults model the paper's TCP-friendly NAT emulation (RFC 5382):
    associations last 24 hours (the cited Cisco lease), so a session stays
    usable for as long as both endpoints live — "the ability of A to
    communicate with B once the connection has been opened typically lasts
    longer than the time of presence of the node in the view".  Set
    ``protocol=UDP`` and a 300 s lifetime for the UDP-lease ablation.
    """

    force_relay_for_symmetric: bool = True
    session_lifetime: float = 86_400.0  # the TCP association lease
    protocol: Protocol = Protocol.TCP
    # Liveness probing: sessions idle past ``keepalive_interval`` are pinged;
    # after ``keepalive_misses`` unanswered probes the session is evicted
    # (and listeners — e.g. the connection backlog — are told, so stale
    # first-mix candidates stop poisoning WCL path selection).  Set the
    # interval to 0 to disable.  Probing starts when the owning node calls
    # :meth:`ConnectionManager.start_keepalive` (WhisperNode does on start).
    keepalive_interval: float = 60.0
    keepalive_misses: int = 3

    def can_punch(self, a: NatType, b: NatType) -> bool:
        if self.force_relay_for_symmetric and (a.is_symmetric or b.is_symmetric):
            return False
        return hole_punching_possible(a, b)


@dataclass
class _PendingConnect:
    """Book-keeping for an in-flight establishment attempt."""

    target: NodeId
    route: tuple[NodeId, ...] = ()
    on_ready: list[Callable[[], None]] = field(default_factory=list)
    on_fail: list[Callable[[str], None]] = field(default_factory=list)
    timer_event: object | None = None
    settled: bool = False
    span: Span | None = None


class ConnectionManager:
    """Per-node traversal endpoint: sessions, punching, relaying.

    The owning node wires ``handle_message`` into its dispatcher for every
    ``nat.*`` message kind and uses :meth:`ensure_session` /
    :meth:`send_via_session` as the data-plane API.  Payloads relayed for
    *other* nodes are forwarded without inspection — exactly the position
    of an honest-but-curious relay in the threat model.
    """

    def __init__(
        self,
        node_id: NodeId,
        nat_type: NatType,
        sim: Clock,
        network: Network,
        policy: TraversalPolicy | None = None,
        deliver_upcall: Callable[[NodeId, str, object, int], None] | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.node_id = node_id
        self.nat_type = nat_type
        self._sim = sim
        self._net = network
        self.policy = policy if policy is not None else TraversalPolicy()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._sessions: dict[NodeId, Session] = {}
        self._pending: dict[NodeId, _PendingConnect] = {}
        self._reflexive: Endpoint | None = None
        self._descriptor_cache: NodeDescriptor | None = None
        # Upcall for application payloads arriving over sessions:
        # (peer_id, kind, payload, size).
        self._deliver_upcall = deliver_upcall
        self._evict_listeners: list[Callable[[NodeId], None]] = []
        self._keepalive_task: PeriodicTask | None = None
        self.stats_relayed = 0  # payloads this node forwarded for others
        self.stats_punches = 0
        self.stats_relay_sessions = 0
        self.stats_sessions_evicted = 0  # declared dead by liveness probing

    # ------------------------------------------------------------------
    # identity helpers
    # ------------------------------------------------------------------
    @property
    def sim(self) -> Clock:
        return self._sim

    @property
    def kind(self) -> NodeKind:
        return NodeKind.NATTED if self.nat_type.is_natted else NodeKind.PUBLIC

    def descriptor(self) -> NodeDescriptor:
        """Self-descriptor, as inserted in gossip exchanges (empty route).

        Cached: node id, kind, NAT type and the registered public endpoint
        are all fixed for the node's lifetime, and gossip asks for this
        every exchange.  The single slot is inherently bounded; hit/miss
        counters surface alongside the LRU caches' in trace summaries.
        """
        cached = self._descriptor_cache
        tel = self.telemetry
        if cached is not None:
            if tel.enabled:
                tel.counter("nat.descriptor.cache_hit", layer="nat").inc()
            return cached
        if tel.enabled:
            tel.counter("nat.descriptor.cache_miss", layer="nat").inc()
        endpoint = None
        if self.kind is NodeKind.PUBLIC:
            endpoint = self._net.topology.public_endpoint(self.node_id)
        cached = NodeDescriptor(
            node_id=self.node_id,
            kind=self.kind,
            nat_type=self.nat_type,
            public_endpoint=endpoint,
        )
        self._descriptor_cache = cached
        return cached

    def set_deliver_upcall(
        self, upcall: Callable[[NodeId, str, object, int], None]
    ) -> None:
        self._deliver_upcall = upcall

    # ------------------------------------------------------------------
    # session table
    # ------------------------------------------------------------------
    def has_session(self, peer: NodeId) -> bool:
        session = self._sessions.get(peer)
        if session is None:
            return False
        if self._sim.now - session.last_used > self.policy.session_lifetime:
            del self._sessions[peer]
            return False
        return True

    def session(self, peer: NodeId) -> Session | None:
        # Single dict lookup with inline lease expiry (has_session + get
        # would look the peer up twice on the hottest call site).
        session = self._sessions.get(peer)
        if session is None:
            return None
        if self._sim.now - session.last_used > self.policy.session_lifetime:
            del self._sessions[peer]
            return None
        return session

    def sessions(self) -> list[Session]:
        # has_session evicts expired entries, so iterate over a snapshot.
        return [
            s for s in list(self._sessions.values()) if self.has_session(s.peer)
        ]

    def _install_session(
        self,
        peer: NodeId,
        endpoint: Endpoint | None,
        relay: tuple[NodeId, ...] | None,
    ) -> Session:
        now = self._sim.now
        session = Session(
            peer=peer,
            remote_endpoint=endpoint,
            relay_chain=relay,
            established_at=now,
            last_used=now,
        )
        self._sessions[peer] = session
        return session

    def drop_session(self, peer: NodeId) -> None:
        self._sessions.pop(peer, None)

    # ------------------------------------------------------------------
    # liveness probing (keepalive)
    # ------------------------------------------------------------------
    def add_evict_listener(self, listener: Callable[[NodeId], None]) -> None:
        """Run ``listener(peer)`` whenever liveness probing evicts a session."""
        self._evict_listeners.append(listener)

    def start_keepalive(self) -> None:
        """Begin periodic liveness probing of idle sessions."""
        interval = self.policy.keepalive_interval
        if interval <= 0 or self._keepalive_task is not None:
            return
        self._keepalive_task = PeriodicTask(
            self._sim, interval, self._keepalive_tick
        )

    def stop_keepalive(self) -> None:
        if self._keepalive_task is not None:
            self._keepalive_task.stop()
            self._keepalive_task = None

    def _keepalive_tick(self) -> None:
        interval = self.policy.keepalive_interval
        now = self._sim.now
        for session in list(self._sessions.values()):
            if not self.has_session(session.peer):
                continue  # lease-expired; has_session already dropped it
            freshest = max(session.last_seen, session.established_at)
            if now - freshest < interval:
                continue  # recent inbound evidence: clearly alive
            if session.missed_probes >= self.policy.keepalive_misses:
                self._evict_session(session.peer)
                continue
            session.missed_probes += 1
            self.send_via_session(
                session.peer, "nat.sping", {"from": self.node_id},
                sizes.connect_control, "nat",
            )

    def _evict_session(self, peer: NodeId) -> None:
        """The peer stopped answering: declare the session dead."""
        self._sessions.pop(peer, None)
        self.stats_sessions_evicted += 1
        self.telemetry.counter(
            "cm.session_evicted", node=self.node_id, layer="nat"
        ).inc()
        for listener in self._evict_listeners:
            listener(peer)

    def _note_alive(self, peer: NodeId) -> None:
        """Inbound evidence the peer is alive: reset the liveness clock."""
        session = self._sessions.get(peer)
        if session is not None:
            session.last_seen = self._sim.now
            session.missed_probes = 0

    # ------------------------------------------------------------------
    # establishment
    # ------------------------------------------------------------------
    def ensure_session(
        self,
        descriptor: NodeDescriptor,
        on_ready: Callable[[], None],
        on_fail: Callable[[str], None],
        timeout: float = _CONNECT_TIMEOUT,
    ) -> None:
        """Make sure a channel to ``descriptor.node_id`` exists, then call back.

        Callbacks are always asynchronous (scheduled), so callers can rely on
        uniform re-entrancy behaviour.
        """
        target = descriptor.node_id
        if target == self.node_id:
            self._sim.schedule(0.0, lambda: on_fail("cannot connect to self"))
            return
        if self.has_session(target):
            self._sim.schedule(0.0, on_ready)
            return
        if descriptor.is_public:
            assert descriptor.public_endpoint is not None
            self._install_session(target, descriptor.public_endpoint, relay=None)
            # Prime our own NAT mapping so the peer's replies pass our filter.
            self._send_raw(
                descriptor.public_endpoint, "nat.ping",
                {"from": self.node_id}, sizes.connect_control, "nat",
            )
            self._sim.schedule(0.0, on_ready)
            return
        if descriptor.route_too_long():
            self._sim.schedule(0.0, lambda: on_fail("route too long"))
            return
        pending = self._pending.get(target)
        if pending is not None:
            pending.on_ready.append(on_ready)
            pending.on_fail.append(on_fail)
            return
        if not descriptor.route:
            self._sim.schedule(
                0.0, lambda: on_fail("no route to natted node")
            )
            return
        first_hop = descriptor.route[0]
        first_session = self.session(first_hop)
        if first_session is None:
            self._sim.schedule(
                0.0, lambda: on_fail(f"no session with first hop {first_hop}")
            )
            return
        pending = _PendingConnect(target=target, route=descriptor.route)
        pending.on_ready.append(on_ready)
        pending.on_fail.append(on_fail)
        if self.telemetry.enabled:
            pending.span = self.telemetry.span_start(
                "nat.connect", node=self.node_id, layer="nat",
                target=target, route_len=len(descriptor.route),
            )
        pending.timer_event = self._sim.schedule(
            timeout, lambda: self._settle(target, error="connect timeout")
        )
        self._pending[target] = pending
        connect = {
            "target": target,
            "requester": self.node_id,
            "requester_nat": self.nat_type,
            "requester_external": self._reflexive,
            "remaining": list(descriptor.route[1:]),
            "path_taken": [self.node_id],
        }
        self.send_via_session(
            first_hop, "nat.connect", connect, sizes.connect_control, "nat"
        )

    def _settle(self, target: NodeId, error: str | None) -> None:
        pending = self._pending.pop(target, None)
        if pending is None or pending.settled:
            return
        pending.settled = True
        if pending.timer_event is not None:
            pending.timer_event.cancel()  # type: ignore[attr-defined]
        if pending.span is not None:
            self.telemetry.span_end(
                pending.span, ok=error is None, error=error,
            )
        self.telemetry.counter(
            "nat.connects", layer="nat",
            outcome="ok" if error is None else "fail",
        ).inc()
        if error is None:
            for callback in pending.on_ready:
                callback()
        else:
            for callback in pending.on_fail:
                callback(error)

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def send_via_session(
        self, peer: NodeId, kind: str, payload: object, size: int, category: str
    ) -> bool:
        """Send over the open session to ``peer``; False if none exists.

        Relayed sessions are resolved iteratively: each level wraps the
        payload in a relay envelope addressed to the hop the relay must
        reach.  A relay whose own session is relayed is followed (bounded
        depth), and cycles — which can arise when two natted nodes end up
        relaying for each other after churn — fail the send instead of
        recursing forever.
        """
        sessions = self._sessions
        lifetime = self.policy.session_lifetime
        now = self._sim.now
        visited: set[NodeId] | None = None  # allocated only when relaying
        current = peer
        while True:
            # Inline session() — single dict get + lease expiry — because
            # this loop runs once per session-borne packet.
            session = sessions.get(current)
            if session is None:
                return False
            if now - session.last_used > lifetime:
                del sessions[current]
                return False
            session.last_used = now
            chain = session.relay_chain
            if chain is None:
                break
            if visited is None:
                visited = set()
            elif current in visited or len(visited) >= 4:
                return False
            visited.add(current)
            assert chain
            payload = {
                "target": current,
                "chain": list(chain[1:]),
                "origin": self.node_id,
                "kind": kind,
                "payload": payload,
                "inner_size": size,
            }
            kind = "nat.relay"
            size = size + sizes.connect_control
            current = chain[0]
        assert session.remote_endpoint is not None
        self._net.send(
            self.node_id,
            session.remote_endpoint,
            "nat.data",
            {"from": self.node_id, "kind": kind, "payload": payload, "inner_size": size},
            size,
            protocol=self.policy.protocol,
            category=category,
        )
        return True

    def _send_raw(
        self, dst: Endpoint, kind: str, payload: object, size: int, category: str
    ) -> None:
        self._net.send(
            self.node_id, dst, kind, payload, size,
            protocol=self.policy.protocol, category=category,
        )

    # ------------------------------------------------------------------
    # inbound
    # ------------------------------------------------------------------
    def handle_message(self, message: Message) -> None:
        """Entry point for all ``nat.*`` fabric messages addressed to us.

        Only four kinds travel raw on the wire: ``nat.data`` (session
        payloads, possibly carrying internal control kinds), and the
        connection-less ``nat.hello`` / ``nat.ping`` / ``nat.pong``.
        """
        kind = message.kind
        if kind == "nat.data":
            self._on_data(message)
        elif kind == "nat.hello":
            self._on_hello(message)
        elif kind == "nat.ping":
            self._on_ping(message)
        elif kind == "nat.pong":
            self._on_pong(message.payload)

    def _on_data(self, message: Message) -> None:
        body = message.payload
        peer = body["from"]
        now = self._sim.now
        # Refresh (or adopt) the reverse session: the observed source endpoint
        # is where replies reach the peer through its NAT.
        session = self._sessions.get(peer)
        if session is None:
            session = self._install_session(peer, message.src, relay=None)
        elif session.relay_chain is None:
            # Refresh in place — equivalent to reinstalling the direct
            # session, without allocating a new Session per inbound message.
            session.remote_endpoint = message.src
            session.established_at = now
        # Inbound traffic is liveness evidence (what _note_alive records),
        # folded in here to avoid a second session-table lookup.
        session.last_used = now
        session.last_seen = now
        session.missed_probes = 0
        kind = body["kind"]
        if kind.startswith("nat."):
            self._dispatch_internal(kind, body["payload"])
        elif self._deliver_upcall is not None:
            self._deliver_upcall(peer, kind, body["payload"], body["inner_size"])

    def _dispatch_internal(self, kind: str, payload: dict) -> None:
        """Control messages carried over sessions (after ``nat.data`` unwrap)."""
        if kind == "nat.relay":
            self._on_relay(payload)
        elif kind == "nat.connect":
            self._on_connect(payload)
        elif kind == "nat.connect_fail":
            self._on_connect_fail(payload)
        elif kind == "nat.punch_offer":
            self._on_punch_offer(payload)
        elif kind == "nat.punch_accept":
            self._on_punch_accept(payload)
        elif kind == "nat.sping":
            # Liveness probe: answer so the prober's clock resets.  Works
            # over relayed sessions too, since both travel as session data.
            self.send_via_session(
                payload["from"], "nat.spong", {"from": self.node_id},
                sizes.connect_control, "nat",
            )
        elif kind == "nat.spong":
            self._note_alive(payload["from"])

    def _on_relay(self, envelope: dict) -> None:
        target = envelope["target"]
        origin = envelope["origin"]
        if target == self.node_id:
            # Terminal: we are the destination, reached through a relay.
            # Preserve the origin attribution the envelope carries, and keep
            # our reverse (relayed) session towards the origin alive.
            reverse = self._sessions.get(origin)
            if reverse is not None:
                reverse.last_used = self._sim.now
            self._note_alive(origin)
            inner_kind = envelope["kind"]
            if inner_kind.startswith("nat."):
                self._dispatch_internal(inner_kind, envelope["payload"])
            elif self._deliver_upcall is not None:
                self._deliver_upcall(
                    origin, inner_kind, envelope["payload"], envelope["inner_size"]
                )
            return
        # Forward the envelope along its remaining chain (or, as the final
        # rendezvous, over our session to the target); the final receiver
        # still sees the true origin.
        chain: list[NodeId] = envelope.get("chain") or []
        if chain:
            forwarded = dict(envelope)
            forwarded["chain"] = chain[1:]
            next_hop = chain[0]
        else:
            forwarded = envelope
            next_hop = target
        if self.send_via_session(
            next_hop, "nat.relay", forwarded,
            envelope["inner_size"] + sizes.connect_control, "nat.relay",
        ):
            self.stats_relayed += 1
            tel = self.telemetry
            if tel.enabled:
                tel.counter("nat.relayed", node=self.node_id, layer="nat").inc()
                if envelope["kind"] == "wcl.onion":
                    # An honest-but-curious relay forwarding an onion: the
                    # measurement-only trace id on the packet lets Fig. 7
                    # attribute the relay hop — the protocol itself never
                    # reads it (see core/onion.py).
                    tel.instant(
                        "nat.relay", node=self.node_id, layer="nat",
                        trace_id=getattr(envelope["payload"], "trace_id", None),
                    )

    def _on_connect(self, request: dict) -> None:
        target: NodeId = request["target"]
        remaining: list[NodeId] = request["remaining"]
        path: list[NodeId] = request["path_taken"]
        if remaining:
            next_hop = remaining[0]
            if self.has_session(next_hop):
                forwarded = dict(request)
                forwarded["remaining"] = remaining[1:]
                forwarded["path_taken"] = path + [self.node_id]
                self.send_via_session(
                    next_hop, "nat.connect", forwarded, sizes.connect_control, "nat"
                )
            else:
                self._fail_back(path, target, f"hop {self.node_id} lost {next_hop}")
            return
        # We are the rendezvous: we must hold a session with the target.
        if not self.has_session(target):
            self._fail_back(path, target, f"rv {self.node_id} lost {target}")
            return
        offer = {
            "requester": request["requester"],
            "requester_nat": request["requester_nat"],
            "requester_external": request["requester_external"],
            "reply_path": path + [self.node_id],
            "rv": self.node_id,
        }
        self.send_via_session(
            target, "nat.punch_offer", offer, sizes.connect_control, "nat"
        )

    def _fail_back(self, path: list[NodeId], target: NodeId, reason: str) -> None:
        notice = {"path": path, "target": target, "reason": reason}
        self._route_back(notice, "nat.connect_fail")

    def _route_back(self, notice: dict, kind: str) -> None:
        path: list[NodeId] = notice["path"]
        if not path:
            return
        previous = path[-1]
        notice = dict(notice)
        notice["path"] = path[:-1]
        if previous == self.node_id:
            # We are the origin of the request.
            if kind == "nat.connect_fail":
                self._settle(notice["target"], error=notice["reason"])
            elif kind == "nat.punch_accept":
                self._complete_punch(notice)
            return
        self.send_via_session(previous, kind, notice, sizes.connect_control, "nat")

    def _on_connect_fail(self, notice: dict) -> None:
        if not notice["path"]:
            self._settle(notice["target"], error=notice["reason"])
        else:
            self._route_back(notice, "nat.connect_fail")

    def _on_punch_offer(self, offer: dict) -> None:
        """We are the connection target; the RV relayed the requester's offer."""
        requester: NodeId = offer["requester"]
        requester_nat: NatType = offer["requester_nat"]
        requester_external: Endpoint | None = offer["requester_external"]
        rv: NodeId = offer["rv"]
        punchable = (
            self.policy.can_punch(self.nat_type, requester_nat)
            and requester_external is not None
        )
        if punchable:
            # Open our egress mapping and the peer's ingress path.
            for _ in range(2):  # redundancy against loss
                self._send_raw(
                    requester_external, "nat.hello",
                    {"from": self.node_id}, sizes.connect_control, "nat",
                )
            self.stats_punches += 1
            self.telemetry.counter("nat.punches", layer="nat").inc()
        else:
            # The rendezvous chain stays on the path: our replies travel the
            # reversed chain (RV first, then the hops back to the requester;
            # each consecutive pair holds a session from the establishment).
            reply_path: list[NodeId] = offer["reply_path"]
            reverse_chain = tuple(reversed(reply_path[1:])) or (rv,)
            self._install_session(requester, endpoint=None, relay=reverse_chain)
            self.stats_relay_sessions += 1
            self.telemetry.counter("nat.relay_sessions", layer="nat").inc()
        accept = {
            "path": offer["reply_path"],
            "target": self.node_id,
            "requester": requester,
            "punch": punchable,
            "target_external": self._reflexive if punchable else None,
            "rv": rv,
        }
        self._route_back(accept, "nat.punch_accept")

    def _on_punch_accept(self, notice: dict) -> None:
        path: list[NodeId] = notice["path"]
        if not path:
            self._complete_punch(notice)
        else:
            self._route_back(notice, "nat.punch_accept")

    def _complete_punch(self, notice: dict) -> None:
        """Requester side: the target agreed (punch) or designated a relay."""
        target: NodeId = notice["target"]
        if notice["punch"] and notice["target_external"] is not None:
            endpoint: Endpoint = notice["target_external"]
            self._install_session(target, endpoint, relay=None)
            for _ in range(2):
                self._send_raw(
                    endpoint, "nat.hello",
                    {"from": self.node_id}, sizes.connect_control, "nat",
                )
        else:
            # The whole rendezvous chain we used stays on the path: we can
            # only reach the final RV through the hops we connected via.
            pending = self._pending.get(target)
            chain = pending.route if pending is not None and pending.route else (
                notice["rv"],
            )
            self._install_session(target, endpoint=None, relay=tuple(chain))
            self.stats_relay_sessions += 1
            self.telemetry.counter("nat.relay_sessions", layer="nat").inc()
        self._settle(target, error=None)

    def _on_hello(self, message: Message) -> None:
        """A punch packet: adopt/refresh the direct session to the sender."""
        peer = message.payload["from"]
        self._install_session(peer, message.src, relay=None)
        self._note_alive(peer)

    def _on_ping(self, message: Message) -> None:
        peer = message.payload["from"]
        self._install_session(peer, message.src, relay=None)
        # Echo the observed source so the peer learns its reflexive endpoint.
        self._send_raw(
            message.src, "nat.pong",
            {"from": self.node_id, "observed": message.src},
            sizes.connect_control, "nat",
        )

    def _on_pong(self, payload: dict) -> None:
        peer = payload["from"]
        observed: Endpoint = payload["observed"]
        if self.nat_type.is_natted and not self.nat_type.is_symmetric:
            # Cone NATs keep one stable external mapping per internal socket,
            # so the reflexive endpoint is reusable for hole punching.
            self._reflexive = observed
        elif not self.nat_type.is_natted:
            self._reflexive = observed
        session = self._sessions.get(peer)
        if session is not None:
            session.last_used = self._sim.now
        self._note_alive(peer)

    # ------------------------------------------------------------------
    def learn_reflexive_via(self, descriptor: NodeDescriptor) -> None:
        """STUN-like bootstrap: ping a public node to learn our external endpoint."""
        if not descriptor.is_public or descriptor.public_endpoint is None:
            raise ValueError("reflexive discovery requires a public node")
        self._send_raw(
            descriptor.public_endpoint, "nat.ping",
            {"from": self.node_id}, sizes.connect_control, "nat",
        )
