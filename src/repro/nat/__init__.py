"""NAT emulation substrate: device behaviour, topology, traversal (Nylon)."""

from .device import DEFAULT_LEASES, Mapping, NatDevice
from .topology import NatAssignment, NatTopology
from .traversal import (
    MAX_ROUTE_LENGTH,
    ConnectionManager,
    NodeDescriptor,
    Session,
    TraversalPolicy,
)
from .types import EMULATED_TYPES, NatType, hole_punching_possible

__all__ = [
    "ConnectionManager",
    "DEFAULT_LEASES",
    "EMULATED_TYPES",
    "Mapping",
    "MAX_ROUTE_LENGTH",
    "NatAssignment",
    "NatDevice",
    "NatTopology",
    "NatType",
    "NodeDescriptor",
    "Session",
    "TraversalPolicy",
    "hole_punching_possible",
]
