"""Assignment of NAT devices to nodes.

The paper deploys "70% of the nodes behind NAT devices, evenly split between
the four NAT types" to reflect the Casado-Freedman measurement study [4].
:class:`NatTopology` reproduces that assignment and resolves endpoint
ownership for the network fabric.
"""

from __future__ import annotations

import random

from ..net.address import Endpoint, NodeId, NodeKind, Protocol
from .device import NatDevice
from .types import EMULATED_TYPES, NatType

__all__ = ["NatTopology", "NatAssignment"]

_NODE_PORT = 7000  # every node listens on one well-known local port


class NatAssignment:
    """Where one node sits in the topology."""

    __slots__ = ("node_id", "nat_type", "device", "local_endpoint")

    def __init__(
        self,
        node_id: NodeId,
        nat_type: NatType,
        device: NatDevice | None,
        local_endpoint: Endpoint,
    ) -> None:
        self.node_id = node_id
        self.nat_type = nat_type
        self.device = device
        self.local_endpoint = local_endpoint

    @property
    def kind(self) -> NodeKind:
        return NodeKind.NATTED if self.nat_type.is_natted else NodeKind.PUBLIC


class NatTopology:
    """Creates and tracks per-node NAT assignments.

    Each natted node gets its own emulated device (matching how SPLAY's
    emulation attaches a NAT instance per natted process).  The topology also
    answers the two routing questions the fabric asks:

    - what source endpoint does the world observe for node X sending to D?
    - which node owns destination endpoint E (after inbound filtering)?
    """

    def __init__(
        self,
        rng: random.Random,
        natted_fraction: float = 0.7,
        nat_types: tuple[NatType, ...] = EMULATED_TYPES,
    ) -> None:
        if not 0.0 <= natted_fraction <= 1.0:
            raise ValueError(f"natted_fraction out of range: {natted_fraction}")
        self._rng = rng
        self._natted_fraction = natted_fraction
        self._nat_types = nat_types
        self._assignments: dict[NodeId, NatAssignment] = {}
        # Struct-of-arrays mirror of the assignment table, indexed directly
        # by node id (ids are dense: the World allocates them 1, 2, 3, ...).
        # The fabric's per-send path resolves a sender through two list
        # indexes instead of a dict probe + two attribute loads, and the
        # compiled Network.send binds these lists once — their identity must
        # never change (grown by extend, entries nulled on removal).
        self._local: list[Endpoint | None] = []
        self._device: list[NatDevice | None] = []
        # Reachable host -> (owner node, fronting device or None for public
        # endpoints): one probe answers both "who owns it" and "how is it
        # filtered", where the fabric previously probed public and NAT owner
        # tables separately and re-fetched the assignment for the device.
        self._owner: dict[str, tuple[NodeId, NatDevice | None]] = {}

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def add_node(self, node_id: NodeId, nat_type: NatType | None = None) -> NatAssignment:
        """Register a node; draws a NAT type if none is forced.

        Natted nodes receive a private endpoint and a dedicated device; public
        nodes receive a globally reachable endpoint.
        """
        if node_id in self._assignments:
            raise ValueError(f"node {node_id} already registered")
        if node_id < 0:
            raise ValueError(f"node ids must be non-negative, got {node_id}")
        if nat_type is None:
            nat_type = self._draw_type()
        if nat_type.is_natted:
            device = NatDevice(nat_id=node_id, nat_type=nat_type)
            local = Endpoint(f"priv-{node_id}", _NODE_PORT)
            self._owner[device.public_host] = (node_id, device)
        else:
            device = None
            local = Endpoint(f"pub-{node_id}", _NODE_PORT)
            self._owner[local.host] = (node_id, None)
        assignment = NatAssignment(node_id, nat_type, device, local)
        self._assignments[node_id] = assignment
        locals_, devices = self._local, self._device
        if node_id >= len(locals_):
            pad = node_id + 1 - len(locals_)
            locals_.extend([None] * pad)
            devices.extend([None] * pad)
        locals_[node_id] = local
        devices[node_id] = device
        return assignment

    def remove_node(self, node_id: NodeId) -> None:
        """Forget a departed node (its NAT state vanishes with it)."""
        assignment = self._assignments.pop(node_id, None)
        if assignment is None:
            return
        if assignment.device is not None:
            self._owner.pop(assignment.device.public_host, None)
        else:
            self._owner.pop(assignment.local_endpoint.host, None)
        self._local[node_id] = None
        self._device[node_id] = None

    def _draw_type(self) -> NatType:
        if self._rng.random() < self._natted_fraction:
            return self._rng.choice(self._nat_types)
        return NatType.OPEN

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def assignment(self, node_id: NodeId) -> NatAssignment:
        return self._assignments[node_id]

    def knows(self, node_id: NodeId) -> bool:
        return node_id in self._assignments

    def kind(self, node_id: NodeId) -> NodeKind:
        return self._assignments[node_id].kind

    def public_endpoint(self, node_id: NodeId) -> Endpoint:
        """The directly reachable endpoint of a P-node (error for N-nodes)."""
        assignment = self._assignments[node_id]
        if assignment.kind is not NodeKind.PUBLIC:
            raise ValueError(f"node {node_id} is natted and has no public endpoint")
        return assignment.local_endpoint

    # ------------------------------------------------------------------
    # fabric hooks
    # ------------------------------------------------------------------
    def translate_outbound(
        self, node_id: NodeId, remote: Endpoint, protocol: Protocol, now: float
    ) -> Endpoint:
        """Source endpoint observed by the remote when ``node_id`` sends."""
        assignment = self._assignments[node_id]
        if assignment.device is None:
            return assignment.local_endpoint
        return assignment.device.outbound(
            assignment.local_endpoint, remote, protocol, now
        )

    def outbound_for(
        self, node_id: NodeId, remote: Endpoint, protocol: Protocol, now: float
    ) -> Endpoint | None:
        """``translate_outbound`` with the existence check folded in.

        Returns ``None`` for unknown (departed) senders — the fabric's
        per-send hot path, which would otherwise pay ``knows()`` plus
        ``translate_outbound()`` as two assignment-table lookups.
        """
        if node_id < 0:  # pseudo-node; would wrap as a list index
            return None
        try:
            local = self._local[node_id]
        except IndexError:
            return None
        if local is None:
            return None
        device = self._device[node_id]
        if device is None:
            return local
        return device.outbound(local, remote, protocol, now)

    def resolve_inbound(
        self, dst: Endpoint, source: Endpoint, protocol: Protocol, now: float
    ) -> NodeId | None:
        """Owner node of ``dst``, after NAT filtering; ``None`` if dropped."""
        entry = self._owner.get(dst.host)
        if entry is None:
            return None  # destination departed
        owner, device = entry
        if device is None:
            return owner
        internal = device.inbound(dst.port, source, protocol, now)
        if internal is None:
            return None
        return owner
