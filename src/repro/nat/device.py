"""Message-level emulation of a NAT device.

Follows the RFC 5382/4787 behavioural model the paper's SPLAY extension
implements: association (mapping + filtering) rules are registered on
outbound traffic, expire after a per-protocol lease of inactivity, and
inbound packets are admitted or silently dropped according to the device
type's filtering rule.

Lease defaults follow the Cisco specification cited by the paper:
5 minutes for UDP, 24 hours for TCP.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..net.address import Endpoint, Protocol
from .types import NatType

__all__ = ["NatDevice", "Mapping", "DEFAULT_LEASES"]

DEFAULT_LEASES: dict[Protocol, float] = {
    Protocol.UDP: 300.0,  # 5 minutes
    Protocol.TCP: 86_400.0,  # 24 hours
}


@dataclass
class Mapping:
    """One association rule: internal endpoint <-> allocated external port."""

    internal: Endpoint
    external_port: int
    protocol: Protocol
    expires_at: float
    # Remotes this internal endpoint has sent to through this mapping;
    # consulted by the filtering rule.
    contacted_hosts: set[str] = field(default_factory=set)
    contacted_endpoints: set[Endpoint] = field(default_factory=set)
    # For symmetric NATs the mapping is bound to exactly one remote.
    bound_remote: Endpoint | None = None
    # The external endpoint remotes observe; fixed for the mapping's
    # lifetime, cached so outbound translation need not rebuild it.
    external: Endpoint | None = None


class NatDevice:
    """A single emulated NAT box fronting one or more internal endpoints."""

    def __init__(
        self,
        nat_id: int,
        nat_type: NatType,
        leases: dict[Protocol, float] | None = None,
        first_port: int = 40_000,
    ) -> None:
        if nat_type is NatType.OPEN:
            raise ValueError("OPEN is not a NAT device type")
        self.nat_id = nat_id
        self.nat_type = nat_type
        self.public_host = f"nat-{nat_id}"
        self._leases = dict(DEFAULT_LEASES if leases is None else leases)
        self._ports = itertools.count(first_port)
        # Mapping tables, keyed differently for cone vs symmetric devices.
        self._cone: dict[tuple[Endpoint, Protocol], Mapping] = {}
        self._sym: dict[tuple[Endpoint, Endpoint, Protocol], Mapping] = {}
        self._by_port: dict[tuple[int, Protocol], Mapping] = {}
        # Single-slot caches for the fabric hot path.  A simulated device
        # fronts one internal endpoint talking mostly UDP, so the last-used
        # mapping answers nearly every translate/filter without building a
        # tuple key and hashing into the tables.  The slots are advisory: a
        # miss falls through to the full lookup, and eviction/reset clears
        # them so they can never serve a dead mapping.
        self._out_slot: Mapping | None = None
        self._in_slot: Mapping | None = None
        self.dropped_inbound = 0  # filtered packets, for diagnostics

    # ------------------------------------------------------------------
    def lease(self, protocol: Protocol) -> float:
        return self._leases[protocol]

    def _expired(self, mapping: Mapping, now: float) -> bool:
        return now > mapping.expires_at

    def _evict(self, mapping: Mapping) -> None:
        if self._out_slot is mapping:
            self._out_slot = None
        if self._in_slot is mapping:
            self._in_slot = None
        self._by_port.pop((mapping.external_port, mapping.protocol), None)
        if self.nat_type.is_symmetric:
            assert mapping.bound_remote is not None
            self._sym.pop(
                (mapping.internal, mapping.bound_remote, mapping.protocol), None
            )
        else:
            self._cone.pop((mapping.internal, mapping.protocol), None)

    def _allocate(
        self, internal: Endpoint, remote: Endpoint, protocol: Protocol, now: float
    ) -> Mapping:
        port = next(self._ports)
        mapping = Mapping(
            internal=internal,
            external_port=port,
            protocol=protocol,
            expires_at=now + self.lease(protocol),
            bound_remote=remote if self.nat_type.is_symmetric else None,
            external=Endpoint(self.public_host, port),
        )
        self._by_port[(port, protocol)] = mapping
        if self.nat_type.is_symmetric:
            self._sym[(internal, remote, protocol)] = mapping
        else:
            self._cone[(internal, protocol)] = mapping
        return mapping

    # ------------------------------------------------------------------
    def outbound(
        self, internal: Endpoint, remote: Endpoint, protocol: Protocol, now: float
    ) -> Endpoint:
        """Translate an outgoing packet; registers/refreshes the association.

        Returns the external endpoint the remote will observe as the source.
        """
        m = self._out_slot
        if (
            m is not None
            and m.internal is internal  # topology interns the endpoint object
            and m.protocol is protocol
            and now <= m.expires_at
            and (m.bound_remote is None or m.bound_remote == remote)
        ):
            m.expires_at = now + self._leases[protocol]
            m.contacted_hosts.add(remote.host)
            m.contacted_endpoints.add(remote)
            return m.external
        if self.nat_type.is_symmetric:
            mapping = self._sym.get((internal, remote, protocol))
        else:
            mapping = self._cone.get((internal, protocol))
        if mapping is not None and self._expired(mapping, now):
            self._evict(mapping)
            mapping = None
        if mapping is None:
            mapping = self._allocate(internal, remote, protocol, now)
        mapping.expires_at = now + self.lease(protocol)
        mapping.contacted_hosts.add(remote.host)
        mapping.contacted_endpoints.add(remote)
        external = mapping.external
        if external is None:  # mapping predates the cache (restored state)
            external = mapping.external = Endpoint(self.public_host, mapping.external_port)
        self._out_slot = mapping
        return external

    def inbound(
        self, external_port: int, source: Endpoint, protocol: Protocol, now: float
    ) -> Endpoint | None:
        """Filter an incoming packet.

        Returns the internal endpoint to deliver to, or ``None`` when the
        packet must be silently dropped (no mapping, expired lease, or the
        source fails the type's filtering rule).
        """
        m = self._in_slot
        if (
            m is not None
            and m.external_port == external_port
            and m.protocol is protocol
            and now <= m.expires_at
        ):
            if not self._admits(m, source):
                self.dropped_inbound += 1
                return None
            m.expires_at = now + self._leases[protocol]
            return m.internal
        mapping = self._by_port.get((external_port, protocol))
        if mapping is None:
            self.dropped_inbound += 1
            return None
        if self._expired(mapping, now):
            self._evict(mapping)
            self.dropped_inbound += 1
            return None
        self._in_slot = mapping
        if not self._admits(mapping, source):
            self.dropped_inbound += 1
            return None
        # Established flows keep their association alive (TCP semantics;
        # for UDP this models keep-alive-by-traffic).
        mapping.expires_at = now + self.lease(protocol)
        return mapping.internal

    def _admits(self, mapping: Mapping, source: Endpoint) -> bool:
        if self.nat_type is NatType.FULL_CONE:
            return True
        if self.nat_type is NatType.RESTRICTED_CONE:
            return source.host in mapping.contacted_hosts
        if self.nat_type is NatType.PORT_RESTRICTED_CONE:
            return source in mapping.contacted_endpoints
        # SYMMETRIC: only the bound remote may use this mapping.
        return source == mapping.bound_remote

    # ------------------------------------------------------------------
    def reset_mappings(self) -> int:
        """Forget every association rule (the device rebooted).

        Established flows through this NAT die silently: inbound packets to
        the old external ports are filtered until fresh outbound traffic
        re-opens mappings — on *new* ports, so remotes holding the old
        endpoint keep missing.  Returns the number of rules wiped.
        """
        wiped = len(self._by_port)
        self._cone.clear()
        self._sym.clear()
        self._by_port.clear()
        self._out_slot = None
        self._in_slot = None
        return wiped

    # ------------------------------------------------------------------
    def active_mappings(self, now: float) -> list[Mapping]:
        """Live (non-expired) mappings — used by tests and diagnostics."""
        return [m for m in self._by_port.values() if not self._expired(m, now)]
