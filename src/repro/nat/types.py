"""NAT device taxonomy.

The paper's SPLAY extension emulates "the 4 major types of NAT devices,
(full_cone, restricted_cone, port_restricted_cone, sym)".  The types differ
in two dimensions (RFC 3489 terminology):

- **mapping**: cone NATs reuse one external port per internal endpoint;
  symmetric NATs allocate a fresh external port per (internal, remote) pair,
  which makes the port unpredictable and defeats hole punching.
- **filtering**: which inbound sources may use a mapping.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["NatType", "hole_punching_possible"]


class NatType(Enum):
    """The four emulated NAT behaviours, plus OPEN for P-nodes."""

    OPEN = "open"  # no NAT: public node
    FULL_CONE = "full_cone"
    RESTRICTED_CONE = "restricted_cone"
    PORT_RESTRICTED_CONE = "port_restricted_cone"
    SYMMETRIC = "sym"

    @property
    def is_natted(self) -> bool:
        return self is not NatType.OPEN

    @property
    def is_symmetric(self) -> bool:
        return self is NatType.SYMMETRIC


# The four types deployed "evenly split" in the paper's experiments.
EMULATED_TYPES = (
    NatType.FULL_CONE,
    NatType.RESTRICTED_CONE,
    NatType.PORT_RESTRICTED_CONE,
    NatType.SYMMETRIC,
)


def hole_punching_possible(a: NatType, b: NatType) -> bool:
    """Whether UDP hole punching can connect nodes behind NATs ``a`` and ``b``.

    Standard compatibility matrix (NATCracker [20], Ford et al. [23]):
    cone-to-cone combinations succeed; a symmetric NAT paired with a
    port-restricted cone or another symmetric NAT fails, because the
    symmetric side's per-destination port cannot be predicted by the peer.
    A symmetric NAT paired with a full cone or address-restricted cone still
    works: the cone side's filter does not check the (unpredicted) port.
    Note the paper treats ``sym`` as requiring relays — its traversal stack
    is conservative — so :class:`~repro.nat.traversal.TraversalPolicy` can
    also be configured to force relays for any symmetric endpoint.
    """
    if not a.is_natted or not b.is_natted:
        return True
    if a.is_symmetric and b.is_symmetric:
        return False
    if a.is_symmetric and b is NatType.PORT_RESTRICTED_CONE:
        return False
    if b.is_symmetric and a is NatType.PORT_RESTRICTED_CONE:
        return False
    return True
