"""Churn injection: SPLAY-style scripts and the driver applying them."""

from .script import (
    ChurnDriver,
    ChurnScriptError,
    ConstChurn,
    JoinRamp,
    SetReplacementRatio,
    StopAt,
    parse_script,
)

__all__ = [
    "ChurnDriver",
    "ChurnScriptError",
    "ConstChurn",
    "JoinRamp",
    "SetReplacementRatio",
    "StopAt",
    "parse_script",
]
