"""SPLAY-style churn scripting (Section V-D, Table I).

The paper drives churn with SPLAY's churn module and shows the script::

    from 0s to 30s join 1000
    at 300s set replacement ratio to 100%
    from 300s to 1200s const churn X% each 60s
    at 1200s stop

This module implements a parser for that language and a driver that applies
it to a :class:`~repro.harness.world.World`: ``join`` ramps spawn nodes
uniformly over the window, ``const churn P% each Ts`` kills P% of the
current population every T seconds and (re)spawns ``replacement ratio``
times as many fresh nodes.

Beyond the paper, the language also scripts *partial* failures (executed by
:class:`~repro.faults.injector.FaultInjector`), so Table I-style resilience
scenarios stay one-line declarative::

    from 300s to 600s partition groups a|b   # split, heal at 600s
    at 400s blackhole 5 -> 9                 # directed link failure
    at 420s blackhole 9 -> 5 for 60s         # ... with scheduled healing
    at 500s stall 3% for 120s                # alive but dropping traffic
    at 600s reset nat 10%                    # NAT reboots forget mappings
    at 620s rebind nat 10%                   # NAT rebinds to fresh endpoints
    from 700s to 760s loss 20%               # loss-rate burst
    from 700s to 760s delay 50ms 20%         # bufferbloat window
    from 700s to 760s duplicate 10%          # duplicated datagrams
    from 700s to 760s reorder 10% by 80ms    # held-back minority reorders
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Callable, Union

from ..core.node import WhisperNode
from ..faults.injector import FaultInjector
from ..faults.plan import (
    Blackhole,
    Delay,
    Duplicate,
    FaultDirective,
    LossBurst,
    NatRebind,
    NatReset,
    Partition,
    Reorder,
    Stall,
    is_fault_directive,
)
from ..harness.world import World
from ..net.address import NodeId

__all__ = [
    "JoinRamp",
    "SetReplacementRatio",
    "ConstChurn",
    "StopAt",
    "parse_script",
    "ChurnDriver",
    "ChurnScriptError",
]


class ChurnScriptError(ValueError):
    """Malformed churn script line."""


@dataclass(frozen=True)
class JoinRamp:
    """Spawn ``count`` nodes uniformly over [start, end]."""

    start: float
    end: float
    count: int


@dataclass(frozen=True)
class SetReplacementRatio:
    """Set how many joins replace each kill from ``at`` onwards."""

    at: float
    ratio: float  # 1.0 = 100%


@dataclass(frozen=True)
class ConstChurn:
    """Kill ``percent`` of the population every ``interval`` seconds."""

    start: float
    end: float
    percent: float  # fraction of population churned per event, e.g. 0.01
    interval: float


@dataclass(frozen=True)
class StopAt:
    """Halt all churn activity at ``at``."""

    at: float


Directive = Union[
    JoinRamp, SetReplacementRatio, ConstChurn, StopAt, FaultDirective
]

_DURATION = r"(\d+(?:\.\d+)?)s"
_PERCENT = r"(\d+(?:\.\d+)?)%"
_MILLIS = r"(\d+(?:\.\d+)?)ms"


def _percent_fraction(raw: str, what: str) -> float:
    value = float(raw) / 100.0
    if not 0.0 <= value <= 1.0:
        raise ChurnScriptError(f"{what} percentage out of range: {raw}%")
    return value


_PATTERNS: list[tuple[re.Pattern, Callable[[re.Match], Directive]]] = [
    (
        re.compile(rf"^from {_DURATION} to {_DURATION} join (\d+)$"),
        lambda m: JoinRamp(float(m[1]), float(m[2]), int(m[3])),
    ),
    (
        re.compile(rf"^at {_DURATION} set replacement ratio to (\d+(?:\.\d+)?)%$"),
        lambda m: SetReplacementRatio(float(m[1]), float(m[2]) / 100.0),
    ),
    (
        re.compile(
            rf"^from {_DURATION} to {_DURATION} const churn "
            rf"{_PERCENT} each {_DURATION}$"
        ),
        lambda m: ConstChurn(
            float(m[1]), float(m[2]),
            _percent_fraction(m[3], "const churn"), float(m[4]),
        ),
    ),
    (re.compile(rf"^at {_DURATION} stop$"), lambda m: StopAt(float(m[1]))),
    # ---- fault directives (executed by a FaultInjector) ---------------
    (
        re.compile(
            rf"^from {_DURATION} to {_DURATION} partition groups "
            rf"([a-z0-9_]+(?:\|[a-z0-9_]+)+)$"
        ),
        lambda m: Partition(
            float(m[1]), float(m[2]), group_count=len(m[3].split("|"))
        ),
    ),
    (
        re.compile(
            rf"^at {_DURATION} blackhole (\d+) -> (\d+)(?: for {_DURATION})?$"
        ),
        lambda m: Blackhole(
            float(m[1]), int(m[2]), int(m[3]),
            duration=float(m[4]) if m[4] is not None else None,
        ),
    ),
    (
        re.compile(rf"^at {_DURATION} stall {_PERCENT} for {_DURATION}$"),
        lambda m: Stall(
            float(m[1]), _percent_fraction(m[2], "stall"), float(m[3])
        ),
    ),
    (
        re.compile(rf"^at {_DURATION} reset nat {_PERCENT}$"),
        lambda m: NatReset(float(m[1]), _percent_fraction(m[2], "reset nat")),
    ),
    (
        re.compile(rf"^from {_DURATION} to {_DURATION} loss {_PERCENT}$"),
        lambda m: LossBurst(
            float(m[1]), float(m[2]), _percent_fraction(m[3], "loss")
        ),
    ),
    # ---- transit shaping + live rebinds (PR 7) ------------------------
    (
        re.compile(
            rf"^from {_DURATION} to {_DURATION} delay {_MILLIS}(?: {_PERCENT})?$"
        ),
        lambda m: Delay(
            float(m[1]), float(m[2]), delay=float(m[3]) / 1000.0,
            rate=_percent_fraction(m[4], "delay") if m[4] is not None else 1.0,
        ),
    ),
    (
        re.compile(rf"^from {_DURATION} to {_DURATION} duplicate {_PERCENT}$"),
        lambda m: Duplicate(
            float(m[1]), float(m[2]), _percent_fraction(m[3], "duplicate")
        ),
    ),
    (
        re.compile(
            rf"^from {_DURATION} to {_DURATION} reorder {_PERCENT} by {_MILLIS}$"
        ),
        lambda m: Reorder(
            float(m[1]), float(m[2]),
            _percent_fraction(m[3], "reorder"), delay=float(m[4]) / 1000.0,
        ),
    ),
    (
        re.compile(rf"^at {_DURATION} rebind nat {_PERCENT}$"),
        lambda m: NatRebind(float(m[1]), _percent_fraction(m[2], "rebind nat")),
    ),
]


def parse_script(text: str) -> list[Directive]:
    """Parse a churn script; raises :class:`ChurnScriptError` on bad lines."""
    directives: list[Directive] = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip().lower()
        if not line:
            continue
        for pattern, build in _PATTERNS:
            match = pattern.match(line)
            if match:
                try:
                    directives.append(build(match))
                except ValueError as exc:  # dataclass validation
                    raise ChurnScriptError(
                        f"invalid churn directive {raw_line!r}: {exc}"
                    ) from exc
                break
        else:
            raise ChurnScriptError(f"cannot parse churn directive: {raw_line!r}")
    return directives


@dataclass
class ChurnStats:
    """Totals of what the driver did."""

    joined: int = 0
    killed: int = 0
    churn_events: int = 0


class ChurnDriver:
    """Applies a churn script to a world.

    ``on_join`` runs for every spawned node (e.g. to subscribe it to a
    private group); ``on_kill`` runs just before a node is removed.  Nodes
    named in ``protected`` (e.g. group leaders or introducers) are never
    selected for killing, mirroring how the paper keeps enough entry points
    alive to measure route availability rather than bootstrap failures.

    Fault directives in the script are handed to a
    :class:`~repro.faults.injector.FaultInjector` — the one passed in, or a
    fresh one created on demand (exposed as :attr:`injector`).  ``stop``
    halts churn *and* cancels pending fault activations, healing anything
    still active.
    """

    def __init__(
        self,
        world: World,
        directives: list[Directive],
        rng: random.Random | None = None,
        on_join: Callable[[WhisperNode], None] | None = None,
        on_kill: Callable[[NodeId], None] | None = None,
        protected: set[NodeId] | None = None,
        injector: FaultInjector | None = None,
    ) -> None:
        self.world = world
        self.directives = list(directives)
        self._rng = rng if rng is not None else world.registry.stream("churn")
        self._on_join = on_join
        self._on_kill = on_kill
        self.protected: set[NodeId] = set(protected or ())
        self.replacement_ratio = 1.0
        self.stopped = False
        self.stats = ChurnStats()
        self.injector = injector
        if self.injector is None and any(
            is_fault_directive(d) for d in self.directives
        ):
            self.injector = FaultInjector(world)
        self._pending_events: list[object] = []
        self._schedule_all()

    # ------------------------------------------------------------------
    def _schedule_all(self) -> None:
        # Script times are relative to the moment the driver is created, so
        # "from 0s ..." works no matter how long the world warmed up first.
        sim = self.world.sim
        base = sim.now
        for directive in self.directives:
            if is_fault_directive(directive):
                assert self.injector is not None
                self.injector.schedule(directive, base)
            elif isinstance(directive, JoinRamp):
                span = max(directive.end - directive.start, 0.0)
                for i in range(directive.count):
                    offset = directive.start + span * (i / max(directive.count, 1))
                    self._pending_events.append(
                        sim.schedule_at(base + offset, self._join_one)
                    )
            elif isinstance(directive, SetReplacementRatio):
                sim.schedule_at(
                    base + directive.at,
                    lambda ratio=directive.ratio: self._set_ratio(ratio),
                )
            elif isinstance(directive, ConstChurn):
                t = directive.start
                while t < directive.end:
                    self._pending_events.append(
                        sim.schedule_at(
                            base + t,
                            lambda pct=directive.percent: self._churn_event(pct),
                        )
                    )
                    t += directive.interval
            elif isinstance(directive, StopAt):
                sim.schedule_at(base + directive.at, self._stop)

    def _set_ratio(self, ratio: float) -> None:
        self.replacement_ratio = ratio

    def _stop(self) -> None:
        self.stopped = True
        # Cancel queued join/churn events outright (belt and braces on top
        # of the ``stopped`` guards) and stand down any fault schedule.
        for event in self._pending_events:
            event.cancel()  # type: ignore[attr-defined]
        self._pending_events.clear()
        if self.injector is not None:
            self.injector.cancel_pending()

    def _join_one(self) -> None:
        if self.stopped:
            return
        node = self.world.spawn_started()
        self.stats.joined += 1
        if self._on_join is not None:
            self._on_join(node)

    def _churn_event(self, percent: float) -> None:
        if self.stopped:
            return
        self.stats.churn_events += 1
        population = [
            n for n in self.world.alive_nodes() if n.node_id not in self.protected
        ]
        kill_count = round(len(self.world.alive_nodes()) * percent)
        kill_count = min(kill_count, len(population))
        victims = self._rng.sample(population, kill_count) if kill_count else []
        for victim in victims:
            if self._on_kill is not None:
                self._on_kill(victim.node_id)
            self.world.kill_node(victim.node_id)
            self.stats.killed += 1
        arrivals = round(kill_count * self.replacement_ratio)
        for _ in range(arrivals):
            self._join_one()
