"""SPLAY-style churn scripting (Section V-D, Table I).

The paper drives churn with SPLAY's churn module and shows the script::

    from 0s to 30s join 1000
    at 300s set replacement ratio to 100%
    from 300s to 1200s const churn X% each 60s
    at 1200s stop

This module implements a parser for that language and a driver that applies
it to a :class:`~repro.harness.world.World`: ``join`` ramps spawn nodes
uniformly over the window, ``const churn P% each Ts`` kills P% of the
current population every T seconds and (re)spawns ``replacement ratio``
times as many fresh nodes.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Callable, Union

from ..core.node import WhisperNode
from ..harness.world import World
from ..net.address import NodeId

__all__ = [
    "JoinRamp",
    "SetReplacementRatio",
    "ConstChurn",
    "StopAt",
    "parse_script",
    "ChurnDriver",
    "ChurnScriptError",
]


class ChurnScriptError(ValueError):
    """Malformed churn script line."""


@dataclass(frozen=True)
class JoinRamp:
    """Spawn ``count`` nodes uniformly over [start, end]."""

    start: float
    end: float
    count: int


@dataclass(frozen=True)
class SetReplacementRatio:
    """Set how many joins replace each kill from ``at`` onwards."""

    at: float
    ratio: float  # 1.0 = 100%


@dataclass(frozen=True)
class ConstChurn:
    """Kill ``percent`` of the population every ``interval`` seconds."""

    start: float
    end: float
    percent: float  # fraction of population churned per event, e.g. 0.01
    interval: float


@dataclass(frozen=True)
class StopAt:
    """Halt all churn activity at ``at``."""

    at: float


Directive = Union[JoinRamp, SetReplacementRatio, ConstChurn, StopAt]

_DURATION = r"(\d+(?:\.\d+)?)s"
_PATTERNS: list[tuple[re.Pattern, Callable[[re.Match], Directive]]] = [
    (
        re.compile(rf"^from {_DURATION} to {_DURATION} join (\d+)$"),
        lambda m: JoinRamp(float(m[1]), float(m[2]), int(m[3])),
    ),
    (
        re.compile(rf"^at {_DURATION} set replacement ratio to (\d+(?:\.\d+)?)%$"),
        lambda m: SetReplacementRatio(float(m[1]), float(m[2]) / 100.0),
    ),
    (
        re.compile(
            rf"^from {_DURATION} to {_DURATION} const churn "
            rf"(\d+(?:\.\d+)?)% each {_DURATION}$"
        ),
        lambda m: ConstChurn(float(m[1]), float(m[2]), float(m[3]) / 100.0, float(m[4])),
    ),
    (re.compile(rf"^at {_DURATION} stop$"), lambda m: StopAt(float(m[1]))),
]


def parse_script(text: str) -> list[Directive]:
    """Parse a churn script; raises :class:`ChurnScriptError` on bad lines."""
    directives: list[Directive] = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip().lower()
        if not line:
            continue
        for pattern, build in _PATTERNS:
            match = pattern.match(line)
            if match:
                directives.append(build(match))
                break
        else:
            raise ChurnScriptError(f"cannot parse churn directive: {raw_line!r}")
    return directives


@dataclass
class ChurnStats:
    """Totals of what the driver did."""

    joined: int = 0
    killed: int = 0
    churn_events: int = 0


class ChurnDriver:
    """Applies a churn script to a world.

    ``on_join`` runs for every spawned node (e.g. to subscribe it to a
    private group); ``on_kill`` runs just before a node is removed.  Nodes
    named in ``protected`` (e.g. group leaders or introducers) are never
    selected for killing, mirroring how the paper keeps enough entry points
    alive to measure route availability rather than bootstrap failures.
    """

    def __init__(
        self,
        world: World,
        directives: list[Directive],
        rng: random.Random | None = None,
        on_join: Callable[[WhisperNode], None] | None = None,
        on_kill: Callable[[NodeId], None] | None = None,
        protected: set[NodeId] | None = None,
    ) -> None:
        self.world = world
        self.directives = list(directives)
        self._rng = rng if rng is not None else world.registry.stream("churn")
        self._on_join = on_join
        self._on_kill = on_kill
        self.protected: set[NodeId] = set(protected or ())
        self.replacement_ratio = 1.0
        self.stopped = False
        self.stats = ChurnStats()
        self._schedule_all()

    # ------------------------------------------------------------------
    def _schedule_all(self) -> None:
        # Script times are relative to the moment the driver is created, so
        # "from 0s ..." works no matter how long the world warmed up first.
        sim = self.world.sim
        base = sim.now
        for directive in self.directives:
            if isinstance(directive, JoinRamp):
                span = max(directive.end - directive.start, 0.0)
                for i in range(directive.count):
                    offset = directive.start + span * (i / max(directive.count, 1))
                    sim.schedule_at(base + offset, self._join_one)
            elif isinstance(directive, SetReplacementRatio):
                sim.schedule_at(
                    base + directive.at,
                    lambda ratio=directive.ratio: self._set_ratio(ratio),
                )
            elif isinstance(directive, ConstChurn):
                t = directive.start
                while t < directive.end:
                    sim.schedule_at(
                        base + t,
                        lambda pct=directive.percent: self._churn_event(pct),
                    )
                    t += directive.interval
            elif isinstance(directive, StopAt):
                sim.schedule_at(base + directive.at, self._stop)

    def _set_ratio(self, ratio: float) -> None:
        self.replacement_ratio = ratio

    def _stop(self) -> None:
        self.stopped = True

    def _join_one(self) -> None:
        if self.stopped:
            return
        node = self.world.spawn_started()
        self.stats.joined += 1
        if self._on_join is not None:
            self._on_join(node)

    def _churn_event(self, percent: float) -> None:
        if self.stopped:
            return
        self.stats.churn_events += 1
        population = [
            n for n in self.world.alive_nodes() if n.node_id not in self.protected
        ]
        kill_count = round(len(self.world.alive_nodes()) * percent)
        kill_count = min(kill_count, len(population))
        victims = self._rng.sample(population, kill_count) if kill_count else []
        for victim in victims:
            if self._on_kill is not None:
                self._on_kill(victim.node_id)
            self.world.kill_node(victim.node_id)
            self.stats.killed += 1
        arrivals = round(kill_count * self.replacement_ratio)
        for _ in range(arrivals):
            self._join_one()
