"""Node identities and network endpoints.

The simulation distinguishes a node's *identity* (:class:`NodeId`, stable for
the node's lifetime) from the *endpoints* packets travel between.  A public
node (P-node) listens on a globally reachable endpoint.  A natted node
(N-node) has a private endpoint; the outside world only ever sees external
endpoints allocated by its NAT device.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["NodeId", "Endpoint", "Protocol", "NodeKind"]


NodeId = int
"""Opaque, unique, stable node identifier."""


class Protocol(Enum):
    """Transport protocol — NAT lease times and hole-punching odds differ."""

    UDP = "udp"
    TCP = "tcp"


class NodeKind(Enum):
    """Public (directly reachable) vs natted node."""

    PUBLIC = "P"
    NATTED = "N"


@dataclass(frozen=True, slots=True)
class Endpoint:
    """An (host, port) pair.

    ``host`` strings are synthetic: ``"pub-<id>"`` for public hosts,
    ``"nat-<id>"`` for NAT devices' public interfaces and ``"priv-<id>"`` for
    private addresses behind a NAT.  Equality/hash make endpoints usable as
    dict keys for NAT mapping tables.
    """

    host: str
    port: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.host}:{self.port}"

    @property
    def is_private(self) -> bool:
        """True for addresses only valid behind a NAT device."""
        return self.host.startswith("priv-")
