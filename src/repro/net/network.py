"""The network fabric: NAT-aware, latency-modelled message delivery.

This is the lowest substrate the protocol stack runs on.  A send goes
through the following pipeline::

    sender --(NAT egress translation)--> wire --(latency, loss)-->
        destination endpoint --(NAT ingress filtering)--> receiver handler

Bandwidth is charged per message (upload at the sender always, download at
the receiver only on successful delivery), and link observers are notified
of everything that touches the wire — including packets later dropped by an
ingress filter, since a wiretap sees those too.
"""

from __future__ import annotations

import itertools
import zlib
from functools import partial
from typing import TYPE_CHECKING, Callable, Protocol as TypingProtocol

from ..core.lru import LruCache
from ..sim.engine import Simulator
from ..telemetry import NULL_TELEMETRY

if TYPE_CHECKING:  # avoid a runtime net <-> nat import cycle
    from ..nat.topology import NatTopology
    from ..telemetry import Telemetry
from .address import Endpoint, NodeId, Protocol
from .bandwidth import BandwidthAccountant
from .latency import LatencyModel
from .message import Message
from .observer import LinkObserver, ObservedPacket

__all__ = ["Network", "NetworkStats", "FaultHook"]

Handler = Callable[[Message], None]

# LRU bounds for the fabric's memoization caches.  Sized to hold every
# live node of the largest experiment (`scale` runs 5,000) with headroom,
# so eviction only kicks in on very long churny runs where hosts are
# minted indefinitely.
OWNER_HINT_CACHE_SIZE = 16_384
ENCODE_CACHE_SIZE = 8_192


class FaultHook(TypingProtocol):
    """Interface a fault injector exposes to the fabric.

    Both methods return the reason the message is swallowed (a short label
    used in drop accounting) or ``None`` to let it pass.  The fabric counts
    swallowed messages as losses — from the protocols' perspective an
    injected fault is indistinguishable from network loss, which is the
    point: recovery must come from the protocol layers, not from the test
    harness knowing better.
    """

    def on_send(self, src: NodeId, dst_hint: NodeId) -> str | None: ...

    def on_deliver(self, src: NodeId, owner: NodeId) -> str | None: ...


class NetworkStats:
    """Fabric-wide counters."""

    __slots__ = ("sent", "delivered", "lost", "filtered", "no_handler")

    def __init__(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.lost = 0  # dropped by the loss model
        self.filtered = 0  # dropped by a NAT ingress filter or dead endpoint
        self.no_handler = 0  # owner resolved but node already departed


class Network:
    """Connects registered nodes through the NAT topology and latency model."""

    def __init__(
        self,
        sim: Simulator,
        topology: "NatTopology",
        latency: LatencyModel,
        accountant: BandwidthAccountant | None = None,
        telemetry: "Telemetry | None" = None,
        wire_mode: str = "off",
    ) -> None:
        self._sim = sim
        self._topology = topology
        self._latency = latency
        self.accountant = accountant if accountant is not None else BandwidthAccountant()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._handlers: dict[NodeId, Handler] = {}
        self._observers: list[LinkObserver] = []
        self._fault_hook: FaultHook | None = None
        self.stats = NetworkStats()
        # Per-network message ids: a second Network (second World) in the
        # same process draws from its own sequence, keeping trace exports
        # independent of unrelated activity.
        self._msg_ids = itertools.count()
        # host -> owner id; hosts are stable for a node's lifetime, so this
        # memoizes the parse/crc32 in _owner_hint.  Bounded LRU: long churny
        # runs mint fresh hosts forever, and before PR 5 this dict grew with
        # every host ever seen.
        self._owner_hints = LruCache(OWNER_HINT_CACHE_SIZE)
        # Latency-model memoization (e.g. PlanetLab load factors / pair base
        # RTTs), exposed so their hit/miss counters reach telemetry.
        self._latency_caches = latency.caches()
        self.wire_audit = None
        self.encode_cache: LruCache | None = None
        self._wire = None  # lazily-imported repro.wire module
        self.set_wire_mode(wire_mode)

    def set_wire_mode(self, mode: str) -> None:
        """Select how the binary codec participates in the sim fabric.

        - ``"off"`` — payloads travel as Python objects, sizes are the
          protocol layers' ``WireSizes`` estimates (the historical mode);
        - ``"verify"`` — every send is encoded to a wire frame and decoded
          back (loopback codec pass-through); accounting keeps the
          *estimated* sizes, so traces stay comparable with ``"off"``
          while measured frame sizes accumulate in :attr:`wire_audit`;
        - ``"measured"`` — bandwidth accounting and latency use the exact
          *encoded* frame size, making every byte count a measurement
          instead of a model.  Sizes come from the codec's size-accumulator
          path (no frame is built), so like ``"off"`` the receiver sees the
          sender's payload object; ``"verify"`` is the mode that exercises
          the full encode→decode loop.
        """
        if mode not in ("off", "verify", "measured"):
            raise ValueError(f"unknown wire mode: {mode!r}")
        if mode != "off" and self._wire is None:
            # Imported lazily: repro.wire registers codecs for dataclasses
            # across nat/, pss/, core/, which themselves import this module.
            from .. import wire as _wire
            from ..wire.audit import WireAudit

            self._wire = _wire
            self.wire_audit = WireAudit()
            # Hot immutable structs (descriptors, piggybacked public keys)
            # are re-encoded on every gossip cycle; the LRU turns those into
            # one dict hit each.
            self.encode_cache = LruCache(ENCODE_CACHE_SIZE)
        self._wire_mode = mode

    @property
    def wire_mode(self) -> str:
        return self._wire_mode

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def attach(self, node_id: NodeId, handler: Handler) -> None:
        """Register the receive handler for a (topology-registered) node."""
        if not self._topology.knows(node_id):
            raise ValueError(f"node {node_id} not in the NAT topology")
        self._handlers[node_id] = handler

    def detach(self, node_id: NodeId) -> None:
        """Unregister a node: in-flight messages to it will be dropped."""
        self._handlers.pop(node_id, None)

    def is_attached(self, node_id: NodeId) -> bool:
        return node_id in self._handlers

    @property
    def topology(self) -> "NatTopology":
        return self._topology

    def add_observer(self, observer: LinkObserver) -> None:
        self._observers.append(observer)

    def set_fault_hook(self, hook: FaultHook | None) -> None:
        """Install (or clear) the fault injector consulted on every message."""
        self._fault_hook = hook

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def send(
        self,
        src_node: NodeId,
        dst: Endpoint,
        kind: str,
        payload: object,
        size_bytes: int,
        protocol: Protocol = Protocol.UDP,
        category: str = "other",
    ) -> None:
        """Emit one message.  Fire-and-forget: losses are silent, as on UDP.

        A send from a node that already departed (e.g. a mix killed between
        receiving an onion and its delayed forward) is dropped silently: the
        dead process cannot emit packets.
        """
        sim = self._sim
        visible_src = self._topology.outbound_for(src_node, dst, protocol, sim.now)
        if visible_src is None:  # sender already departed
            self.stats.filtered += 1
            return
        if self._wire_mode != "off":
            if self._wire_mode == "verify":
                # Loopback codec pass-through: the payload the receiver sees
                # has been through encode->decode, so any value the codec
                # cannot carry fails here, in the sim, not on a live socket.
                frame = self._wire.encode_message(kind, payload, self.encode_cache)
                self.wire_audit.record(kind, size_bytes, len(frame))
                payload = self._wire.decode_message(frame).payload
            else:
                # measured: exact frame size from the size accumulator; no
                # frame bytes, no CRC, payload delivered as in "off" mode.
                measured = self._wire.encoded_size(kind, payload, self.encode_cache)
                self.wire_audit.record(kind, size_bytes, measured)
                size_bytes = measured
        self.stats.sent += 1
        self.accountant.record(src_node, -1, size_bytes, category)  # upload side
        tel = self.telemetry
        if tel.enabled:
            tel.counter("net.msgs_sent", node=src_node, layer="net").inc()
            tel.counter("net.up_bytes", node=src_node, layer="net").inc(size_bytes)
            tel.counter("net.kind_msgs", kind=kind, layer="net").inc()
            self._publish_cache_counters(tel)
        hint = self._owner_hints.get(dst.host)
        if hint is None:  # cold path: first message towards this host
            hint = self._owner_hint(dst)
        if self._fault_hook is not None:
            reason = self._fault_hook.on_send(src_node, hint)
            if reason is not None:
                self.stats.lost += 1
                tel.counter("net.lost", layer="net").inc()
                self._observe(
                    src_node, None, visible_src, dst, kind, payload, size_bytes
                )
                return
        latency = self._latency
        if latency.is_lost(src_node, hint):
            self.stats.lost += 1
            tel.counter("net.lost", layer="net").inc()
            self._observe(src_node, None, visible_src, dst, kind, payload, size_bytes)
            return
        extra_delay = 0.0
        copies = 1
        hook = self._fault_hook
        if hook is not None and getattr(hook, "shaping_active", False):
            # Transit shaping (delay/duplicate/reorder windows): only
            # consulted while such a directive is live, so plans without
            # shaping keep traces byte-identical with pre-shaping runs.
            extra_delay, copies = hook.on_transit(src_node, hint)
        message = Message(
            visible_src, dst, kind, payload, size_bytes, protocol,
            next(self._msg_ids),
        )
        transit = latency.delay(src_node, hint, size_bytes) + extra_delay
        for _ in range(copies):
            sim.schedule(
                transit,
                partial(self._deliver, src_node, message, category),
            )

    def _deliver(self, src_node: NodeId, message: Message, category: str) -> None:
        now = self._sim.now
        owner = self._topology.resolve_inbound(
            message.dst, message.src, message.protocol, now
        )
        tel = self.telemetry
        if owner is None:
            self.stats.filtered += 1
            tel.counter("net.filtered", layer="net").inc()
            self._observe(
                src_node, None, message.src, message.dst, message.kind,
                message.payload, message.size_bytes,
            )
            return
        if self._fault_hook is not None:
            # Faults that arose while the message was in flight (a partition
            # forming, a node stalling) still swallow it on arrival.
            reason = self._fault_hook.on_deliver(src_node, owner)
            if reason is not None:
                self.stats.lost += 1
                tel.counter("net.lost", layer="net").inc()
                self._observe(
                    src_node, None, message.src, message.dst, message.kind,
                    message.payload, message.size_bytes,
                )
                return
        handler = self._handlers.get(owner)
        self._observe(
            src_node, owner, message.src, message.dst, message.kind,
            message.payload, message.size_bytes,
        )
        if handler is None:
            self.stats.no_handler += 1
            tel.counter("net.no_handler", layer="net").inc()
            return
        self.stats.delivered += 1
        self.accountant.record(-1, owner, message.size_bytes, category)
        if tel.enabled:
            tel.counter("net.msgs_delivered", node=owner, layer="net").inc()
            tel.counter("net.down_bytes", node=owner, layer="net").inc(
                message.size_bytes
            )
            tel.counter(
                "net.link.msgs", src=src_node, dst=owner, layer="net"
            ).inc()
            tel.counter(
                "net.link.bytes", src=src_node, dst=owner, layer="net"
            ).inc(message.size_bytes)
        handler(message)

    # ------------------------------------------------------------------
    def _owner_hint(self, dst: Endpoint) -> NodeId:
        """Best-effort owner guess for latency sampling.

        Latency models key node pairs by id; when the destination endpoint
        cannot be attributed (departed node) any stable key works, so we hash
        the host name.  The hash must be stable *across processes*: Python's
        ``hash(str)`` is salted per interpreter (PYTHONHASHSEED), which would
        make same-seed runs sample different latencies for departed-node
        endpoints and break the telemetry exporter's byte-identical-trace
        guarantee — so we use crc32.
        """
        host = dst.host
        # peek, not get: send() already counted this lookup as a miss.
        hint = self._owner_hints.peek(host)
        if hint is not None:
            return hint
        hint = -1
        if host.startswith(("pub-", "nat-", "priv-")):
            try:
                hint = int(host.split("-", 1)[1])
            except ValueError:
                hint = -1
        if hint < 0:
            hint = zlib.crc32(host.encode()) & 0x7FFFFFFF
        self._owner_hints.put(host, hint)
        return hint

    def _publish_cache_counters(self, tel: "Telemetry") -> None:
        """Flush cache hit/miss deltas into telemetry counters.

        Owner-hint and latency-model caches behave identically in every
        wire mode, so their counters never perturb off-vs-verify trace
        comparisons; ``wire.encode.*`` exists only when the codec runs and
        is codec-layer bookkeeping by definition.
        """
        self._owner_hints.publish(tel, "net.owner_hint", layer="net")
        for name, cache in self._latency_caches.items():
            cache.publish(tel, name, layer="net")
        if self.encode_cache is not None and self._wire_mode != "off":
            self.encode_cache.publish(tel, "wire.encode", layer="wire")

    def _observe(
        self,
        sender: NodeId,
        receiver: NodeId | None,
        src: Endpoint,
        dst: Endpoint,
        kind: str,
        payload: object,
        size_bytes: int,
    ) -> None:
        if not self._observers:
            return
        packet: ObservedPacket | None = None
        for observer in self._observers:
            if observer.wants(sender, receiver):
                if packet is None:
                    packet = ObservedPacket(
                        time=self._sim.now,
                        sender=sender,
                        receiver=receiver,
                        src_endpoint=src,
                        dst_endpoint=dst,
                        kind=kind,
                        payload=payload,
                        size_bytes=size_bytes,
                    )
                observer.record(packet)
