"""The network fabric: NAT-aware, latency-modelled message delivery.

This is the lowest substrate the protocol stack runs on.  A send goes
through the following pipeline::

    sender --(NAT egress translation)--> wire --(latency, loss)-->
        destination endpoint --(NAT ingress filtering)--> receiver handler

Bandwidth is charged per message (upload at the sender always, download at
the receiver only on successful delivery), and link observers are notified
of everything that touches the wire — including packets later dropped by an
ingress filter, since a wiretap sees those too.

The per-message pipeline is *compiled*: ``send`` and ``_deliver`` are
generated with ``exec`` (the wire codec's fast-path idiom) and specialized
on the fabric configuration — wire mode, telemetry on/off, fault hook,
observers, latency model.  Branches for disabled features are omitted from
the bytecode instead of tested per message, and all per-node state resolves
through the struct-of-arrays tables the NAT topology and bandwidth
accountant maintain (dense lists indexed by node id) rather than per-node
dicts and objects.  Reconfiguring the fabric (``set_wire_mode``,
``set_fault_hook``, ``add_observer``) recompiles; the generated code binds
the backing lists/dicts by identity, which is why those structures are
grown and cleared in place everywhere.  The compiled paths replicate the
uncompiled pipeline's RNG draws, counter updates and schedule order
exactly — traces are byte-compared against pre-compilation runs.
"""

from __future__ import annotations

import heapq
import itertools
import zlib
from functools import partial
from typing import TYPE_CHECKING, Callable, Protocol as TypingProtocol

from ..core.lru import LruCache
from ..sim.engine import Event, SimulationError, Simulator
from ..telemetry import NULL_TELEMETRY

if TYPE_CHECKING:  # avoid a runtime net <-> nat import cycle
    from ..nat.topology import NatTopology
    from ..telemetry import Telemetry
from .address import Endpoint, NodeId, Protocol
from .bandwidth import BandwidthAccountant
from .latency import LatencyModel
from .message import Message
from .observer import LinkObserver, ObservedPacket

__all__ = ["Network", "NetworkStats", "FaultHook"]

Handler = Callable[[Message], None]

# Floors for the fabric's memoization caches.  The effective bound is
# derived from world size as nodes attach (see Network.attach): hard caps
# sized for the 5,000-node `scale` run thrashed every cycle at 100k nodes.
# Below the floor the bounds match the historical constants exactly, so
# small-world traces are unaffected.
OWNER_HINT_CACHE_FLOOR = 16_384
ENCODE_CACHE_FLOOR = 8_192


class FaultHook(TypingProtocol):
    """Interface a fault injector exposes to the fabric.

    Both methods return the reason the message is swallowed (a short label
    used in drop accounting) or ``None`` to let it pass.  The fabric counts
    swallowed messages as losses — from the protocols' perspective an
    injected fault is indistinguishable from network loss, which is the
    point: recovery must come from the protocol layers, not from the test
    harness knowing better.
    """

    def on_send(self, src: NodeId, dst_hint: NodeId) -> str | None: ...

    def on_deliver(self, src: NodeId, owner: NodeId) -> str | None: ...


class NetworkStats:
    """Fabric-wide counters."""

    __slots__ = ("sent", "delivered", "lost", "filtered", "no_handler")

    def __init__(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.lost = 0  # dropped by the loss model
        self.filtered = 0  # dropped by a NAT ingress filter or dead endpoint
        self.no_handler = 0  # owner resolved but node already departed


class Network:
    """Connects registered nodes through the NAT topology and latency model."""

    def __init__(
        self,
        sim: Simulator,
        topology: "NatTopology",
        latency: LatencyModel,
        accountant: BandwidthAccountant | None = None,
        telemetry: "Telemetry | None" = None,
        wire_mode: str = "off",
    ) -> None:
        self._sim = sim
        self._topology = topology
        self._latency = latency
        self.accountant = accountant if accountant is not None else BandwidthAccountant()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._handlers: dict[NodeId, Handler] = {}
        # Dense handler table mirroring _handlers, indexed by node id — the
        # delivery path's owner lookup.  Grown in place (compiled code binds
        # the list object).
        self._handler_arr: list[Handler | None] = []
        self._observers: list[LinkObserver] = []
        self._fault_hook: FaultHook | None = None
        self._foreign_router: Callable[[NodeId, Message, str, float], None] | None = None
        self.stats = NetworkStats()
        # Per-network message ids: a second Network (second World) in the
        # same process draws from its own sequence, keeping trace exports
        # independent of unrelated activity.
        self._msg_ids = itertools.count()
        # host -> owner id; hosts are stable for a node's lifetime, so this
        # memoizes the parse/crc32 in _owner_hint.  Bounded (long churny
        # runs mint fresh hosts forever); the bound grows with world size.
        self._owner_hints = LruCache(OWNER_HINT_CACHE_FLOOR)
        # Latency-model memoization (e.g. PlanetLab load factors / pair base
        # RTTs), exposed so their hit/miss counters reach telemetry.
        self._latency_caches = latency.caches()
        self.wire_audit = None
        self.encode_cache: LruCache | None = None
        self._wire = None  # lazily-imported repro.wire module
        self.set_wire_mode(wire_mode)

    def set_wire_mode(self, mode: str) -> None:
        """Select how the binary codec participates in the sim fabric.

        - ``"off"`` — payloads travel as Python objects, sizes are the
          protocol layers' ``WireSizes`` estimates (the historical mode);
        - ``"verify"`` — every send is encoded to a wire frame and decoded
          back (loopback codec pass-through); accounting keeps the
          *estimated* sizes, so traces stay comparable with ``"off"``
          while measured frame sizes accumulate in :attr:`wire_audit`;
        - ``"measured"`` — bandwidth accounting and latency use the exact
          *encoded* frame size, making every byte count a measurement
          instead of a model.  Sizes come from the codec's size-accumulator
          path (no frame is built), so like ``"off"`` the receiver sees the
          sender's payload object; ``"verify"`` is the mode that exercises
          the full encode→decode loop.
        """
        if mode not in ("off", "verify", "measured"):
            raise ValueError(f"unknown wire mode: {mode!r}")
        if mode != "off" and self._wire is None:
            # Imported lazily: repro.wire registers codecs for dataclasses
            # across nat/, pss/, core/, which themselves import this module.
            from .. import wire as _wire
            from ..wire.audit import WireAudit

            self._wire = _wire
            self.wire_audit = WireAudit()
            # Hot immutable structs (descriptors, piggybacked public keys)
            # are re-encoded on every gossip cycle; the LRU turns those into
            # one dict hit each.
            self.encode_cache = LruCache(
                max(ENCODE_CACHE_FLOOR, 2 * len(self._handlers))
            )
        self._wire_mode = mode
        self._recompile()

    @property
    def wire_mode(self) -> str:
        return self._wire_mode

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def attach(self, node_id: NodeId, handler: Handler) -> None:
        """Register the receive handler for a (topology-registered) node."""
        if not self._topology.knows(node_id):
            raise ValueError(f"node {node_id} not in the NAT topology")
        self._handlers[node_id] = handler
        arr = self._handler_arr
        if node_id >= len(arr):
            arr.extend([None] * (node_id + 1 - len(arr)))
        arr[node_id] = handler
        # Derive cache bounds from world size so eviction stays a
        # churny-run safeguard rather than a steady-state thrash at scale.
        # Monotonic: bounds only grow, so behaviour below the floor — and
        # hence every historical trace — is unchanged.
        hint_bound = 4 * len(self._handlers)
        if hint_bound > self._owner_hints.capacity:
            self._owner_hints.capacity = hint_bound
        cache = self.encode_cache
        if cache is not None:
            encode_bound = max(ENCODE_CACHE_FLOOR, 2 * len(self._handlers))
            if encode_bound > cache.capacity:
                cache.capacity = encode_bound

    def reserve_owner_hints(self, expected_hosts: int) -> None:
        """Monotonically raise the owner-hint bound for a known host space.

        ``attach`` derives the bound from *locally attached* handlers,
        which undercounts for a sharded world: every partition's fabric
        sends to the whole deployment's hosts, so its hint working set is
        the global population.  The sharded harness calls this with the
        deployment size after populating; like the ``attach`` derivation
        the bound only ever grows, so behaviour below it is unchanged.
        """
        bound = 4 * expected_hosts
        if bound > self._owner_hints.capacity:
            self._owner_hints.capacity = bound

    def detach(self, node_id: NodeId) -> None:
        """Unregister a node: in-flight messages to it will be dropped."""
        self._handlers.pop(node_id, None)
        if 0 <= node_id < len(self._handler_arr):
            self._handler_arr[node_id] = None

    def is_attached(self, node_id: NodeId) -> bool:
        return node_id in self._handlers

    @property
    def topology(self) -> "NatTopology":
        return self._topology

    def add_observer(self, observer: LinkObserver) -> None:
        self._observers.append(observer)
        self._recompile()

    def set_fault_hook(self, hook: FaultHook | None) -> None:
        """Install (or clear) the fault injector consulted on every message."""
        self._fault_hook = hook
        self._recompile()

    def set_foreign_router(
        self, router: Callable[[NodeId, Message, str, float], None] | None
    ) -> None:
        """Install the cross-shard escape hatch for non-local destinations.

        In a sharded world each partition's fabric owns only its own
        endpoints; a send towards a host absent from the local owner table
        is handed to ``router(src_node, message, category, transit)``
        *instead of* being scheduled for local delivery — after upload
        accounting and the latency draw, so the sender-side pipeline
        (counters, RNG stream order) is identical to a local send.  The
        router decides whether the host belongs to a peer partition (queue
        for the next barrier exchange) or is simply gone (schedule locally
        so delivery filters it like any departed endpoint).
        """
        self._foreign_router = router
        self._recompile()

    # ------------------------------------------------------------------
    # data path (generated)
    # ------------------------------------------------------------------
    # ``send`` and ``_deliver`` are instance attributes assigned by
    # _recompile(); their signatures and observable behaviour follow the
    # docstring below, which _recompile attaches to the generated send.

    _SEND_DOC = """Emit one message.  Fire-and-forget: losses are silent, as on UDP.

        A send from a node that already departed (e.g. a mix killed between
        receiving an onion and its delayed forward) is dropped silently: the
        dead process cannot emit packets.
        """

    def _recompile(self) -> None:
        """(Re)generate the specialized ``send`` / ``_deliver`` pair.

        Must be called after any change to the fabric configuration the
        generated code is specialized on.  Membership changes (attach /
        detach / topology add/remove) do *not* require recompiling: the
        generated code indexes the shared struct-of-arrays tables, which
        are mutated in place.
        """
        tel = self.telemetry
        tel_on = bool(tel.enabled)
        hook = self._fault_hook is not None
        observers = bool(self._observers)
        router = self._foreign_router is not None
        mode = self._wire_mode
        spec = self._latency.fastpath_spec()

        lines = ["def _deliver(src_node, message, category):"]
        emit = lines.append
        observe_miss = (
            "        _observe(src_node, None, message.src, dst, message.kind,"
            " message.payload, message.size_bytes)"
        )
        emit("    dst = message.dst")
        emit("    entry = _owner_map.get(dst.host)")
        emit("    owner = -1")
        emit("    if entry is not None:")
        emit("        device = entry[1]")
        emit("        if device is None:")
        emit("            owner = entry[0]")
        emit(
            "        elif device.inbound(dst.port, message.src,"
            " message.protocol, _sim.now) is not None:"
        )
        emit("            owner = entry[0]")
        emit("    if owner < 0:")
        emit("        _stats.filtered += 1")
        if tel_on:
            emit('        _counter("net.filtered", layer="net").inc()')
        if observers:
            emit(observe_miss)
        emit("        return")
        if hook:
            # Faults that arose while the message was in flight (a partition
            # forming, a node stalling) still swallow it on arrival.
            emit("    if _hook.on_deliver(src_node, owner) is not None:")
            emit("        _stats.lost += 1")
            if tel_on:
                emit('        _counter("net.lost", layer="net").inc()')
            if observers:
                emit(observe_miss)
            emit("        return")
        emit("    try:")
        emit("        handler = _handler_arr[owner]")
        emit("    except IndexError:")
        emit("        handler = None")
        if observers:
            emit(
                "    _observe(src_node, owner, message.src, dst, message.kind,"
                " message.payload, message.size_bytes)"
            )
        emit("    if handler is None:")
        emit("        _stats.no_handler += 1")
        if tel_on:
            emit('        _counter("net.no_handler", layer="net").inc()')
        emit("        return")
        emit("    _stats.delivered += 1")
        emit("    size = message.size_bytes")
        emit("    cols = _acct_cols.get(category)")
        emit("    if cols is None:")
        emit("        cols = _cat_cols(category)")
        emit("    try:")
        emit("        cols[1][owner] += size")
        emit("    except IndexError:")
        emit("        _acct_grow(owner)")
        emit("        cols[1][owner] += size")
        emit("    cols[3][owner] += size")
        emit("    _acct_touched[owner] = None")
        emit("    _acct_win_touched[owner] = None")
        if tel_on:
            emit('    _counter("net.msgs_delivered", node=owner, layer="net").inc()')
            emit('    _counter("net.down_bytes", node=owner, layer="net").inc(size)')
            emit(
                '    _counter("net.link.msgs", src=src_node, dst=owner,'
                ' layer="net").inc()'
            )
            emit(
                '    _counter("net.link.bytes", src=src_node, dst=owner,'
                ' layer="net").inc(size)'
            )
        emit("    handler(message)")

        emit("")
        emit(
            "def send(src_node, dst, kind, payload, size_bytes,"
            ' protocol=_UDP, category="other"):'
        )
        observe_drop = (
            "        _observe(src_node, None, visible_src, dst, kind,"
            " payload, size_bytes)"
        )
        emit("    if src_node >= 0:")
        emit("        try:")
        emit("            local = _local[src_node]")
        emit("        except IndexError:")
        emit("            local = None")
        emit("    else:")
        emit("        local = None")
        emit("    if local is None:  # sender already departed")
        emit("        _stats.filtered += 1")
        emit("        return")
        emit("    device = _device[src_node]")
        emit("    if device is None:")
        emit("        visible_src = local")
        emit("    else:")
        emit("        visible_src = device.outbound(local, dst, protocol, _sim.now)")
        if mode == "verify":
            # Loopback codec pass-through: the payload the receiver sees
            # has been through encode->decode, so any value the codec
            # cannot carry fails here, in the sim, not on a live socket.
            emit("    frame = _wire_encode(kind, payload, _encode_cache)")
            emit("    _audit_record(kind, size_bytes, len(frame))")
            emit("    payload = _wire_decode(frame).payload")
        elif mode == "measured":
            # measured: exact frame size from the size accumulator; no
            # frame bytes, no CRC, payload delivered as in "off" mode.
            emit("    measured = _wire_size(kind, payload, _encode_cache)")
            emit("    _audit_record(kind, size_bytes, measured)")
            emit("    size_bytes = measured")
        emit("    _stats.sent += 1")
        emit("    cols = _acct_cols.get(category)")  # upload side
        emit("    if cols is None:")
        emit("        cols = _cat_cols(category)")
        emit("    try:")
        emit("        cols[0][src_node] += size_bytes")
        emit("    except IndexError:")
        emit("        _acct_grow(src_node)")
        emit("        cols[0][src_node] += size_bytes")
        emit("    cols[2][src_node] += size_bytes")
        emit("    _acct_touched[src_node] = None")
        emit("    _acct_win_touched[src_node] = None")
        if tel_on:
            emit('    _counter("net.msgs_sent", node=src_node, layer="net").inc()')
            emit(
                '    _counter("net.up_bytes", node=src_node,'
                ' layer="net").inc(size_bytes)'
            )
            emit('    _counter("net.kind_msgs", kind=kind, layer="net").inc()')
            emit("    _publish_caches(_tel)")
        # Owner hint: inlined LruCache.lookup (counted, no recency churn).
        emit("    hint = _hints_data.get(dst.host)")
        emit("    if hint is None:  # cold path: first message towards this host")
        emit("        _hints.misses += 1")
        emit("        hint = _owner_hint(dst)")
        emit("    else:")
        emit("        _hints.hits += 1")
        if hook:
            emit("    if _hook.on_send(src_node, hint) is not None:")
            emit("        _stats.lost += 1")
            if tel_on:
                emit('        _counter("net.lost", layer="net").inc()')
            if observers:
                emit(observe_drop)
            emit("        return")
        if spec is None:
            emit("    if _is_lost(src_node, hint):")
            emit("        _stats.lost += 1")
            if tel_on:
                emit('        _counter("net.lost", layer="net").inc()')
            if observers:
                emit(observe_drop)
            emit("        return")
        if spec is not None and spec["kind"] == "cluster":
            transit = "_lat_base + size_bytes * 8 / _lat_bw + _lognorm(_lat_mu, _lat_sigma)"
        elif spec is not None:  # fixed
            transit = "_lat_const"
        else:
            transit = "_delay(src_node, hint, size_bytes)"
        emit(
            "    message = _Message(visible_src, dst, kind, payload,"
            " size_bytes, protocol, _next_msg_id())"
        )
        if hook:
            # Transit shaping (delay/duplicate/reorder windows): only
            # consulted while such a directive is live, so plans without
            # shaping keep traces byte-identical with pre-shaping runs.
            emit('    if getattr(_hook, "shaping_active", False):')
            emit("        extra_delay, copies = _hook.on_transit(src_node, hint)")
            emit(f"        transit = {transit} + extra_delay")
            emit("        for _ in range(copies):")
            if router:
                emit("            if dst.host not in _owner_map:")
                emit("                _route(src_node, message, category, transit)")
                emit("                continue")
            emit(
                "            _schedule(transit,"
                " _partial(_net._deliver, src_node, message, category))"
            )
            emit("        return")
        emit(f"    transit = {transit}")
        emit("    if transit < 0.0:")
        emit(
            "        raise _SimulationError("
            "f'cannot schedule in the past (delay={transit})')"
        )
        if router:
            emit("    if dst.host not in _owner_map:")
            emit("        _route(src_node, message, category, transit)")
            emit("        return")
        # Inlined Simulator.schedule: one Event + heap push, no call.
        emit("    time = _sim.now + transit")
        emit("    seq = _next_seq()")
        emit(
            "    _heappush(_queue, (time, 0, seq, _Event(time, 0, seq,"
            " _partial(_net._deliver, src_node, message, category), False, _sim)))"
        )
        emit("    _sim._sched_delta += 1")

        topo = self._topology
        acct = self.accountant
        namespace = {
            # _net._deliver is resolved per send (not bound at compile
            # time) so tests and instrumentation can wrap it.
            "_net": self,
            "_sim": self._sim,
            "_stats": self.stats,
            "_local": topo._local,
            "_device": topo._device,
            "_owner_map": topo._owner,
            "_handler_arr": self._handler_arr,
            "_hints": self._owner_hints,
            "_hints_data": self._owner_hints._data,
            "_owner_hint": self._owner_hint,
            "_acct_cols": acct._cols,
            "_cat_cols": acct.category_columns,
            "_acct_grow": acct.grow,
            "_acct_touched": acct._touched,
            "_acct_win_touched": acct._win_touched,
            "_tel": tel,
            "_counter": tel.counter,
            "_publish_caches": self._publish_cache_counters,
            "_observe": self._observe,
            "_hook": self._fault_hook,
            "_route": self._foreign_router,
            "_Message": Message,
            "_Event": Event,
            "_SimulationError": SimulationError,
            "_partial": partial,
            "_heappush": heapq.heappush,
            "_queue": self._sim._queue,
            "_next_seq": self._sim._seq.__next__,
            "_next_msg_id": self._msg_ids.__next__,
            "_schedule": self._sim.schedule,
            "_UDP": Protocol.UDP,
            "_is_lost": self._latency.is_lost,
            "_delay": self._latency.delay,
        }
        if mode != "off":
            namespace["_wire_encode"] = self._wire.encode_message
            namespace["_wire_decode"] = self._wire.decode_message
            namespace["_wire_size"] = self._wire.encoded_size
            namespace["_audit_record"] = self.wire_audit.record
            namespace["_encode_cache"] = self.encode_cache
        if spec is not None and spec["kind"] == "cluster":
            namespace["_lat_base"] = spec["base"]
            namespace["_lat_bw"] = spec["bw"]
            namespace["_lat_mu"] = spec["mu"]
            namespace["_lat_sigma"] = spec["sigma"]
            namespace["_lognorm"] = spec["lognorm"]
        elif spec is not None:
            namespace["_lat_const"] = spec["delay"]
        exec("\n".join(lines), namespace)  # noqa: S102 - trusted codegen
        deliver = namespace["_deliver"]
        sender = namespace["send"]
        deliver.__qualname__ = "Network._deliver[compiled]"
        sender.__qualname__ = "Network.send[compiled]"
        sender.__doc__ = self._SEND_DOC
        self._deliver = deliver
        self.send = sender

    # ------------------------------------------------------------------
    def _owner_hint(self, dst: Endpoint) -> NodeId:
        """Best-effort owner guess for latency sampling.

        Latency models key node pairs by id; when the destination endpoint
        cannot be attributed (departed node) any stable key works, so we hash
        the host name.  The hash must be stable *across processes*: Python's
        ``hash(str)`` is salted per interpreter (PYTHONHASHSEED), which would
        make same-seed runs sample different latencies for departed-node
        endpoints and break the telemetry exporter's byte-identical-trace
        guarantee — so we use crc32.
        """
        host = dst.host
        # peek, not lookup: send() already counted this access as a miss.
        hint = self._owner_hints.peek(host)
        if hint is not None:
            return hint
        hint = -1
        if host.startswith(("pub-", "nat-", "priv-")):
            try:
                hint = int(host.split("-", 1)[1])
            except ValueError:
                hint = -1
        if hint < 0:
            hint = zlib.crc32(host.encode()) & 0x7FFFFFFF
        self._owner_hints.put(host, hint)
        return hint

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Hit/miss/eviction totals for every fabric-owned cache.

        Deterministic (counters track the message stream, not the clock),
        so scale benches record them as extras: a hit-rate collapse or an
        eviction storm is behavioural drift the compare gate should see,
        distinct from a wall-clock regression.
        """
        stats = {
            "net.owner_hint": self._owner_hints,
            **self._latency_caches,
        }
        if self.encode_cache is not None and self._wire_mode != "off":
            stats["wire.encode"] = self.encode_cache
        return {
            name: {
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "size": len(cache),
                "capacity": cache.capacity,
            }
            for name, cache in stats.items()
        }

    def _publish_cache_counters(self, tel: "Telemetry") -> None:
        """Flush cache hit/miss deltas into telemetry counters.

        Owner-hint and latency-model caches behave identically in every
        wire mode, so their counters never perturb off-vs-verify trace
        comparisons; ``wire.encode.*`` exists only when the codec runs and
        is codec-layer bookkeeping by definition.
        """
        self._owner_hints.publish(tel, "net.owner_hint", layer="net")
        for name, cache in self._latency_caches.items():
            cache.publish(tel, name, layer="net")
        if self.encode_cache is not None and self._wire_mode != "off":
            self.encode_cache.publish(tel, "wire.encode", layer="wire")

    def _observe(
        self,
        sender: NodeId,
        receiver: NodeId | None,
        src: Endpoint,
        dst: Endpoint,
        kind: str,
        payload: object,
        size_bytes: int,
    ) -> None:
        if not self._observers:
            return
        packet: ObservedPacket | None = None
        for observer in self._observers:
            if observer.wants(sender, receiver):
                if packet is None:
                    packet = ObservedPacket(
                        time=self._sim.now,
                        sender=sender,
                        receiver=receiver,
                        src_endpoint=src,
                        dst_endpoint=dst,
                        kind=kind,
                        payload=payload,
                        size_bytes=size_bytes,
                    )
                observer.record(packet)
