"""Network substrate: endpoints, latency models, bandwidth accounting, fabric."""

from .address import Endpoint, NodeId, NodeKind, Protocol
from .bandwidth import BandwidthAccountant, TrafficTotals
from .latency import (
    ClusterLatencyModel,
    FixedLatencyModel,
    LatencyModel,
    PlanetLabLatencyModel,
)
from .message import Message, WireSizes, sizes
from .network import Network, NetworkStats
from .observer import LinkObserver, ObservedPacket

__all__ = [
    "BandwidthAccountant",
    "ClusterLatencyModel",
    "Endpoint",
    "FixedLatencyModel",
    "LatencyModel",
    "LinkObserver",
    "Message",
    "Network",
    "NetworkStats",
    "NodeId",
    "NodeKind",
    "ObservedPacket",
    "PlanetLabLatencyModel",
    "Protocol",
    "TrafficTotals",
    "WireSizes",
    "sizes",
]
