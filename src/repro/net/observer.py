"""Attacker model: passive observation of individual links.

The paper's threat model lets an attacker observe the traffic on *some*
links (but not all links of a multi-hop path).  :class:`LinkObserver`
implements that adversary for tests and security experiments: it taps every
message whose (sender, receiver) node pair matches a watched link — or all
links in "global observer" mode used by invariant checks — and records what
an eavesdropper would see: the observed endpoints, size, kind tag, and the
payload object travelling the wire (ciphertext objects if the protocols do
their job).
"""

from __future__ import annotations

from dataclasses import dataclass

from .address import Endpoint, NodeId
from .message import Message

__all__ = ["LinkObserver", "ObservedPacket"]


@dataclass(frozen=True)
class ObservedPacket:
    """One packet as seen on the wire."""

    time: float
    sender: NodeId
    receiver: NodeId | None  # None when the packet was filtered/lost
    src_endpoint: Endpoint
    dst_endpoint: Endpoint
    kind: str
    payload: object
    size_bytes: int


class LinkObserver:
    """Records packets on watched links.

    ``watch(a, b)`` taps the directed link a->b; ``watch_all()`` turns the
    observer into a global wiretap (used by tests asserting that *no* link
    ever carries plaintext — a stronger condition than the threat model
    requires).
    """

    def __init__(self) -> None:
        self._links: set[tuple[NodeId, NodeId]] = set()
        self._all = False
        self.packets: list[ObservedPacket] = []

    def watch(self, sender: NodeId, receiver: NodeId) -> None:
        self._links.add((sender, receiver))

    def watch_all(self) -> None:
        self._all = True

    def wants(self, sender: NodeId, receiver: NodeId | None) -> bool:
        if self._all:
            return True
        if receiver is None:
            return any(s == sender for s, _ in self._links)
        return (sender, receiver) in self._links

    def record(self, packet: ObservedPacket) -> None:
        self.packets.append(packet)

    def packets_between(self, sender: NodeId, receiver: NodeId) -> list[ObservedPacket]:
        return [
            p for p in self.packets if p.sender == sender and p.receiver == receiver
        ]
