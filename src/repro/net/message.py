"""Message envelopes and the wire-size model.

Payloads stay Python objects (no real serialization), but every message
carries an explicit ``size_bytes`` so bandwidth accounting (Fig. 6 and
Fig. 8 of the paper) is meaningful.  The :mod:`sizes` constants encode the
paper's wire format assumptions: 1 KB public keys, small view entries, etc.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .address import Endpoint, Protocol

__all__ = ["Message", "sizes", "WireSizes"]


class Message:
    """A packet in flight.

    ``src`` is the endpoint the *receiver observes* (after NAT translation);
    ``origin_src`` records the endpoint as emitted, which NAT devices need
    for their mapping tables.  ``kind`` is a short routing tag consumed by
    the receiving protocol stack (e.g. ``"pss.request"``, ``"wcl.onion"``).

    ``msg_id`` is assigned by the network fabric that carries the message,
    from a *per-network* counter: two Worlds in one process draw from
    independent sequences, so creating a second World can never perturb
    the ids that appear in the first one's trace exports.  ``-1`` marks a
    message constructed outside any fabric (unit tests, observers).

    A plain ``__slots__`` class rather than a dataclass: one Message is
    constructed per delivered packet, and the generated dataclass
    ``__init__`` + ``__post_init__`` dispatch showed up in profiles.
    """

    __slots__ = ("src", "dst", "kind", "payload", "size_bytes", "protocol", "msg_id")

    def __init__(
        self,
        src: Endpoint,
        dst: Endpoint,
        kind: str,
        payload: Any,
        size_bytes: int,
        protocol: Protocol = Protocol.UDP,
        msg_id: int = -1,
    ) -> None:
        if size_bytes < 0:
            raise ValueError(f"negative message size: {size_bytes}")
        self.src = src
        self.dst = dst
        self.kind = kind
        self.payload = payload
        self.size_bytes = size_bytes
        self.protocol = protocol
        self.msg_id = msg_id

    def __repr__(self) -> str:
        return (
            f"Message(src={self.src!r}, dst={self.dst!r}, kind={self.kind!r}, "
            f"payload={self.payload!r}, size_bytes={self.size_bytes!r}, "
            f"protocol={self.protocol!r}, msg_id={self.msg_id!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return (
            self.src == other.src
            and self.dst == other.dst
            and self.kind == other.kind
            and self.payload == other.payload
            and self.size_bytes == other.size_bytes
            and self.protocol == other.protocol
            and self.msg_id == other.msg_id
        )


@dataclass(frozen=True)
class WireSizes:
    """Serialized sizes (bytes) used for bandwidth accounting.

    Defaults follow the paper: RSA public keys serialize to ~1 KB
    (Section V-E: "the size of public keys is 1KB"), node descriptors carry
    contact information, and onion layers add an RSA-sealed header each.
    """

    public_key: int = 1024
    node_descriptor: int = 32  # id + endpoint + flags + age
    view_entry: int = 40  # descriptor + freshness metadata
    onion_layer_overhead: int = 128  # RSA-sealed (key, next-hop) header
    circuit_header: int = 16  # circuit id + framing of a circuit data frame
    circuit_layer_mac: int = 32  # per-layer MAC on a circuit data frame
    passport: int = 160  # node id signed with the group key
    gossip_header: int = 24
    connect_control: int = 48  # hole-punching control packets
    heartbeat: int = 16

    def private_view_entry(self, n_pnodes: int) -> int:
        """Size of one PPSS view entry.

        An entry names the group member, ships its public key, and — for
        N-node entries — Π P-node (descriptor, key) pairs usable as the
        next-to-last WCL hop (Section IV-B).
        """
        base = self.node_descriptor + self.public_key
        return base + n_pnodes * (self.node_descriptor + self.public_key)


sizes = WireSizes()
"""Module-level default size model (paper configuration)."""
