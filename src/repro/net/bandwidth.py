"""Per-node bandwidth accounting.

The paper reports bandwidth in KB per PSS cycle (Fig. 6) and KB/s stacked
percentiles (Fig. 8), split by direction and by traffic category (gossip
entries vs public keys vs WCL payloads).  The accountant records every
delivered message against its sender (upload) and receiver (download),
tagged with a category so experiments can slice the totals.  Categories
are a *closed* set (:data:`KNOWN_CATEGORIES`, extensible per accountant
via :meth:`BandwidthAccountant.register_category`): recording against an
unknown category raises immediately, so a new wire message kind cannot
silently land in an untracked bucket and vanish from the figures.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from .address import NodeId

__all__ = ["BandwidthAccountant", "TrafficTotals", "KNOWN_CATEGORIES"]

KNOWN_CATEGORIES: frozenset[str] = frozenset(
    {"pss", "nat", "nat.relay", "wcl", "wcl.cb", "app", "other"}
)
"""Every traffic category the stack emits.

This must stay in sync with the categories declared per message kind in
:mod:`repro.wire.registry`; ``tests/test_wire_codec.py`` asserts the
registry only uses categories listed here.
"""


@dataclass
class TrafficTotals:
    """Byte counters for one node, by direction and category."""

    up_bytes: int = 0
    down_bytes: int = 0
    up_by_category: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    down_by_category: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def record_up(self, size: int, category: str) -> None:
        self.up_bytes += size
        self.up_by_category[category] += size

    def record_down(self, size: int, category: str) -> None:
        self.down_bytes += size
        self.down_by_category[category] += size


class BandwidthAccountant:
    """Accumulates traffic per node; supports epoch snapshots.

    ``snapshot()`` returns the totals accumulated since the previous snapshot
    — experiments call it once per measurement window (e.g. one PSS cycle)
    to obtain per-cycle figures.

    Storage is struct-of-arrays: per category, four integer columns
    (lifetime/window x up/down) indexed directly by node id, which replaces
    two levels of dict probing per charge with one list index.  At 100k
    nodes this also drops the per-node ``TrafficTotals`` object zoo —
    :class:`TrafficTotals` views are materialized on demand by the query
    methods, so mutating a returned view does not write back.  The column
    lists and the touched-dicts are bound by the fabric's compiled send
    path and must keep their identity (grown/cleared in place only).
    """

    def __init__(self) -> None:
        self._known_categories = set(KNOWN_CATEGORIES)
        # category -> (life_up, life_down, win_up, win_down) columns.
        self._cols: dict[str, tuple[list[int], list[int], list[int], list[int]]] = {}
        self._size = 0  # every column has exactly this length
        # Insertion-ordered sets of node ids that ever recorded traffic /
        # recorded in the current window (dict keys preserve first-touch
        # order, matching the defaultdict insertion order this replaces).
        self._touched: dict[NodeId, None] = {}
        self._win_touched: dict[NodeId, None] = {}

    def register_category(self, category: str) -> None:
        """Allow an extra category (experiment-local traffic classes)."""
        self._known_categories.add(category)

    def category_columns(
        self, category: str
    ) -> tuple[list[int], list[int], list[int], list[int]]:
        """Columns for ``category``, creating them on first use.

        Raises ``ValueError`` for categories no experiment slices on — an
        unknown category means a message kind was wired up without deciding
        where its bytes belong in the figures.
        """
        cols = self._cols.get(category)
        if cols is None:
            if category not in self._known_categories:
                raise ValueError(
                    f"unknown traffic category {category!r}; add it to "
                    "KNOWN_CATEGORIES or register_category() before recording"
                )
            n = self._size
            cols = ([0] * n, [0] * n, [0] * n, [0] * n)
            self._cols[category] = cols
        return cols

    def grow(self, node: NodeId) -> None:
        """Extend every column so ``node`` is a valid index."""
        if node < self._size:
            return
        # Geometric growth: the World hands out dense ids, so this runs
        # O(log n) times over a run regardless of population size.
        new_size = max(node + 1, self._size * 2, 256)
        for cols in self._cols.values():
            for col in cols:
                col.extend([0] * (new_size - len(col)))
        self._size = new_size

    def record(self, src: NodeId, dst: NodeId, size: int, category: str) -> None:
        """Charge ``size`` bytes: upload at ``src``, download at ``dst``.

        Node id -1 is the infrastructure pseudo-node (relay hops, NAT
        boxes); no figure or experiment reads its totals, so skip the
        bookkeeping for it (negative ids generally, since they cannot index
        the columns).
        """
        cols = self._cols.get(category)
        if cols is None:
            cols = self.category_columns(category)
        if src >= 0:
            try:
                cols[0][src] += size
            except IndexError:
                self.grow(src)
                cols[0][src] += size
            cols[2][src] += size
            self._touched[src] = None
            self._win_touched[src] = None
        if dst >= 0:
            try:
                cols[1][dst] += size
            except IndexError:
                self.grow(dst)
                cols[1][dst] += size
            cols[3][dst] += size
            self._touched[dst] = None
            self._win_touched[dst] = None

    def _view(self, node: NodeId, life: bool) -> TrafficTotals:
        totals = TrafficTotals()
        up_col, down_col = (0, 1) if life else (2, 3)
        for category, cols in self._cols.items():
            if node >= len(cols[0]):
                continue
            up = cols[up_col][node]
            if up:
                totals.up_bytes += up
                totals.up_by_category[category] += up
            down = cols[down_col][node]
            if down:
                totals.down_bytes += down
                totals.down_by_category[category] += down
        return totals

    def totals(self, node: NodeId) -> TrafficTotals:
        """Lifetime totals for ``node`` (zeros if it never sent/received)."""
        if node < 0:
            return TrafficTotals()
        return self._view(node, life=True)

    def all_totals(self) -> dict[NodeId, TrafficTotals]:
        return {node: self._view(node, life=True) for node in self._touched}

    def snapshot(self) -> dict[NodeId, TrafficTotals]:
        """Return and reset the current measurement window."""
        window: dict[NodeId, TrafficTotals] = {}
        for node in self._win_touched:
            window[node] = self._view(node, life=False)
            for cols in self._cols.values():
                if node < len(cols[2]):
                    cols[2][node] = 0
                    cols[3][node] = 0
        self._win_touched.clear()
        return window
