"""Per-node bandwidth accounting.

The paper reports bandwidth in KB per PSS cycle (Fig. 6) and KB/s stacked
percentiles (Fig. 8), split by direction and by traffic category (gossip
entries vs public keys vs WCL payloads).  The accountant records every
delivered message against its sender (upload) and receiver (download),
tagged with a category so experiments can slice the totals.  Categories
are a *closed* set (:data:`KNOWN_CATEGORIES`, extensible per accountant
via :meth:`BandwidthAccountant.register_category`): recording against an
unknown category raises immediately, so a new wire message kind cannot
silently land in an untracked bucket and vanish from the figures.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from .address import NodeId

__all__ = ["BandwidthAccountant", "TrafficTotals", "KNOWN_CATEGORIES"]

KNOWN_CATEGORIES: frozenset[str] = frozenset(
    {"pss", "nat", "nat.relay", "wcl", "wcl.cb", "app", "other"}
)
"""Every traffic category the stack emits.

This must stay in sync with the categories declared per message kind in
:mod:`repro.wire.registry`; ``tests/test_wire_codec.py`` asserts the
registry only uses categories listed here.
"""


@dataclass
class TrafficTotals:
    """Byte counters for one node, by direction and category."""

    up_bytes: int = 0
    down_bytes: int = 0
    up_by_category: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    down_by_category: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def record_up(self, size: int, category: str) -> None:
        self.up_bytes += size
        self.up_by_category[category] += size

    def record_down(self, size: int, category: str) -> None:
        self.down_bytes += size
        self.down_by_category[category] += size


class BandwidthAccountant:
    """Accumulates traffic per node; supports epoch snapshots.

    ``snapshot()`` returns the totals accumulated since the previous snapshot
    — experiments call it once per measurement window (e.g. one PSS cycle)
    to obtain per-cycle figures.
    """

    def __init__(self) -> None:
        self._totals: dict[NodeId, TrafficTotals] = defaultdict(TrafficTotals)
        self._window: dict[NodeId, TrafficTotals] = defaultdict(TrafficTotals)
        self._known_categories = set(KNOWN_CATEGORIES)

    def register_category(self, category: str) -> None:
        """Allow an extra category (experiment-local traffic classes)."""
        self._known_categories.add(category)

    def record(self, src: NodeId, dst: NodeId, size: int, category: str) -> None:
        """Charge ``size`` bytes: upload at ``src``, download at ``dst``.

        Raises ``ValueError`` for categories no experiment slices on — an
        unknown category means a message kind was wired up without deciding
        where its bytes belong in the figures.
        """
        if category not in self._known_categories:
            raise ValueError(
                f"unknown traffic category {category!r}; add it to "
                "KNOWN_CATEGORIES or register_category() before recording"
            )
        # Hot path (twice per delivered message): update the totals inline
        # rather than through record_up/record_down calls.  Node id -1 is
        # the infrastructure pseudo-node (relay hops, NAT boxes); no figure
        # or experiment reads its totals, so skip the bookkeeping for it.
        if src != -1:
            totals = self._totals[src]
            totals.up_bytes += size
            totals.up_by_category[category] += size
            window = self._window[src]
            window.up_bytes += size
            window.up_by_category[category] += size
        if dst != -1:
            totals = self._totals[dst]
            totals.down_bytes += size
            totals.down_by_category[category] += size
            window = self._window[dst]
            window.down_bytes += size
            window.down_by_category[category] += size

    def totals(self, node: NodeId) -> TrafficTotals:
        """Lifetime totals for ``node`` (zeros if it never sent/received)."""
        return self._totals[node]

    def all_totals(self) -> dict[NodeId, TrafficTotals]:
        return dict(self._totals)

    def snapshot(self) -> dict[NodeId, TrafficTotals]:
        """Return and reset the current measurement window."""
        window = dict(self._window)
        self._window = defaultdict(TrafficTotals)
        return window
