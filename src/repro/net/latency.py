"""Link latency and loss models for the two testbeds of the paper.

The paper evaluates WHISPER on (1) a 22-machine Gbps cluster hosting up to
1,000 nodes and (2) a 400-node PlanetLab slice.  We substitute parametric
models reproducing their qualitative delay behaviour:

- :class:`ClusterLatencyModel` — sub-millisecond, narrow distribution, no
  loss; plus a small per-message processing delay since up to ~45 WHISPER
  nodes share one physical machine.
- :class:`PlanetLabLatencyModel` — heavy-tailed wide-area delays (lognormal
  body, Pareto-ish tail from overloaded machines), a few percent message
  loss, and a fraction of persistently slow nodes (the paper mentions
  "heavily loaded PlanetLab machines with larger network delays and high
  message loss rates").
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod

from ..core.lru import LruCache
from .address import NodeId

__all__ = [
    "LatencyModel",
    "ClusterLatencyModel",
    "PlanetLabLatencyModel",
    "FixedLatencyModel",
]


class LatencyModel(ABC):
    """Samples one-way delays and loss for node pairs."""

    @abstractmethod
    def delay(self, src: NodeId, dst: NodeId, size_bytes: int) -> float:
        """One-way delay in seconds for a message of ``size_bytes``."""

    @abstractmethod
    def is_lost(self, src: NodeId, dst: NodeId) -> bool:
        """Whether the message is dropped in transit."""

    def caches(self) -> dict[str, LruCache]:
        """Internal memoization caches, keyed by telemetry counter prefix.

        The fabric publishes each cache's hit/miss counters under
        ``<prefix>.cache_hit`` / ``<prefix>.cache_miss``.  Stateless models
        have none.
        """
        return {}

    def fastpath_spec(self) -> dict[str, object] | None:
        """Constants for the fabric's compiled send path, or ``None``.

        Models whose per-message work is a closed-form expression (no loss,
        no per-pair state) expose their bound constants here so
        :class:`~repro.net.network.Network` can inline the delay computation
        into its generated ``send`` and skip the ``is_lost``/``delay`` calls
        entirely.  Models with loss or memoized state return ``None`` and go
        through the virtual calls.  The inlined expression must reproduce
        this model's RNG draws *exactly* (same stream, same order) — traces
        are byte-compared against the uncompiled pipeline.
        """
        return None


class FixedLatencyModel(LatencyModel):
    """Constant delay, no loss.  For unit tests where timing must be exact."""

    def __init__(self, delay_s: float = 0.01) -> None:
        self._delay = delay_s

    def delay(self, src: NodeId, dst: NodeId, size_bytes: int) -> float:
        return self._delay

    def is_lost(self, src: NodeId, dst: NodeId) -> bool:
        return False

    def fastpath_spec(self) -> dict[str, object] | None:
        if type(self) is not FixedLatencyModel:  # subclass may override delay()
            return None
        return {"kind": "fixed", "delay": self._delay}


class ClusterLatencyModel(LatencyModel):
    """Gbps switched LAN with co-located simulated nodes.

    Delay = propagation (~0.1-0.3 ms) + transmission at 1 Gbps + a lognormal
    OS/scheduling jitter.  No loss.
    """

    def __init__(
        self,
        rng: random.Random,
        base_delay_s: float = 2e-4,
        bandwidth_bps: float = 1e9,
        jitter_mu: float = math.log(4e-4),
        jitter_sigma: float = 0.6,
    ) -> None:
        self._rng = rng
        self._base = base_delay_s
        self._bw = bandwidth_bps
        self._mu = jitter_mu
        self._sigma = jitter_sigma
        # Bound once: delay() runs once per message, and the attribute +
        # method-bind lookups are measurable at that volume.
        self._lognorm = rng.lognormvariate

    def delay(self, src: NodeId, dst: NodeId, size_bytes: int) -> float:
        return (
            self._base
            + size_bytes * 8 / self._bw
            + self._lognorm(self._mu, self._sigma)
        )

    def is_lost(self, src: NodeId, dst: NodeId) -> bool:
        return False

    def fastpath_spec(self) -> dict[str, object] | None:
        if type(self) is not ClusterLatencyModel:  # subclass may override delay()
            return None
        return {
            "kind": "cluster",
            "base": self._base,
            # The generated code must keep the exact `size * 8 / bw`
            # evaluation order: folding it to `size * (8 / bw)` changes the
            # result in the last ulp, and delays feed the event clock that
            # traces are byte-compared on.
            "bw": self._bw,
            "mu": self._mu,
            "sigma": self._sigma,
            "lognorm": self._lognorm,
        }


class PlanetLabLatencyModel(LatencyModel):
    """Wide-area testbed with overloaded machines.

    Each node gets a *load factor*: most nodes are fine, a configurable
    fraction is persistently slow (5-20x).  Pairwise base RTTs come from
    synthetic geography (stable per pair).  On top: lognormal queueing jitter
    and uniform random loss.
    """

    def __init__(
        self,
        rng: random.Random,
        loss_rate: float = 0.03,
        slow_node_fraction: float = 0.15,
        min_one_way_s: float = 0.01,
        mean_one_way_s: float = 0.08,
        bandwidth_bps: float = 10e6,
    ) -> None:
        self._rng = rng
        self._loss = loss_rate
        self._slow_fraction = slow_node_fraction
        self._min = min_one_way_s
        self._mean = mean_one_way_s
        self._bw = bandwidth_bps
        # Bounded LRU (they grew per node / per pair forever before PR 5).
        # Capacities hold the largest experiment's working set outright; an
        # evicted entry is simply resampled on next touch, which keeps
        # same-seed determinism (both runs evict and resample identically).
        self._load: LruCache = LruCache(65_536)
        self._pair_base: LruCache = LruCache(1 << 20)

    def caches(self) -> dict[str, LruCache]:
        return {
            "net.latency.load": self._load,
            "net.latency.pair": self._pair_base,
        }

    def _load_factor(self, node: NodeId) -> float:
        # lookup(), not get(): capacity exceeds any working set we run, so
        # the LRU move-to-front would be dead weight four times per message.
        factor = self._load.lookup(node)
        if factor is None:
            if self._rng.random() < self._slow_fraction:
                factor = self._rng.uniform(5.0, 20.0)
            else:
                factor = self._rng.uniform(1.0, 2.0)
            self._load.put(node, factor)
        return factor

    def _base_delay(self, src: NodeId, dst: NodeId) -> float:
        key = (min(src, dst), max(src, dst))
        base = self._pair_base.lookup(key)
        if base is None:
            # Exponential spread around the mean, floored at the minimum:
            # mimics a mix of continental and intercontinental paths.
            base = self._min + self._rng.expovariate(1.0 / self._mean)
            self._pair_base.put(key, base)
        return base

    def delay(self, src: NodeId, dst: NodeId, size_bytes: int) -> float:
        base = self._base_delay(src, dst)
        load = max(self._load_factor(src), self._load_factor(dst))
        transmission = size_bytes * 8 / self._bw
        jitter = self._rng.lognormvariate(math.log(0.01), 1.0)
        return base + (transmission + jitter) * load

    def is_lost(self, src: NodeId, dst: NodeId) -> bool:
        load = max(self._load_factor(src), self._load_factor(dst))
        # Slow (overloaded) machines also lose more messages.
        effective = self._loss * (2.0 if load > 4.0 else 1.0)
        return self._rng.random() < effective
