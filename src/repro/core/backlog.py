"""The connection backlog (CB) of Section III-A.

A FIFO of the nodes this node recently completed gossip exchanges with —
i.e. nodes for which a NAT-traversed route exists *in both directions* and
whose association rules are still fresh.  Capacity is 2c (twice the PSS view
size): with one initiated and on average one received exchange per 10 s
cycle, an entry lives at most ~100 s in the CB, well under the minimal NAT
lease of 5 minutes.

Invariant maintained: the CB always holds at least Π P-nodes.  When an
insertion would break it, P-nodes from the PSS view are probed (the paper's
"empty message" that opens a path and exchanges keys) and inserted until the
invariant is restored.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, field

from ..crypto.provider import PublicKey
from ..nat.traversal import ConnectionManager, NodeDescriptor
from ..net.address import NodeId, NodeKind
from ..net.message import sizes
from ..pss.gossip import PeerSamplingService
from ..sim.process import ExponentialBackoff, Timer

__all__ = ["CbEntry", "ConnectionBacklog"]

# A probe that got no ack within this window is retried (with backoff);
# after the attempt budget the candidate is abandoned and the invariant
# machinery picks a different P-node instead of waiting forever.
_PROBE_ACK_TIMEOUT = 6.0
_PROBE_MAX_ATTEMPTS = 3


@dataclass(frozen=True, slots=True)
class CbEntry:
    """One backlog slot: a recently-exchanged partner and its key."""

    descriptor: NodeDescriptor
    key: PublicKey

    @property
    def node_id(self) -> NodeId:
        return self.descriptor.node_id

    @property
    def is_public(self) -> bool:
        return self.descriptor.is_public


@dataclass
class _ProbeState:
    """An outstanding "empty message" probe towards a P-node."""

    descriptor: NodeDescriptor
    attempt: int = 0
    timer: Timer | None = field(default=None, repr=False)


class ConnectionBacklog:
    """FIFO of recently-exchanged partners with the Π P-node invariant."""

    def __init__(
        self,
        node_id: NodeId,
        cm: ConnectionManager,
        pss: PeerSamplingService,
        rng: random.Random,
        pi: int = 3,
        capacity: int | None = None,
    ) -> None:
        self.node_id = node_id
        self.cm = cm
        self.pss = pss
        self._rng = rng
        self.pi = pi
        self.capacity = capacity if capacity is not None else 2 * pss.config.view_size
        if self.capacity < max(1, pi):
            raise ValueError(
                f"CB capacity {self.capacity} cannot honour pi={pi}"
            )
        # Head = most recent.  OrderedDict keeps FIFO order with O(1) moves.
        self._entries: OrderedDict[NodeId, CbEntry] = OrderedDict()
        # P-node count maintained incrementally by insert/_evict_tail/remove:
        # the Π invariant consults it after every gossip exchange, and a
        # full scan there was measurable at scale.
        self._public_count = 0
        self._probing: dict[NodeId, _ProbeState] = {}
        self._probe_backoff = ExponentialBackoff(
            base=_PROBE_ACK_TIMEOUT, factor=2.0, cap=30.0, jitter=0.2, rng=rng
        )
        self._stopped = False
        self.stats_probes_sent = 0
        self.stats_probes_abandoned = 0
        self.stats_evictions_seen = 0
        pss.add_exchange_listener(self._on_gossip_exchange)

    # ------------------------------------------------------------------
    # content accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._entries

    def entries(self) -> list[CbEntry]:
        """Most recent first."""
        return list(reversed(self._entries.values()))

    def public_entries(self) -> list[CbEntry]:
        """P-node entries, most recent first."""
        return [e for e in self.entries() if e.is_public]

    def count_public(self) -> int:
        """Number of P-nodes currently in the backlog."""
        return self._public_count

    def get(self, node_id: NodeId) -> CbEntry | None:
        """The entry for ``node_id`` if present."""
        return self._entries.get(node_id)

    def gateways_for_self(self) -> list[CbEntry]:
        """The Π P-nodes advertised as next-to-last hops towards this node.

        These are P-nodes from our CB: they completed a gossip exchange (or a
        probe) with us recently, so they hold an open NAT-traversed session
        towards us and can act as hop B of an inbound WCL path.
        """
        return self.public_entries()[: self.pi]

    def first_mix_candidates(
        self, exclude: set[NodeId] | None = None
    ) -> list[CbEntry]:
        """CB entries usable as hop A, freshest first."""
        exclude = exclude or set()
        return [e for e in self.entries() if e.node_id not in exclude]

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _on_gossip_exchange(
        self, peer: NodeDescriptor, key: PublicKey | None, initiated: bool
    ) -> None:
        if key is None:
            return  # cannot be used as a mix without its public key
        self.insert(peer, key)

    def insert(self, descriptor: NodeDescriptor, key: PublicKey) -> None:
        """Insert at the head; evict at the tail; restore the Π invariant."""
        node_id = descriptor.node_id
        if node_id == self.node_id:
            return
        previous = self._entries.pop(node_id, None)
        if previous is not None and previous.descriptor.kind is NodeKind.PUBLIC:
            self._public_count -= 1
        self._entries[node_id] = CbEntry(descriptor=descriptor, key=key)
        if descriptor.kind is NodeKind.PUBLIC:
            self._public_count += 1
        while len(self._entries) > self.capacity:
            self._evict_tail()
        self._maintain_public_invariant()

    def remove(self, node_id: NodeId) -> None:
        """Drop a failed node (e.g. a mix that never forwarded)."""
        dropped = self._entries.pop(node_id, None)
        if dropped is not None and dropped.descriptor.kind is NodeKind.PUBLIC:
            self._public_count -= 1
        self._maintain_public_invariant()

    def _evict_tail(self) -> None:
        oldest = next(iter(self._entries))
        entry = self._entries.pop(oldest)
        if entry.descriptor.kind is NodeKind.PUBLIC:
            self._public_count -= 1

    # ------------------------------------------------------------------
    # the Π P-node invariant
    # ------------------------------------------------------------------
    def _maintain_public_invariant(self) -> None:
        deficit = self.pi - self.count_public() - len(self._probing)
        if deficit <= 0:
            return
        candidates = [
            entry
            for entry in self.pss.view.public_entries()
            if entry.node_id not in self._entries
            and entry.node_id not in self._probing
        ]
        self._rng.shuffle(candidates)
        for entry in candidates[:deficit]:
            self._probe(entry.descriptor)

    def _probe(self, descriptor: NodeDescriptor) -> None:
        """The paper's "empty message": open a path and exchange keys.

        Probes (and their acks) ride the same lossy fabric as everything
        else, so each probe is guarded by a timeout that retries with
        exponential backoff; after ``_PROBE_MAX_ATTEMPTS`` the candidate is
        abandoned and the invariant machinery is re-run to pick another.
        """
        target = descriptor.node_id
        state = _ProbeState(descriptor=descriptor)
        state.timer = Timer(self.cm.sim, lambda: self._probe_timeout(target))
        self._probing[target] = state
        self._probe_attempt(target)

    def _probe_attempt(self, target: NodeId) -> None:
        state = self._probing.get(target)
        if state is None or self._stopped:
            return
        state.attempt += 1
        self.stats_probes_sent += 1

        def on_ready() -> None:
            body = {"sender": self.cm.descriptor()}
            self.cm.send_via_session(
                target, "wcl.cb_probe", body,
                sizes.connect_control + sizes.public_key, "wcl.cb",
            )

        def on_fail(reason: str) -> None:
            # The session could not be opened: let the timeout path decide
            # between backing off for a retry and abandoning the candidate.
            pass

        self.cm.ensure_session(state.descriptor, on_ready, on_fail)
        assert state.timer is not None
        state.timer.start(self._probe_backoff.delay(state.attempt - 1))

    def _probe_timeout(self, target: NodeId) -> None:
        state = self._probing.get(target)
        if state is None:
            return
        if state.attempt >= _PROBE_MAX_ATTEMPTS or self._stopped:
            self._abandon_probe(target)
            if not self._stopped:
                self._maintain_public_invariant()
            return
        self._probe_attempt(target)

    def _abandon_probe(self, target: NodeId) -> None:
        state = self._probing.pop(target, None)
        if state is None:
            return
        if state.timer is not None:
            state.timer.cancel()
        self.stats_probes_abandoned += 1

    # ------------------------------------------------------------------
    # liveness feedback
    # ------------------------------------------------------------------
    def on_session_evicted(self, peer: NodeId) -> None:
        """CM keepalive declared the session dead: the entry is useless.

        A CB entry's whole value is the open bidirectional channel behind
        it; once liveness probing gives up on the session, keeping the
        entry would poison WCL mix selection with a guaranteed-dead hop.
        """
        self.stats_evictions_seen += 1
        if peer in self._entries:
            self.remove(peer)

    def stop(self) -> None:
        """Cancel outstanding probe timers (the owning node is stopping)."""
        self._stopped = True
        for target in list(self._probing):
            self._abandon_probe(target)

    # ------------------------------------------------------------------
    # probe protocol handlers (wired by the WCL dispatcher)
    # ------------------------------------------------------------------
    def on_probe(self, peer: NodeId, body: dict, own_key: PublicKey) -> None:
        """Probe received: ack with our key (the probing side needs it)."""
        ack = {"sender": self.cm.descriptor(), "key": own_key}
        self.cm.send_via_session(
            peer, "wcl.cb_probe_ack", ack,
            sizes.connect_control + sizes.public_key, "wcl.cb",
        )

    def on_probe_ack(self, peer: NodeId, body: dict) -> None:
        """Probe answered: the P-node (with its key) joins the backlog."""
        state = self._probing.pop(peer, None)
        if state is None:
            return
        if state.timer is not None:
            state.timer.cancel()
        self.insert(body["sender"], body["key"])
