"""Onion path construction and peeling (Fig. 2 of the paper).

A WCL message from S to D travels S -> A -> B -> D where A and B are mixes.
S encrypts the pair ``(k, ⊥)`` with D's public key, then wraps layers for B
and A, each holding the identity of the next hop and the remaining onion.
The content itself is encrypted once with the fresh symmetric key ``k``.

Because a mix cannot tell whether the *next-to-next* hop is ⊥, neither A nor
B learns whether they neighbour the source or the destination — that is the
relationship-anonymity argument of Section III-A, and the property the
security tests assert.

``trace_id`` is simulation instrumentation only: it lets the measurement
harness correlate per-hop timings for Fig. 7 without giving protocol code
any extra information (nothing in the protocol reads it; anonymity tests
deliberately ignore it, as the real wire format would not carry it).
Trace ids are drawn from the provider (one counter per World), so two
Worlds in one process number their onions exactly as two processes would.

Circuit mode (HORNET/Sphinx-style amortization) adds a second packet
family: a :class:`CircuitSetupPacket` is a one-shot onion whose layers
install per-hop symmetric keys, after which :class:`CircuitFrame` data
packets traverse the same path with symmetric crypto only (see
:meth:`~repro.crypto.provider.CryptoProvider.wrap_layers`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..crypto.provider import (
    CryptoProvider,
    EncryptedPayload,
    KeyPair,
    LayeredPayload,
    PublicKey,
    Sealed,
)
from ..net.address import Endpoint, NodeId
from ..net.message import sizes

__all__ = [
    "NextHop",
    "OnionLayer",
    "OnionPacket",
    "HopSpec",
    "build_onion",
    "peel",
    "CircuitHop",
    "CircuitSetupLayer",
    "CircuitSetupPacket",
    "CircuitFrame",
    "build_circuit_setup",
    "peel_setup",
]


@dataclass(frozen=True, slots=True)
class NextHop:
    """Forwarding instruction found inside a decrypted layer."""

    node_id: NodeId
    # Set when the hop must be contacted directly at a public endpoint
    # (the next-to-last hop B is always a P-node; a public destination D
    # also carries its endpoint).  None means "use your open session".
    public_endpoint: Endpoint | None = None


@dataclass(frozen=True, slots=True)
class OnionLayer:
    """Plaintext of one onion layer.

    Exactly one of the two shapes exists on the wire: intermediate layers
    have ``next_hop`` + ``inner``; the destination layer has ``next_hop is
    None`` and carries the symmetric content key ``k``.
    """

    next_hop: NextHop | None
    inner: Sealed | None
    key: bytes | None


@dataclass(frozen=True, slots=True)
class OnionPacket:
    """What actually travels on each hop: header onion + encrypted body."""

    header: Sealed
    body: EncryptedPayload
    trace_id: int  # measurement-only; see module docstring

    @property
    def wire_size(self) -> int:
        return self.header.size_bytes + self.body.size_bytes

    def with_header(self, header: Sealed) -> "OnionPacket":
        return replace(self, header=header)


@dataclass(frozen=True, slots=True)
class HopSpec:
    """One hop as known to the source when preparing the path."""

    node_id: NodeId
    public_key: PublicKey
    public_endpoint: Endpoint | None = None


def build_onion(
    provider: CryptoProvider,
    path: list[HopSpec],
    content: object,
    content_size: int,
    *,
    node: NodeId = -1,
    context: str = "",
) -> OnionPacket:
    """Construct the onion packet for ``path`` = [A, B, D] (mixes first).

    The paper fixes paths at four nodes (S, two mixes, D); the function
    accepts any number >= 1 of hops so the colluding-attacker extension
    (footnote 2: f mixes tolerate f-1 colluders) works unchanged.
    """
    if not path:
        raise ValueError("onion path needs at least the destination hop")
    key = provider.new_symmetric_key()
    destination = path[-1]
    layer = OnionLayer(next_hop=None, inner=None, key=key)
    sealed = provider.seal(destination.public_key, layer, node=node, context=context)
    # Wrap layers from the next-to-last hop backwards (Fig. 2).
    for hop_index in range(len(path) - 2, -1, -1):
        hop = path[hop_index]
        next_spec = path[hop_index + 1]
        layer = OnionLayer(
            next_hop=NextHop(
                node_id=next_spec.node_id,
                public_endpoint=next_spec.public_endpoint,
            ),
            inner=sealed,
            key=None,
        )
        sealed = provider.seal(hop.public_key, layer, node=node, context=context)
    # Account for the per-layer wire overhead the real system would have.
    sealed = replace(
        sealed, size_bytes=len(path) * sizes.onion_layer_overhead
    )
    body = provider.encrypt_payload(
        key, content, content_size, node=node, context=context
    )
    return OnionPacket(header=sealed, body=body, trace_id=provider.next_trace_id())


def peel(
    provider: CryptoProvider,
    keypair: KeyPair,
    packet: OnionPacket,
    *,
    node: NodeId = -1,
    context: str = "",
) -> tuple[OnionLayer, OnionPacket | None]:
    """Decrypt our layer.

    Returns ``(layer, forward_packet)``; ``forward_packet`` is None when we
    are the destination.  Raises CryptoError when the header was not
    prepared for our key (mis-routed packet).
    """
    layer: OnionLayer = provider.open(keypair, packet.header, node=node, context=context)
    if layer.next_hop is None:
        return layer, None
    assert layer.inner is not None
    shrunk = replace(
        layer.inner,
        size_bytes=max(
            sizes.onion_layer_overhead,
            packet.header.size_bytes - sizes.onion_layer_overhead,
        ),
    )
    return layer, packet.with_header(shrunk)


# ---------------------------------------------------------------------------
# circuit mode (amortized RSA: asymmetric work at setup only)
# ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class CircuitHop:
    """Per-hop circuit state installed by one setup layer.

    ``circuit_id`` is the label this hop matches on incoming data frames;
    ``next_circuit_id`` is the label it rewrites outgoing frames to (None
    at the destination).  Labels are per-link, Tor style: no hop learns
    any other hop's label, so frames cannot be chained across a mix by id.
    """

    circuit_id: int
    key: bytes
    next_circuit_id: int | None
    lifetime: float  # seconds of validity from installation


@dataclass(frozen=True, slots=True)
class CircuitSetupLayer:
    """Plaintext of one circuit-setup onion layer."""

    hop: CircuitHop
    next_hop: NextHop | None  # None at the destination
    inner: Sealed | None


@dataclass(frozen=True, slots=True)
class CircuitSetupPacket:
    """The setup onion: a header-only packet (no body travels with it)."""

    header: Sealed
    trace_id: int  # measurement-only; see module docstring

    @property
    def wire_size(self) -> int:
        return self.header.size_bytes

    def with_header(self, header: Sealed) -> "CircuitSetupPacket":
        return replace(self, header=header)


@dataclass(frozen=True, slots=True)
class CircuitFrame:
    """A data frame on an established circuit: symmetric layers only."""

    circuit_id: int
    body: LayeredPayload
    trace_id: int  # measurement-only; see module docstring

    @property
    def wire_size(self) -> int:
        return (
            self.body.size_bytes
            + sizes.circuit_header
            + sizes.circuit_layer_mac * len(self.body.auths)
        )


def build_circuit_setup(
    provider: CryptoProvider,
    path: list[HopSpec],
    hops: list[CircuitHop],
    *,
    node: NodeId = -1,
    context: str = "",
) -> CircuitSetupPacket:
    """Construct the setup onion installing ``hops`` along ``path``.

    ``path`` and ``hops`` run mixes-first, destination last, exactly like
    :func:`build_onion`'s path; ``hops[i].next_circuit_id`` must be
    ``hops[i+1].circuit_id`` (None for the destination).  Charges one
    ``rsa_encrypt`` per layer, like the per-message builder — the point of
    circuits is that this price is paid once, not per message.
    """
    if not path:
        raise ValueError("circuit path needs at least the destination hop")
    if len(path) != len(hops):
        raise ValueError(f"{len(path)} path hops but {len(hops)} circuit hops")
    layer = CircuitSetupLayer(hop=hops[-1], next_hop=None, inner=None)
    sealed = provider.seal(path[-1].public_key, layer, node=node, context=context)
    for hop_index in range(len(path) - 2, -1, -1):
        next_spec = path[hop_index + 1]
        layer = CircuitSetupLayer(
            hop=hops[hop_index],
            next_hop=NextHop(
                node_id=next_spec.node_id,
                public_endpoint=next_spec.public_endpoint,
            ),
            inner=sealed,
        )
        sealed = provider.seal(
            path[hop_index].public_key, layer, node=node, context=context
        )
    sealed = replace(sealed, size_bytes=len(path) * sizes.onion_layer_overhead)
    return CircuitSetupPacket(header=sealed, trace_id=provider.next_trace_id())


def peel_setup(
    provider: CryptoProvider,
    keypair: KeyPair,
    packet: CircuitSetupPacket,
    *,
    node: NodeId = -1,
    context: str = "",
) -> tuple[CircuitSetupLayer, CircuitSetupPacket | None]:
    """Decrypt our setup layer; mirrors :func:`peel` for data onions."""
    layer: CircuitSetupLayer = provider.open(
        keypair, packet.header, node=node, context=context
    )
    if layer.next_hop is None:
        return layer, None
    assert layer.inner is not None
    shrunk = replace(
        layer.inner,
        size_bytes=max(
            sizes.onion_layer_overhead,
            packet.header.size_bytes - sizes.onion_layer_overhead,
        ),
    )
    return layer, packet.with_header(shrunk)
