"""Gossip-based leader election (Section IV-A).

Leaders emit periodic heartbeats piggybacked on PPSS exchanges.  When a
member stops seeing fresh heartbeats for ``election_timeout``, it proposes a
value derived from the hash of its identifier and the group runs a
max-value gossip aggregation [8]: every exchange carries the highest
proposal seen, and after the aggregate stops changing for a few cycles each
node knows the winner.  The winner becomes leader, generates a new group
keypair and propagates the new public key signed by its member identity;
the new key joins the key *history* used to verify and issue passports.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable

from ..net.address import NodeId

__all__ = ["Heartbeat", "Proposal", "LeaderElection", "proposal_value"]


@dataclass(frozen=True, slots=True)
class Heartbeat:
    """A leader liveness beacon, ordered by (epoch, seq)."""

    leader_id: NodeId
    epoch: int  # key-history length when emitted
    seq: int

    def fresher_than(self, other: "Heartbeat | None") -> bool:
        if other is None:
            return True
        return (self.epoch, self.seq) > (other.epoch, other.seq)


@dataclass(frozen=True, slots=True)
class Proposal:
    """A candidate in the max-aggregation: (value, node) — value wins ties by id."""

    value: int
    node_id: NodeId
    epoch: int

    def beats(self, other: "Proposal | None") -> bool:
        if other is None:
            return True
        return (self.value, self.node_id) > (other.value, other.node_id)


def proposal_value(group: str, node_id: NodeId, epoch: int) -> int:
    """Deterministic, verifiable proposal: hash of the node's identifier."""
    digest = hashlib.sha256(f"{group}:{node_id}:{epoch}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class LeaderElection:
    """Per-group election state machine, driven by the PPSS cycle.

    The PPSS calls :meth:`piggyback` when building a message and
    :meth:`absorb` for every (passport-verified) message received; when the
    aggregation converges on this node's own proposal, ``on_elected`` fires
    so the PPSS can roll the group key.
    """

    def __init__(
        self,
        group: str,
        node_id: NodeId,
        election_timeout: float,
        settle_cycles: int,
        on_elected: Callable[[int], None],
    ) -> None:
        self.group = group
        self.node_id = node_id
        self.election_timeout = election_timeout
        self.settle_cycles = settle_cycles
        self._on_elected = on_elected
        self.last_heartbeat: Heartbeat | None = None
        self.last_heartbeat_time: float | None = None
        self.active = False
        self.best: Proposal | None = None
        self._stable_cycles = 0
        self.elections_started = 0
        self.elections_won = 0

    # ------------------------------------------------------------------
    def observe_heartbeat(self, heartbeat: Heartbeat, now: float) -> None:
        """Absorb a (piggybacked) leader heartbeat; cancels stale elections."""
        if heartbeat.fresher_than(self.last_heartbeat):
            self.last_heartbeat = heartbeat
            self.last_heartbeat_time = now
            # Any fresh heartbeat ends an in-progress election.
            if self.active and heartbeat.epoch >= self._current_epoch():
                self._reset_election()

    def note_alive(self, now: float) -> None:
        """Initial grace: treat group join time as a heartbeat observation."""
        if self.last_heartbeat_time is None:
            self.last_heartbeat_time = now

    def _current_epoch(self) -> int:
        return self.best.epoch if self.best is not None else 0

    # ------------------------------------------------------------------
    def on_cycle(self, now: float, epoch: int) -> None:
        """Called once per PPSS cycle: detect leader loss, track convergence."""
        if not self.active:
            if (
                self.last_heartbeat_time is not None
                and now - self.last_heartbeat_time > self.election_timeout
            ):
                self._start_election(epoch)
            return
        self._stable_cycles += 1
        if (
            self._stable_cycles >= self.settle_cycles
            and self.best is not None
            and self.best.node_id == self.node_id
        ):
            self.elections_won += 1
            epoch_won = self.best.epoch
            self._reset_election()
            self._on_elected(epoch_won)

    def _start_election(self, epoch: int) -> None:
        self.active = True
        self.elections_started += 1
        self._stable_cycles = 0
        own = Proposal(
            value=proposal_value(self.group, self.node_id, epoch),
            node_id=self.node_id,
            epoch=epoch,
        )
        if own.beats(self.best) or (self.best and self.best.epoch < epoch):
            self.best = own

    def _reset_election(self) -> None:
        self.active = False
        self.best = None
        self._stable_cycles = 0

    # ------------------------------------------------------------------
    # piggyback protocol
    # ------------------------------------------------------------------
    def piggyback(self) -> dict[str, Any] | None:
        """Election state to attach to outgoing PPSS messages (None if idle)."""
        if not self.active or self.best is None:
            return None
        return {"proposal": self.best}

    def absorb(self, data: dict[str, Any] | None, now: float, epoch: int) -> None:
        """Merge a peer's election piggyback (max-value aggregation step)."""
        if not data:
            return
        proposal: Proposal = data["proposal"]
        # Verify the proposal value actually derives from the claimed node:
        # nodes follow the protocol in our model, but the check is cheap.
        if proposal.value != proposal_value(self.group, proposal.node_id, proposal.epoch):
            return
        if not self.active:
            # A neighbour noticed leader loss before us: join the election.
            self._start_election(epoch)
        if proposal.beats(self.best):
            self.best = proposal
            self._stable_cycles = 0
