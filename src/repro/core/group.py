"""Private group management: keys, accreditations, passports (Section IV-A).

A private group is associated with a public/private keypair.  All members
know the public key; leaders hold the private key and can

- sign *accreditations* — the invitation tokens new nodes present to join;
- issue *passports* — a member's identifier signed with the group key,
  shipped with every intra-group communication.  A message with an invalid
  passport is silently ignored, which prevents members from revealing group
  existence to non-members.

After a leader election the group key rolls over; passports are verified
against the *history* of group public keys so members credentialed under an
older key remain valid.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from ..crypto.provider import CryptoProvider, KeyPair, PublicKey
from ..net.address import NodeId
from .contact import PrivateContact

__all__ = [
    "Passport",
    "Accreditation",
    "Invitation",
    "GroupKeyring",
    "issue_passport",
    "issue_accreditation",
]

_nonce_counter = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Passport:
    """Proof of membership: the member id signed with a group private key."""

    group: str
    member_id: NodeId
    key_fingerprint: str  # which group key signed it (for history lookup)
    signature: Any

    def signed_object(self) -> tuple:
        return ("passport", self.group, self.member_id)


@dataclass(frozen=True, slots=True)
class Accreditation:
    """A temporary signed invitation token presented to a leader."""

    group: str
    invitee: NodeId | None  # None = bearer token, any node may redeem it
    nonce: int
    expires_at: float
    signature: Any

    def signed_object(self) -> tuple:
        return ("accreditation", self.group, self.invitee, self.nonce, self.expires_at)


@dataclass(frozen=True, slots=True)
class Invitation:
    """What an invited node receives out-of-band (web, IM, email, ...):
    the accreditation plus the identity of one entry point (a leader)."""

    group: str
    accreditation: Accreditation
    entry_point: PrivateContact


@dataclass
class GroupKeyring:
    """A member's view of the group key material.

    ``history`` is ordered oldest -> newest; the last entry is the current
    key.  Leaders additionally hold ``leader_keypair`` (the private half).
    """

    group: str
    history: list[PublicKey] = field(default_factory=list)
    leader_keypair: KeyPair | None = None

    @property
    def current(self) -> PublicKey:
        if not self.history:
            raise ValueError(f"group {self.group!r} has no key material yet")
        return self.history[-1]

    @property
    def is_leader(self) -> bool:
        return self.leader_keypair is not None

    def adopt_key(self, key: PublicKey) -> None:
        """Append a rolled-over group key (post-election)."""
        if all(k.fingerprint != key.fingerprint for k in self.history):
            self.history.append(key)

    def become_leader(self, keypair: KeyPair) -> None:
        self.leader_keypair = keypair
        self.adopt_key(keypair.public)

    def verify_passport(
        self, provider: CryptoProvider, passport: Passport, claimed_id: NodeId,
        *, node: NodeId = -1,
    ) -> bool:
        """Check a passport against the full key history.

        The claimed sender identity must match the passport's member id —
        a member cannot replay someone else's passport under its own name.
        """
        if passport.group != self.group or passport.member_id != claimed_id:
            return False
        for key in reversed(self.history):
            if key.fingerprint != passport.key_fingerprint:
                continue
            return provider.verify(
                key, passport.signed_object(), passport.signature,
                node=node, context="group.passport",
            )
        return False

    def verify_accreditation(
        self, provider: CryptoProvider, accreditation: Accreditation,
        presenter: NodeId, now: float, *, node: NodeId = -1,
    ) -> bool:
        if accreditation.group != self.group:
            return False
        if accreditation.invitee is not None and accreditation.invitee != presenter:
            return False
        if now > accreditation.expires_at:
            return False
        for key in reversed(self.history):
            if provider.verify(
                key, accreditation.signed_object(), accreditation.signature,
                node=node, context="group.accreditation",
            ):
                return True
        return False


def issue_passport(
    provider: CryptoProvider,
    keyring: GroupKeyring,
    member_id: NodeId,
    *,
    node: NodeId = -1,
) -> Passport:
    """Leader operation: sign ``member_id`` with the current group key."""
    if keyring.leader_keypair is None:
        raise PermissionError("only a leader can issue passports")
    passport = Passport(
        group=keyring.group,
        member_id=member_id,
        key_fingerprint=keyring.leader_keypair.public.fingerprint,
        signature=None,
    )
    signature = provider.sign(
        keyring.leader_keypair, passport.signed_object(),
        node=node, context="group.passport",
    )
    return Passport(
        group=passport.group, member_id=passport.member_id,
        key_fingerprint=passport.key_fingerprint, signature=signature,
    )


def issue_accreditation(
    provider: CryptoProvider,
    keyring: GroupKeyring,
    invitee: NodeId | None,
    expires_at: float,
    *,
    node: NodeId = -1,
) -> Accreditation:
    """Leader operation: mint an invitation token."""
    if keyring.leader_keypair is None:
        raise PermissionError("only a leader can issue accreditations")
    accreditation = Accreditation(
        group=keyring.group, invitee=invitee, nonce=next(_nonce_counter),
        expires_at=expires_at, signature=None,
    )
    signature = provider.sign(
        keyring.leader_keypair, accreditation.signed_object(),
        node=node, context="group.accreditation",
    )
    return Accreditation(
        group=accreditation.group, invitee=accreditation.invitee,
        nonce=accreditation.nonce, expires_at=accreditation.expires_at,
        signature=signature,
    )
