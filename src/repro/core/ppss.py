"""PPSS: the private peer sampling service (Section IV).

Per-group gossip peer sampling executed entirely over WCL confidential
routes.  A node runs one PPSS instance per private group it belongs to;
instances share the node's WCL/CB/PSS stack but keep membership state
strictly separate, so a node never discloses one group's membership to
another group's members.

The instance moves through three states:

- ``LEADER`` — created the group (holds the group private key);
- ``JOINING`` — redeeming an invitation: periodically sends the signed
  accreditation to the entry-point leader over a WCL path until the
  welcome (passport + group key + seed view) arrives;
- ``MEMBER`` — gossiping private views every cycle (1 minute in the paper).

Every message carries the sender's passport; messages with invalid
passports are ignored silently.  View exchanges implement the retry scheme
of Table I: end-to-end response timeouts trigger alternative onion paths
(different mix pairs); after ``max_attempts`` the partner is declared
failed and evicted from the private view.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable

from ..crypto.provider import CryptoProvider
from ..net.address import NodeId
from ..net.message import sizes
from ..sim.clock import Clock
from ..sim.process import ExponentialBackoff, PeriodicTask, Timer
from ..telemetry import NULL_TELEMETRY, Span, Telemetry
from .backlog import ConnectionBacklog
from .contact import Gateway, PrivateContact
from .election import Heartbeat, LeaderElection
from .group import (
    GroupKeyring,
    Invitation,
    Passport,
    issue_accreditation,
    issue_passport,
)
from .wcl import WhisperCommunicationLayer

__all__ = [
    "MemberState",
    "PpssConfig",
    "PpssStats",
    "PrivateViewEntry",
    "PrivatePeerSamplingService",
]

_xid_counter = itertools.count(1)


class MemberState(Enum):
    """Lifecycle of one node's membership in one group."""

    JOINING = "joining"
    MEMBER = "member"
    LEFT = "left"


@dataclass(frozen=True)
class PpssConfig:
    """Defaults follow the paper: 1-minute cycles, 5 entries per exchange,
    Π retries before declaring a destination failed."""

    # Small views keep gateway information fresh: with 5-entry views fully
    # shuffled every minute, the Π P-nodes attached to an entry are rarely
    # more than a couple of cycles old — which is what makes first-attempt
    # route construction succeed at the paper's Table I rates.
    view_size: int = 5
    cycle_time: float = 60.0
    shuffle_size: int = 5  # entries per exchange, including our own
    response_timeout: float = 8.0
    max_attempts: int = 4  # first try + Π = 3 retries
    # Retries back off exponentially (with jitter from the node's seeded
    # RNG) instead of firing back-to-back: during a partition every member
    # times out together, and un-jittered retries would re-synchronize into
    # waves that hammer the surviving mixes the moment the network heals.
    retry_backoff_base: float = 1.0
    retry_backoff_cap: float = 30.0
    join_retry_every: float = 15.0  # base of the join backoff
    join_retry_cap: float = 60.0
    heartbeat_enabled: bool = True
    election_timeout: float = 300.0  # 5 cycles without a heartbeat
    election_settle_cycles: int = 3
    pcp_refresh_every: float = 120.0


@dataclass
class PpssStats:
    """Counters for one PPSS instance (drives Table I classification)."""

    cycles: int = 0
    exchanges_started: int = 0
    exchanges_completed: int = 0
    first_attempt_success: int = 0
    alt_success: int = 0  # completed after >= 1 retry
    alt_failed: int = 0  # alternatives existed but all timed out
    no_alt: int = 0  # no alternative mix pair available
    partners_evicted: int = 0
    responses_served: int = 0
    passport_rejections: int = 0
    xid_mismatches: int = 0  # response xid matched, sender did not
    last_resort_exchanges: int = 0  # view empty, retried an evicted partner
    join_attempts: int = 0
    app_sent: int = 0
    app_received: int = 0
    cover_sent: int = 0  # decoy onions emitted (anonymity countermeasure)
    cover_received: int = 0  # decoys counted and discarded


@dataclass(frozen=True, slots=True)
class PrivateViewEntry:
    """One private-view slot: a member contact and its gossip age."""

    contact: PrivateContact
    age: int

    @property
    def node_id(self) -> NodeId:
        return self.contact.node_id

    def aged(self) -> "PrivateViewEntry":
        return PrivateViewEntry(contact=self.contact, age=self.age + 1)


@dataclass
class _PendingExchange:
    xid: int
    partner: PrivateContact
    tried: set[tuple[NodeId, NodeId]] = field(default_factory=set)
    attempts: int = 0
    timer: Timer | None = None
    started_at: float = 0.0
    span: Span | None = None


class PrivatePeerSamplingService:
    """One node's membership in one private group (Fig. 1's PPSS layer)."""

    def __init__(
        self,
        group: str,
        node_id: NodeId,
        wcl: WhisperCommunicationLayer,
        backlog: ConnectionBacklog,
        provider: CryptoProvider,
        sim: Clock,
        rng: random.Random,
        config: PpssConfig | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.group = group
        self.node_id = node_id
        self.wcl = wcl
        self.backlog = backlog
        self.provider = provider
        self._sim = sim
        self._rng = rng
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.config = config if config is not None else PpssConfig()
        self.state = MemberState.JOINING
        self.keyring = GroupKeyring(group=group)
        self.passport: Passport | None = None
        self.stats = PpssStats()
        # private view: node id -> entry, insertion-ordered (deterministic)
        self._view: dict[NodeId, PrivateViewEntry] = {}
        # Contacts of partners evicted after exhausted retries, freshest
        # last.  A member whose view empties during an outage (it evicted
        # everyone, everyone evicted it) would otherwise be isolated
        # forever — it can no longer initiate exchanges and nobody gossips
        # towards it.  These stashed contacts are its way back in once the
        # network heals (see _cycle).
        self._evicted_cache: dict[NodeId, PrivateContact] = {}
        self._pending: dict[int, _PendingExchange] = {}
        self._task: PeriodicTask | None = None
        self._join_timer: Timer | None = None
        self._join_attempt_no = 0
        self._retry_backoff = ExponentialBackoff(
            base=self.config.retry_backoff_base,
            cap=self.config.retry_backoff_cap,
            jitter=0.2,
            rng=rng,
        )
        self._join_backoff = ExponentialBackoff(
            base=self.config.join_retry_every,
            cap=self.config.join_retry_cap,
            jitter=0.2,
            rng=rng,
        )
        self._invitation: Invitation | None = None
        self._authorized: set[NodeId] = set()
        self._heartbeat_seq = 0
        self.election = LeaderElection(
            group=group,
            node_id=node_id,
            election_timeout=self.config.election_timeout,
            settle_cycles=self.config.election_settle_cycles,
            on_elected=self._become_elected_leader,
        )
        self._new_key_announcement: dict[str, Any] | None = None
        # persistent connection pool (Section IV-C)
        self._pcp: dict[NodeId, PrivateContact] = {}
        self._pcp_task: PeriodicTask | None = None
        self._app_handler: Callable[[Any, PrivateContact | None], None] | None = None
        # Hook for experiments, called once per finished exchange with
        # (outcome, attempts, partner_id, duration_seconds); outcome is
        # one of "success" | "alt" | "alt_failed" | "no_alt".
        self.exchange_outcome_hook: (
            Callable[[str, int, NodeId, float], None] | None
        ) = None

    # ==================================================================
    # lifecycle: create / join / leave
    # ==================================================================
    def create(self) -> None:
        """Become the founding leader of the group."""
        keypair = self.provider.generate_keypair()
        self.keyring.become_leader(keypair)
        self.passport = issue_passport(
            self.provider, self.keyring, self.node_id, node=self.node_id
        )
        self._become_member()

    def invite(self, invitee: NodeId | None = None, ttl: float = 3600.0) -> Invitation:
        """Leader operation: mint an invitation with ourselves as entry point."""
        accreditation = issue_accreditation(
            self.provider, self.keyring, invitee,
            expires_at=self._sim.now + ttl, node=self.node_id,
        )
        return Invitation(
            group=self.group, accreditation=accreditation,
            entry_point=self.self_contact(),
        )

    def authorize_join(self, node_id: NodeId) -> None:
        """The Fig. 1 ``authorizeJoin`` API: pre-approve a joiner by id
        (an alternative to accreditation-based admission)."""
        self._authorized.add(node_id)

    def join(self, invitation: Invitation) -> None:
        """Redeem an invitation: contact the entry-point leader over WCL."""
        if invitation.group != self.group:
            raise ValueError(
                f"invitation is for {invitation.group!r}, not {self.group!r}"
            )
        self._invitation = invitation
        self.state = MemberState.JOINING
        self._join_attempt_no = 0
        self._join_timer = Timer(self._sim, self._send_join)
        self._join_timer.start(self._rng.uniform(0.5, 3.0))

    def leave(self) -> None:
        """Stop all activity (the node departs or abandons the group)."""
        self.state = MemberState.LEFT
        for task in (self._task, self._pcp_task):
            if task is not None:
                task.stop()
        if self._join_timer is not None:
            self._join_timer.cancel()
            self._join_timer = None
        for pending in self._pending.values():
            if pending.timer is not None:
                pending.timer.cancel()
        self._pending.clear()

    def _become_member(self) -> None:
        if self._join_timer is not None:
            self._join_timer.cancel()
            self._join_timer = None
        self.state = MemberState.MEMBER
        self.election.note_alive(self._sim.now)
        phase = self._rng.uniform(0, self.config.cycle_time)
        self._task = PeriodicTask(
            self._sim, self.config.cycle_time, self._cycle, initial_delay=phase
        )
        self._pcp_task = PeriodicTask(
            self._sim, self.config.pcp_refresh_every, self._refresh_pcp,
            initial_delay=self._rng.uniform(0, self.config.pcp_refresh_every),
        )

    # ==================================================================
    # public sampling API (Fig. 1)
    # ==================================================================
    def get_peer(self) -> PrivateContact | None:
        """A random live member from the private view."""
        if not self._view:
            return None
        entry = self._rng.choice(list(self._view.values()))
        return entry.contact

    def view_contacts(self) -> list[PrivateContact]:
        """All member contacts currently in the private view."""
        return [entry.contact for entry in self._view.values()]

    def view_size(self) -> int:
        """Number of members currently in the private view."""
        return len(self._view)

    def make_persistent(self, node_id: NodeId) -> bool:
        """Pin a member into the persistent connection pool (Section IV-C)."""
        entry = self._view.get(node_id)
        if entry is None and node_id not in self._pcp:
            return False
        if entry is not None:
            self._pcp[node_id] = entry.contact
        return True

    def pin_contact(self, contact: PrivateContact) -> None:
        """Like :meth:`make_persistent`, for a contact learned outside the
        private view (e.g. from a T-Man exchange)."""
        self._pcp[contact.node_id] = contact

    def drop_persistent(self, node_id: NodeId) -> None:
        """Unpin a member from the persistent connection pool."""
        self._pcp.pop(node_id, None)

    def persistent_contact(self, node_id: NodeId) -> PrivateContact | None:
        """The (refreshed) contact of a pinned member, if pinned."""
        return self._pcp.get(node_id)

    def persistent_ids(self) -> list[NodeId]:
        """Members currently pinned in the persistent connection pool."""
        return list(self._pcp.keys())

    def self_contact(self) -> PrivateContact:
        """Our own advertisement: identity, WCL key, Π gateway P-nodes."""
        gateways: tuple[Gateway, ...] = ()
        descriptor = self.wcl.cm.descriptor()
        if not descriptor.is_public:
            gateways = tuple(
                Gateway(descriptor=e.descriptor, key=e.key)
                for e in self.backlog.gateways_for_self()
            )
        return PrivateContact(
            descriptor=descriptor, key=self.wcl.public_key, gateways=gateways
        )

    # ==================================================================
    # app-layer transport for protocols inside the group
    # ==================================================================
    def set_app_handler(
        self, handler: Callable[[Any, PrivateContact | None], None]
    ) -> None:
        """Applications (e.g. T-Chord) receive their payloads here."""
        self._app_handler = handler

    def send_app(
        self,
        contact: PrivateContact,
        payload: Any,
        size: int,
        include_self_contact: bool = True,
    ) -> bool:
        """Send an application payload to a member over a WCL path.

        ``include_self_contact`` ships our own contact so the receiver can
        reply with a single WCL path (the T-Chord query pattern of
        Section V-G)."""
        if self.passport is None:
            return False
        body = {
            "type": "ppss.app",
            "group": self.group,
            "sender_id": self.node_id,
            "passport": self.passport,
            "payload": payload,
            "reply_to": self.self_contact() if include_self_contact else None,
        }
        wire = size + sizes.passport + (
            self.self_contact().wire_size() if include_self_contact else 0
        )
        attempt = self.wcl.send_to(contact, body, wire, context="ppss.app")
        if attempt is not None:
            self.stats.app_sent += 1
            return True
        return False

    def send_cover(self, contact: PrivateContact, size: int) -> bool:
        """Emit a decoy onion to ``contact`` (cover-traffic countermeasure).

        On the wire a decoy is indistinguishable from an application
        payload of the same ``size`` — same onion construction, same
        framing — so a passive observer correlating "who originates
        onions" with delivery windows sees every covering member as
        persistently active.  The receiver counts it and discards it
        (passport-gated like any group message); it never reaches the app
        handler.
        """
        if self.passport is None:
            return False
        body = {
            "type": "ppss.cover",
            "group": self.group,
            "sender_id": self.node_id,
            "passport": self.passport,
            "pad": size,
        }
        attempt = self.wcl.send_to(
            contact, body, size + sizes.passport, context="ppss.cover"
        )
        if attempt is not None:
            self.stats.cover_sent += 1
            self.telemetry.counter(
                "ppss.cover_sent", node=self.node_id, layer="ppss"
            ).inc()
            return True
        return False

    # ==================================================================
    # active gossip thread
    # ==================================================================
    def _cycle(self) -> None:
        if self.state is not MemberState.MEMBER:
            return
        self.stats.cycles += 1
        tel = self.telemetry
        if tel.enabled:
            tel.counter("ppss.cycles", node=self.node_id, layer="ppss").inc()
            tel.gauge(
                "ppss.view_size", node=self.node_id, layer="ppss",
                group=self.group,
            ).set(len(self._view))
        self._age_view()
        if self.config.heartbeat_enabled:
            self.election.on_cycle(self._sim.now, epoch=len(self.keyring.history))
        partner = self._oldest_entry()
        if partner is None:
            # View empty: every partner was evicted (e.g. we stalled, or a
            # partition cut us off).  Retry evicted partners round-robin —
            # one success re-seeds the view through the response merge.
            contact = self._last_resort_partner()
            if contact is None:
                return
            self.stats.last_resort_exchanges += 1
            self.telemetry.counter(
                "ppss.last_resort_exchange", node=self.node_id, layer="ppss"
            ).inc()
            self._start_exchange(contact)
            return
        self._start_exchange(partner.contact)

    def _last_resort_partner(self) -> PrivateContact | None:
        if not self._evicted_cache:
            return None
        nid, contact = next(iter(self._evicted_cache.items()))
        # Rotate to the back so successive cycles try different candidates.
        del self._evicted_cache[nid]
        self._evicted_cache[nid] = contact
        return contact

    def _age_view(self) -> None:
        self._view = {nid: entry.aged() for nid, entry in self._view.items()}

    def _oldest_entry(self) -> PrivateViewEntry | None:
        if not self._view:
            return None
        return max(self._view.values(), key=lambda e: (e.age, e.node_id))

    def _start_exchange(self, partner: PrivateContact) -> None:
        self.stats.exchanges_started += 1
        pending = _PendingExchange(
            xid=next(_xid_counter), partner=partner, started_at=self._sim.now
        )
        if self.telemetry.enabled:
            pending.span = self.telemetry.span_start(
                "ppss.exchange", node=self.node_id, layer="ppss",
                partner=partner.node_id,
            )
        self._pending[pending.xid] = pending
        self._attempt_exchange(pending)

    def _attempt_exchange(self, pending: _PendingExchange) -> None:
        body = self._exchange_body("ppss.request", pending.xid)
        attempt = self.wcl.send_to(
            pending.partner, body, self._body_size(body),
            exclude=pending.tried, context="ppss.request",
        )
        if attempt is None:
            outcome = "no_alt" if pending.attempts <= 1 else "alt_failed"
            self._finish_exchange(pending, success=False, outcome=outcome)
            return
        pending.attempts += 1
        pending.tried.add((attempt.first_mix, attempt.second_mix))
        if pending.timer is None:
            pending.timer = Timer(
                self._sim, lambda: self._exchange_timeout(pending.xid)
            )
        pending.timer.start(self.config.response_timeout)

    def _exchange_timeout(self, xid: int) -> None:
        pending = self._pending.get(xid)
        if pending is None:
            return
        if pending.attempts >= self.config.max_attempts:
            self._finish_exchange(pending, success=False, outcome="alt_failed")
            return
        # Back off before retrying over an alternative path (see PpssConfig).
        delay = self._retry_backoff.delay(pending.attempts - 1)
        self._sim.schedule(delay, lambda: self._retry_exchange(xid))

    def _retry_exchange(self, xid: int) -> None:
        pending = self._pending.get(xid)
        if pending is None:
            return  # answered (or the instance left) while backing off
        self._attempt_exchange(pending)

    def _finish_exchange(
        self, pending: _PendingExchange, success: bool, outcome: str
    ) -> None:
        self._pending.pop(pending.xid, None)
        if pending.timer is not None:
            pending.timer.cancel()
        partner_id = pending.partner.node_id
        if success:
            self.stats.exchanges_completed += 1
            self._evicted_cache.pop(partner_id, None)
            if pending.attempts == 1:
                self.stats.first_attempt_success += 1
                outcome = "success"
            else:
                self.stats.alt_success += 1
                outcome = "alt"
        else:
            if outcome == "no_alt":
                self.stats.no_alt += 1
            else:
                self.stats.alt_failed += 1
            # The paper: failing after Π retries is treated as a failure of
            # the destination, which is evicted from the private view.
            self.stats.partners_evicted += 1
            self._view.pop(partner_id, None)
            self._pcp.pop(partner_id, None)
            # Remember it (freshest last, bounded) in case the whole view
            # empties: last-resort re-entry partners after an outage.
            self._evicted_cache.pop(partner_id, None)
            self._evicted_cache[partner_id] = pending.partner
            while len(self._evicted_cache) > self.config.view_size:
                oldest = next(iter(self._evicted_cache))
                del self._evicted_cache[oldest]
        tel = self.telemetry
        if tel.enabled:
            if pending.span is not None:
                tel.span_end(
                    pending.span, outcome=outcome, attempts=pending.attempts
                )
            tel.counter(
                "ppss.exchange_outcome", layer="ppss", outcome=outcome
            ).inc()
            tel.histogram("ppss.exchange_s", layer="ppss").observe(
                self._sim.now - pending.started_at
            )
        if self.exchange_outcome_hook is not None:
            self.exchange_outcome_hook(
                outcome, pending.attempts, pending.partner.node_id,
                self._sim.now - pending.started_at,
            )

    # ==================================================================
    # message construction
    # ==================================================================
    def _exchange_body(self, msg_type: str, xid: int) -> dict[str, Any]:
        body: dict[str, Any] = {
            "type": msg_type,
            "group": self.group,
            "xid": xid,
            "sender": self.self_contact(),
            "passport": self.passport,
            "buffer": self._build_buffer(),
            "hb": self._heartbeat_piggyback(),
            "election": self.election.piggyback(),
            "new_key": self._new_key_announcement,
        }
        return body

    def _build_buffer(self) -> list[PrivateViewEntry]:
        own = PrivateViewEntry(contact=self.self_contact(), age=0)
        entries = list(self._view.values())
        k = min(self.config.shuffle_size - 1, len(entries))
        sample = self._rng.sample(entries, k) if k > 0 else []
        return [own] + sample

    def _body_size(self, body: dict[str, Any]) -> int:
        entries: list[PrivateViewEntry] = body["buffer"]
        size = sizes.gossip_header + sizes.passport
        size += sum(entry.contact.wire_size() for entry in entries)
        return size

    def _heartbeat_piggyback(self) -> Heartbeat | None:
        if not self.config.heartbeat_enabled:
            return None
        if self.keyring.is_leader:
            self._heartbeat_seq += 1
            return Heartbeat(
                leader_id=self.node_id,
                epoch=len(self.keyring.history),
                seq=self._heartbeat_seq,
            )
        return self.election.last_heartbeat

    # ==================================================================
    # inbound dispatch (wired from the node's WCL upcall)
    # ==================================================================
    def handle_message(self, body: dict[str, Any], size: int) -> None:
        """Entry point for every WCL-delivered content of this group."""
        msg_type = body.get("type")
        if msg_type == "group.join":
            self._on_join_request(body)
            return
        if msg_type == "group.welcome":
            self._on_welcome(body)
            return
        # Everything else requires a valid passport.
        if not self._passport_ok(body):
            self.stats.passport_rejections += 1
            self.telemetry.counter(
                "ppss.passport_rejections", node=self.node_id, layer="ppss"
            ).inc()
            return
        self._absorb_piggybacks(body)
        if msg_type == "ppss.request":
            self._on_request(body)
        elif msg_type == "ppss.response":
            self._on_response(body)
        elif msg_type == "ppss.app":
            self._on_app(body)
        elif msg_type == "ppss.cover":
            self._on_cover(body)
        elif msg_type == "ppss.pcp_refresh":
            self._on_pcp_refresh(body)
        elif msg_type == "ppss.pcp_ack":
            self._on_pcp_ack(body)

    def _passport_ok(self, body: dict[str, Any]) -> bool:
        passport = body.get("passport")
        if passport is None or self.state is MemberState.JOINING:
            return False
        sender = body.get("sender")
        sender_id = sender.node_id if sender is not None else body.get("sender_id")
        if sender_id is None:
            return False
        return self.keyring.verify_passport(
            self.provider, passport, sender_id, node=self.node_id
        )

    def _absorb_piggybacks(self, body: dict[str, Any]) -> None:
        heartbeat = body.get("hb")
        if heartbeat is not None:
            self.election.observe_heartbeat(heartbeat, self._sim.now)
        self.election.absorb(
            body.get("election"), self._sim.now, epoch=len(self.keyring.history)
        )
        announcement = body.get("new_key")
        if announcement is not None:
            self._on_new_key(announcement)

    # -- view exchanges -------------------------------------------------
    def _on_request(self, body: dict[str, Any]) -> None:
        self.stats.responses_served += 1
        self.telemetry.counter(
            "ppss.responses_served", node=self.node_id, layer="ppss"
        ).inc()
        sender: PrivateContact = body["sender"]
        response = self._exchange_body("ppss.response", body["xid"])
        self._merge(body["buffer"], sender)
        self.wcl.send_to(
            sender, response, self._body_size(response), context="ppss.response"
        )

    def _on_response(self, body: dict[str, Any]) -> None:
        pending = self._pending.get(body["xid"])
        sender: PrivateContact = body["sender"]
        self._merge(body["buffer"], sender)
        if pending is None:
            return
        if sender.node_id != pending.partner.node_id:
            # The xid matches an outstanding exchange but the responder is
            # not the partner we asked — a delayed duplicate from a reused
            # xid, or a member replaying someone else's response.  The
            # buffer (passport-verified) was merged above; the exchange
            # itself stays open until the real partner answers.
            self.stats.xid_mismatches += 1
            self.telemetry.counter(
                "ppss.xid_mismatch", node=self.node_id, layer="ppss"
            ).inc()
            return
        self._finish_exchange(pending, success=True, outcome="success")

    def _merge(self, buffer: list[PrivateViewEntry], sender: PrivateContact) -> None:
        candidates: dict[NodeId, PrivateViewEntry] = dict(self._view)

        def consider(entry: PrivateViewEntry) -> None:
            if entry.node_id == self.node_id:
                return
            current = candidates.get(entry.node_id)
            if current is None or entry.age < current.age:
                candidates[entry.node_id] = entry

        for entry in buffer:
            consider(entry)
        consider(PrivateViewEntry(contact=sender, age=0))
        kept = sorted(candidates.values(), key=lambda e: (e.age, e.node_id))
        self._view = {
            entry.node_id: entry for entry in kept[: self.config.view_size]
        }
        # Keep PCP contacts fresh with the newest gateway information.
        for node_id in list(self._pcp.keys()):
            entry = self._view.get(node_id)
            if entry is not None:
                self._pcp[node_id] = entry.contact

    # -- join protocol ----------------------------------------------------
    def _send_join(self) -> None:
        if self.state is not MemberState.JOINING or self._invitation is None:
            return
        # Re-arm first: the next retry (with backoff) happens unless the
        # welcome arrives and _become_member cancels the timer.
        self._join_attempt_no += 1
        if self._join_timer is not None:
            self._join_timer.start(
                self._join_backoff.delay(self._join_attempt_no - 1)
            )
        self.stats.join_attempts += 1
        body = {
            "type": "group.join",
            "group": self.group,
            "accreditation": self._invitation.accreditation,
            "joiner": self.self_contact(),
        }
        size = sizes.passport + self.self_contact().wire_size()
        self.wcl.send_to(
            self._invitation.entry_point, body, size, context="group.join"
        )

    def _on_join_request(self, body: dict[str, Any]) -> None:
        if not self.keyring.is_leader:
            return  # only leaders admit members; others stay silent
        joiner: PrivateContact = body["joiner"]
        accreditation = body.get("accreditation")
        authorized = joiner.node_id in self._authorized
        if not authorized:
            if accreditation is None:
                return
            if not self.keyring.verify_accreditation(
                self.provider, accreditation, joiner.node_id, self._sim.now,
                node=self.node_id,
            ):
                return
        passport = issue_passport(
            self.provider, self.keyring, joiner.node_id, node=self.node_id
        )
        seed = [
            PrivateViewEntry(contact=self.self_contact(), age=0)
        ] + self._rng.sample(
            list(self._view.values()), min(self.config.shuffle_size, len(self._view))
        )
        welcome = {
            "type": "group.welcome",
            "group": self.group,
            "passport": passport,
            "key_history": list(self.keyring.history),
            "seed": seed,
        }
        size = sizes.passport + sizes.public_key * len(self.keyring.history)
        size += sum(entry.contact.wire_size() for entry in seed)
        self.wcl.send_to(joiner, welcome, size, context="group.welcome")
        # Welcome the joiner into our own view too.
        self._merge([PrivateViewEntry(contact=joiner, age=0)], joiner)

    def _on_welcome(self, body: dict[str, Any]) -> None:
        if self.state is not MemberState.JOINING:
            return
        for key in body["key_history"]:
            self.keyring.adopt_key(key)
        passport: Passport = body["passport"]
        if passport.member_id != self.node_id:
            return
        self.passport = passport
        self._merge(body["seed"], body["seed"][0].contact)
        self._become_member()

    # -- persistent path refresh (Section IV-C) ---------------------------
    def _refresh_pcp(self) -> None:
        if self.state is not MemberState.MEMBER or self.passport is None:
            return
        for contact in list(self._pcp.values()):
            body = {
                "type": "ppss.pcp_refresh",
                "group": self.group,
                "sender": self.self_contact(),
                "passport": self.passport,
                "hb": self._heartbeat_piggyback(),
                "election": self.election.piggyback(),
                "new_key": self._new_key_announcement,
            }
            size = sizes.gossip_header + sizes.passport + body["sender"].wire_size()
            self.wcl.send_to(contact, body, size, context="ppss.pcp")

    def _on_pcp_refresh(self, body: dict[str, Any]) -> None:
        sender: PrivateContact = body["sender"]
        # Refresh whatever we hold about the sender.
        self._merge([PrivateViewEntry(contact=sender, age=0)], sender)
        ack = {
            "type": "ppss.pcp_ack",
            "group": self.group,
            "sender": self.self_contact(),
            "passport": self.passport,
            "hb": self._heartbeat_piggyback(),
            "election": self.election.piggyback(),
            "new_key": self._new_key_announcement,
        }
        size = sizes.gossip_header + sizes.passport + ack["sender"].wire_size()
        self.wcl.send_to(sender, ack, size, context="ppss.pcp")

    def _on_pcp_ack(self, body: dict[str, Any]) -> None:
        sender: PrivateContact = body["sender"]
        if sender.node_id in self._pcp:
            self._pcp[sender.node_id] = sender

    # -- app payloads -----------------------------------------------------
    def _on_app(self, body: dict[str, Any]) -> None:
        self.stats.app_received += 1
        if self._app_handler is not None:
            self._app_handler(body["payload"], body.get("reply_to"))

    def _on_cover(self, body: dict[str, Any]) -> None:
        # Decoy padding: count it and drop it.  Cover traffic must stay
        # invisible above PPSS, so it never reaches the app handler.
        self.stats.cover_received += 1
        self.telemetry.counter(
            "ppss.cover_received", node=self.node_id, layer="ppss"
        ).inc()

    # -- leader election fallout -----------------------------------------
    def _become_elected_leader(self, epoch: int) -> None:
        """We won the election: roll the group key and announce it.

        Our own passport stays the old-key one — peers have not adopted the
        new key yet, and old passports remain valid through the key history;
        replacing it here would get every announcement-carrying message
        rejected before the announcement could spread.
        """
        keypair = self.provider.generate_keypair()
        self.keyring.become_leader(keypair)
        if self.passport is None:
            self.passport = issue_passport(
                self.provider, self.keyring, self.node_id, node=self.node_id
            )
        announcement_body = (
            "new_key", self.group, keypair.public.fingerprint, self.node_id
        )
        signature = self.provider.sign(
            self.wcl.keypair, announcement_body, node=self.node_id,
            context="group.newkey",
        )
        self._new_key_announcement = {
            "group": self.group,
            "leader_id": self.node_id,
            "leader_key": self.wcl.public_key,
            "key": keypair.public,
            "signature": signature,
        }

    def _on_new_key(self, announcement: dict[str, Any]) -> None:
        key = announcement["key"]
        if any(k.fingerprint == key.fingerprint for k in self.keyring.history):
            return
        body = (
            "new_key", announcement["group"], key.fingerprint,
            announcement["leader_id"],
        )
        if announcement["group"] != self.group:
            return
        if not self.provider.verify(
            announcement["leader_key"], body, announcement["signature"],
            node=self.node_id, context="group.newkey",
        ):
            return
        self.keyring.adopt_key(key)
        self.election.observe_heartbeat(
            Heartbeat(
                leader_id=announcement["leader_id"],
                epoch=len(self.keyring.history),
                seq=0,
            ),
            self._sim.now,
        )
        # Re-propagate so the announcement floods the group epidemically.
        self._new_key_announcement = announcement
