"""WCL: the WHISPER communication layer (Section III).

Provides the ``sendTo(contact, msg)`` / ``receive(msg)`` API of Fig. 1:
one-way confidential channels over onion paths S -> A -> B -> D, where

- A (first mix) comes from the sender's connection backlog — a node with a
  recently-used bidirectional NAT route;
- B (second mix) must be a P-node that can reach D: one of D's advertised
  gateways when D is natted, or any known P-node when D is public;
- content is encrypted with a fresh symmetric key sealed for D only.

Failures are silent by design (a broken hop cannot notify the source without
breaking anonymity); callers detect them by end-to-end timeout and re-send
with :meth:`WhisperCommunicationLayer.send_to` excluding tried mix pairs —
exactly the retry scheme evaluated in Table I.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable

from ..crypto.provider import (
    CryptoError,
    CryptoProvider,
    KeyPair,
    LayeredPayload,
    PublicKey,
)
from ..nat.traversal import ConnectionManager, NodeDescriptor
from ..net.address import Endpoint, NodeId, NodeKind
from ..net.message import sizes
from ..nat.types import NatType
from ..sim.clock import Clock
from ..telemetry import NULL_TELEMETRY, Telemetry
from .backlog import CbEntry, ConnectionBacklog
from .contact import Gateway, PrivateContact
from .onion import (
    CircuitFrame,
    CircuitHop,
    CircuitSetupPacket,
    HopSpec,
    NextHop,
    OnionPacket,
    build_circuit_setup,
    build_onion,
    peel,
    peel_setup,
)

__all__ = ["WhisperCommunicationLayer", "AttemptInfo", "WclStats"]

ReceiveUpcall = Callable[[Any, int], None]


@dataclass(frozen=True, slots=True)
class AttemptInfo:
    """Outcome of one path-construction attempt (for retry bookkeeping)."""

    first_mix: NodeId
    second_mix: NodeId  # the next-to-last hop (always a P-node)
    trace_id: int
    middle_mixes: tuple[NodeId, ...] = ()  # extra hops when mixes > 2


@dataclass
class WclStats:
    """Counters for one WCL endpoint."""

    sent: int = 0
    forwarded: int = 0  # onions relayed as a mix
    delivered: int = 0  # onions terminating here
    no_path: int = 0  # send_to found no usable (A, B) pair
    degraded_paths: int = 0  # pair drawn from the widened (PSS-view) pool
    misrouted: int = 0  # header did not open with our key
    forward_failures: int = 0  # next-hop session was gone
    mix_held: int = 0  # forwards pooled by batched mixing (countermeasure)
    circuit_setups: int = 0  # CircuitSetup onions emitted (incl. rekeys)
    circuit_sent: int = 0  # data frames sent on an established circuit
    circuit_forwarded: int = 0  # circuit frames relayed as a mix
    circuit_delivered: int = 0  # circuit frames terminating here
    circuit_expired: int = 0  # frames dropped at an expired relay entry
    circuit_rekeys: int = 0  # expired source circuits refreshed with new keys


@dataclass
class _SourceCircuit:
    """Source-side record of one persistent circuit to a contact."""

    contact_id: NodeId
    circuit_id: int  # the label on the first-mix link
    keys: tuple[bytes, ...]  # per-hop layer keys, first mix outermost
    first_mix: NodeId
    second_mix: NodeId
    middle_mixes: tuple[NodeId, ...]
    expires_at: float  # conservative: setup send time + lifetime
    established: bool = False  # the destination's ack came back


@dataclass
class _RelayCircuit:
    """Per-hop circuit state installed by a setup layer (mix or dest)."""

    key: bytes
    next_hop: NextHop | None  # None: we are the destination
    next_circuit_id: int | None
    prev_peer: NodeId  # session the setup arrived on — routes acks backward
    expires_at: float


class WhisperCommunicationLayer:
    """One node's WCL endpoint."""

    def __init__(
        self,
        node_id: NodeId,
        keypair: KeyPair,
        cm: ConnectionManager,
        backlog: ConnectionBacklog,
        provider: CryptoProvider,
        sim: Clock,
        rng: random.Random,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.node_id = node_id
        self.keypair = keypair
        self.cm = cm
        self.backlog = backlog
        self.provider = provider
        self._sim = sim
        self._rng = rng
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.stats = WclStats()
        self._receive_upcall: ReceiveUpcall | None = None
        # Batched mixing (anonymity countermeasure): None = off, the
        # default — the forward path is then byte-identical to a build
        # without the feature.
        self._mix_batch_interval: float | None = None
        self._mix_pool: list[tuple[int, NextHop, object, str]] = []
        # Epoch for which a boundary flush is currently scheduled (None =
        # no flush pending for the current epoch).
        self._mix_flush_scheduled_epoch: int | None = None
        # Every enable/disable transition bumps the epoch; a boundary
        # flush scheduled under an older epoch is stale and must not touch
        # the pool (it would flush a *new* pool before its boundary).
        self._mix_epoch = 0
        # Circuit mode (amortized RSA): off by default — with it off, no
        # circuit state exists and every path below is byte-identical to a
        # build without the feature.
        self._circuit_mode = False
        self._circuit_lifetime = 600.0
        self._circuits: dict[NodeId, _SourceCircuit] = {}  # by contact
        self._circuit_by_id: dict[int, NodeId] = {}  # first-link label -> contact
        self._relay: dict[int, _RelayCircuit] = {}  # by our inbound label
        self._relay_back: dict[int, int] = {}  # next hop's label -> ours

    @property
    def public_key(self) -> PublicKey:
        """This node's circulating WCL identity key."""
        return self.keypair.public

    def set_receive_upcall(self, upcall: ReceiveUpcall) -> None:
        """Register the PPSS (or application) sink for arriving contents."""
        self._receive_upcall = upcall

    # ------------------------------------------------------------------
    # sending (the WCL API's sendTo)
    # ------------------------------------------------------------------
    def send_to(
        self,
        contact: PrivateContact,
        content: Any,
        content_size: int,
        exclude: set[tuple[NodeId, NodeId]] | None = None,
        context: str = "wcl",
        mixes: int = 2,
    ) -> AttemptInfo | None:
        """Build an onion path to ``contact`` and emit the message.

        ``exclude`` lists (first mix, second mix) pairs already tried; the
        selection draws a pair outside it, so callers implement the paper's
        alternative-path retries by accumulating failures.  Returns None
        when no usable pair remains ("No alt." in Table I).

        ``mixes`` sets the path length: the paper's default is 2 (paths of
        exactly four nodes); footnote 2's colluding-attacker extension uses
        f mixes to tolerate f-1 colluders.  Extra mixes are P-nodes from
        the connection backlog inserted between the first mix and the
        next-to-last hop — every hop can reach a P-node directly.
        """
        if mixes < 2:
            raise ValueError(f"a WCL path needs at least 2 mixes, got {mixes}")
        exclude = exclude or set()
        if self._circuit_mode:
            attempt = self._try_circuit_send(
                contact, content, content_size, exclude, context, mixes
            )
            if attempt is not None:
                return attempt
            # No established circuit (one may just have been initiated):
            # fall through to the per-message path — Table I retry
            # semantics are untouched by circuit mode.
        pair = self._select_mixes(contact, exclude)
        if pair is None:
            self.stats.no_path += 1
            self.telemetry.counter("wcl.no_path", node=self.node_id, layer="wcl").inc()
            return None
        first, second = pair
        middles = self._select_middle_mixes(
            mixes - 2, forbidden={first.node_id, second.node_id, contact.node_id},
        )
        if len(middles) < mixes - 2:
            self.stats.no_path += 1
            self.telemetry.counter("wcl.no_path", node=self.node_id, layer="wcl").inc()
            return None
        dest_endpoint = (
            contact.descriptor.public_endpoint if contact.is_public else None
        )
        path = [HopSpec(first.node_id, first.key)]
        path += [
            HopSpec(
                m.node_id, m.key, public_endpoint=m.descriptor.public_endpoint,
            )
            for m in middles
        ]
        path += [
            HopSpec(
                second.node_id, second.key,
                public_endpoint=second.descriptor.public_endpoint,
            ),
            HopSpec(contact.node_id, contact.key, public_endpoint=dest_endpoint),
        ]
        build_start_ms = self._charged_ms()
        packet = build_onion(
            self.provider, path, content, content_size,
            node=self.node_id, context=context,
        )
        build_ms = self._charged_ms() - build_start_ms
        tel = self.telemetry
        if tel.enabled:
            # The span covers the CPU time the build charges: the packet hits
            # the wire exactly when the span closes.
            span = tel.span_start(
                f"{context}.build", trace_id=packet.trace_id,
                node=self.node_id, layer="wcl", ms=build_ms, hops=len(path),
            )
            tel.span_end(span, at=self._sim.now + build_ms / 1000.0)
            tel.counter("wcl.sent", node=self.node_id, layer="wcl").inc()
            tel.histogram("wcl.build_ms", layer="wcl").observe(build_ms)
        # The CPU time spent building the onion delays the transmission.
        self._sim.schedule(
            build_ms / 1000.0,
            lambda: self._emit(first.node_id, packet, context),
        )
        self.stats.sent += 1
        return AttemptInfo(
            first_mix=first.node_id, second_mix=second.node_id,
            trace_id=packet.trace_id,
            middle_mixes=tuple(m.node_id for m in middles),
        )

    def _select_middle_mixes(self, count: int, forbidden: set[NodeId]) -> list:
        """P-nodes from the CB serving as intermediate hops (mixes > 2)."""
        if count <= 0:
            return []
        candidates = [
            e for e in self.backlog.public_entries()
            if e.node_id not in forbidden
        ]
        self._rng.shuffle(candidates)
        return candidates[:count]

    def _emit(self, first_mix: NodeId, packet: OnionPacket, context: str) -> None:
        self.telemetry.instant(
            f"{context}.sent", trace_id=packet.trace_id,
            node=self.node_id, layer="wcl",
        )
        self.cm.send_via_session(
            first_mix, "wcl.onion", packet, packet.wire_size, "wcl"
        )

    def _select_mixes(
        self,
        contact: PrivateContact,
        exclude: set[tuple[NodeId, NodeId]],
    ) -> tuple[object, object] | None:
        """Draw an (A, B) pair honouring the paper's constraints."""
        second_candidates: list[Gateway] = [
            g for g in contact.gateways
            if g.node_id not in (self.node_id, contact.node_id)
        ]
        if contact.is_public:
            # Any known P-node can reach a public destination directly.
            for entry in self.backlog.public_entries():
                if entry.node_id not in (self.node_id, contact.node_id) and all(
                    g.node_id != entry.node_id for g in second_candidates
                ):
                    second_candidates.append(
                        Gateway(descriptor=entry.descriptor, key=entry.key)
                    )
        firsts = self.backlog.first_mix_candidates(
            exclude={self.node_id, contact.node_id}
        )
        self._rng.shuffle(second_candidates)
        self._rng.shuffle(firsts)
        pair = self._pick_pair(firsts, second_candidates, exclude)
        if pair is not None:
            return pair
        # Graceful degradation: when the CB itself is starved — its P-node
        # quorum below Π, e.g. after a partition or a churn burst evicted
        # most entries — widen the pool with PSS-view peers that are just
        # as usable (key known from a gossip exchange, session still open)
        # rather than failing the send outright.  A healthy CB that merely
        # ran out of untried pairs still returns "no_path": there the
        # exclusions, not the backlog, are the binding constraint.
        if self.backlog.count_public() >= self.backlog.pi:
            return None
        widened = self._degraded_pool({self.node_id, contact.node_id})
        if not widened:
            return None
        self._rng.shuffle(widened)
        firsts = firsts + widened
        if contact.is_public:
            for entry in widened:
                if entry.is_public and all(
                    g.node_id != entry.node_id for g in second_candidates
                ):
                    second_candidates.append(
                        Gateway(descriptor=entry.descriptor, key=entry.key)
                    )
        pair = self._pick_pair(firsts, second_candidates, exclude)
        if pair is not None:
            self.stats.degraded_paths += 1
            self.telemetry.counter(
                "wcl.degraded_path", node=self.node_id, layer="wcl"
            ).inc()
        return pair

    @staticmethod
    def _pick_pair(
        firsts: list,
        seconds: list,
        exclude: set[tuple[NodeId, NodeId]],
    ) -> tuple[object, object] | None:
        # Vary the second mix fastest: a stale gateway is the most common
        # failure, so alternatives try a different B before a different A.
        for first in firsts:
            for second in seconds:
                if first.node_id == second.node_id:
                    continue
                if (first.node_id, second.node_id) in exclude:
                    continue
                return first, second
        return None

    def _degraded_pool(self, forbidden: set[NodeId]) -> list[CbEntry]:
        """PSS-view peers usable as emergency mix candidates.

        A view entry qualifies when we learned its public key through a
        gossip exchange *and* still hold an open session towards it — at
        that point it offers exactly what a CB entry offers (a keyed,
        reachable hop), only staler.
        """
        pss = self.backlog.pss
        pool: list[CbEntry] = []
        for entry in pss.view.entries():
            nid = entry.node_id
            if nid in forbidden or nid in self.backlog:
                continue
            key = pss.known_keys.get(nid)
            if key is None or not self.cm.has_session(nid):
                continue
            pool.append(CbEntry(descriptor=entry.descriptor, key=key))
        return pool

    # ------------------------------------------------------------------
    # receiving / forwarding
    # ------------------------------------------------------------------
    def handle_onion(self, packet: OnionPacket) -> None:
        """An onion arrived over one of our sessions: peel, then act."""
        tel = self.telemetry
        decrypt_start_ms = self._charged_ms()
        try:
            layer, forward = peel(
                self.provider, self.keypair, packet,
                node=self.node_id, context="wcl.peel",
            )
        except CryptoError:
            self.stats.misrouted += 1
            tel.counter("wcl.misrouted", node=self.node_id, layer="wcl").inc()
            return
        decrypt_ms = self._charged_ms() - decrypt_start_ms
        if tel.enabled:
            span = tel.span_start(
                "wcl.peel", trace_id=packet.trace_id, node=self.node_id,
                layer="wcl", ms=decrypt_ms,
                role="dest" if forward is None else "mix",
            )
            tel.span_end(span, at=self._sim.now + decrypt_ms / 1000.0)
            tel.histogram("wcl.peel_ms", layer="wcl").observe(decrypt_ms)
        delay = decrypt_ms / 1000.0
        if forward is None:
            # We are the destination: recover the content with k.
            assert layer.key is not None
            body_start_ms = self._charged_ms()
            try:
                content = self.provider.decrypt_payload(
                    layer.key, packet.body, node=self.node_id, context="wcl.body"
                )
            except CryptoError:
                self.stats.misrouted += 1
                tel.counter("wcl.misrouted", node=self.node_id, layer="wcl").inc()
                return
            # The body decrypt is charged CPU like the peel; the receive
            # upcall fires only after *both* (an earlier revision delayed
            # by the header peel alone, so delivery looked cheaper than
            # the accountant said it was).
            body_ms = self._charged_ms() - body_start_ms
            delay = (decrypt_ms + body_ms) / 1000.0
            self.stats.delivered += 1
            if tel.enabled:
                tel.instant(
                    "wcl.delivered", trace_id=packet.trace_id,
                    node=self.node_id, layer="wcl",
                )
                tel.counter("wcl.delivered", node=self.node_id, layer="wcl").inc()
            if self._receive_upcall is not None:
                upcall = self._receive_upcall
                self._sim.schedule(
                    delay, lambda: upcall(content, packet.body.size_bytes)
                )
            return
        next_hop = layer.next_hop
        assert next_hop is not None
        self.stats.forwarded += 1
        tel.counter("wcl.forwarded", node=self.node_id, layer="wcl").inc()
        if self._mix_batch_interval is None:
            self._sim.schedule(
                delay, lambda: self._forward(next_hop, forward)
            )
        else:
            self._sim.schedule(
                delay, lambda: self._hold_for_mixing(next_hop, forward)
            )

    # ------------------------------------------------------------------
    # batched mixing (anonymity countermeasure)
    # ------------------------------------------------------------------
    def enable_mix_batching(self, interval: float) -> None:
        """Hold-and-flush mixing for forwarded onions.

        Instead of forwarding each onion as soon as it is peeled, the mix
        pools it and releases the whole pool at the next batch boundary —
        a multiple of ``interval`` on the clock, so boundaries are
        deterministic and traces stay byte-identical per seed.  Flushes
        depart in trace-id order, decoupling departure order from arrival
        order: that reordering, plus the severed in/out timing link, is
        what defeats predecessor-style chaining.  Only *relayed* onions
        are held; a sender's own emissions are not (the countermeasure
        lives at WCL relays).
        """
        if interval <= 0:
            raise ValueError(
                f"mix batch interval must be positive, got {interval}"
            )
        self._mix_batch_interval = interval

    def disable_mix_batching(self) -> None:
        """Turn mixing off; anything still pooled is flushed immediately.

        Bumps the batching epoch so an already-scheduled boundary flush
        (ours, now moot) cannot fire into a *later* enable's pool and
        release it before its own boundary.
        """
        self._mix_batch_interval = None
        self._mix_epoch += 1
        self._flush_mix_pool()

    def _hold_for_mixing(
        self, next_hop: NextHop, packet, kind: str = "wcl.onion"
    ) -> None:
        interval = self._mix_batch_interval
        if interval is None:
            # Disabled while the peel delay was in flight: forward plainly.
            self._forward(next_hop, packet, kind)
            return
        self._mix_pool.append((packet.trace_id, next_hop, packet, kind))
        self.stats.mix_held += 1
        self.telemetry.counter(
            "wcl.mix_held", node=self.node_id, layer="wcl"
        ).inc()
        if self._mix_flush_scheduled_epoch != self._mix_epoch:
            epoch = self._mix_epoch
            self._mix_flush_scheduled_epoch = epoch
            now = self._sim.now
            boundary = (int(now / interval) + 1) * interval
            self._sim.schedule(
                boundary - now, lambda: self._flush_mix_pool(epoch)
            )

    def _flush_mix_pool(self, epoch: int | None = None) -> None:
        if epoch is not None and epoch != self._mix_epoch:
            # Stale boundary callback from before a disable/re-enable
            # transition: the pool it was scheduled for is gone.
            return
        self._mix_flush_scheduled_epoch = None
        pool, self._mix_pool = self._mix_pool, []
        if not pool:
            return
        for _trace_id, next_hop, packet, kind in sorted(pool, key=lambda h: h[0]):
            self._forward(next_hop, packet, kind)
        self.telemetry.counter(
            "wcl.mix_flushed", node=self.node_id, layer="wcl"
        ).inc(len(pool))

    def _forward(self, next_hop, packet, kind: str = "wcl.onion") -> None:
        if next_hop.public_endpoint is not None:
            descriptor = NodeDescriptor(
                node_id=next_hop.node_id,
                kind=NodeKind.PUBLIC,
                nat_type=NatType.OPEN,
                public_endpoint=next_hop.public_endpoint,
            )
            self.cm.ensure_session(
                descriptor,
                on_ready=lambda: self._forward_via_session(
                    next_hop.node_id, packet, kind
                ),
                on_fail=lambda reason: self._forward_failed(),
            )
        else:
            self._forward_via_session(next_hop.node_id, packet, kind)

    def _forward_via_session(
        self, node_id: NodeId, packet, kind: str = "wcl.onion"
    ) -> None:
        if not self.cm.send_via_session(
            node_id, kind, packet, packet.wire_size, "wcl"
        ):
            self._forward_failed()

    def _forward_failed(self) -> None:
        # A mix cannot report the break without revealing path structure;
        # the source recovers by end-to-end timeout (Table I "Alt." rows).
        self.stats.forward_failures += 1
        self.telemetry.counter(
            "wcl.forward_failures", node=self.node_id, layer="wcl"
        ).inc()

    # ------------------------------------------------------------------
    # circuit mode (amortized RSA: HORNET/Sphinx-style persistent paths)
    # ------------------------------------------------------------------
    def enable_circuits(self, lifetime: float = 600.0) -> None:
        """Amortize path crypto: RSA once at setup, AES-only frames after.

        A ``CircuitSetup`` onion installs per-hop symmetric keys keyed by
        per-link circuit labels; once the destination's ack walks back,
        ``send_to`` to that contact skips :func:`build_onion` entirely and
        emits layered symmetric frames.  ``lifetime`` bounds how long any
        hop honours the keys — the source treats its circuit as expired
        after the same lifetime from *setup emission*, which is strictly
        earlier than any hop's install-time deadline, and rekeys with a
        fresh setup on the next send (rekey-on-refresh).
        """
        if lifetime <= 0:
            raise ValueError(f"circuit lifetime must be positive, got {lifetime}")
        self._circuit_mode = True
        self._circuit_lifetime = lifetime

    def disable_circuits(self) -> None:
        """Back to per-message onions; open circuits are torn down."""
        self._circuit_mode = False
        for circuit in list(self._circuits.values()):
            self._close_source_circuit(circuit, notify=True)

    @property
    def circuit_mode(self) -> bool:
        return self._circuit_mode

    def _try_circuit_send(
        self,
        contact: PrivateContact,
        content: Any,
        content_size: int,
        exclude: set[tuple[NodeId, NodeId]],
        context: str,
        mixes: int,
    ) -> AttemptInfo | None:
        """Send on an established circuit, or lazily initiate one.

        Returns None when the message must go per-message this time —
        because no circuit exists yet (a setup may now be in flight), the
        existing one expired (torn down + rekey initiated), or the caller
        excluded this circuit's mix pair (a timeout implicates the path:
        the circuit is torn down rather than retried).
        """
        circuit = self._circuits.get(contact.node_id)
        now = self._sim.now
        if circuit is not None:
            if (circuit.first_mix, circuit.second_mix) in exclude:
                self._close_source_circuit(circuit, notify=True)
                return None
            if now >= circuit.expires_at:
                self._close_source_circuit(circuit, notify=False)
                self.stats.circuit_rekeys += 1
                self.telemetry.counter(
                    "wcl.circuit_rekeys", node=self.node_id, layer="wcl"
                ).inc()
                circuit = None  # rekey: a fresh setup goes out below
            elif len(circuit.keys) != mixes + 1:
                # A different path length was requested; leave the circuit
                # for its own callers and send this one per-message.
                return None
        if circuit is None:
            self._open_circuit(contact, exclude, context, mixes)
            return None
        if not circuit.established:
            return None
        return self._send_on_circuit(circuit, content, content_size, context)

    def _open_circuit(
        self,
        contact: PrivateContact,
        exclude: set[tuple[NodeId, NodeId]],
        context: str,
        mixes: int,
    ) -> None:
        """Pick a path (same constraints as send_to) and emit the setup."""
        pair = self._select_mixes(contact, exclude)
        if pair is None:
            return
        first, second = pair
        middles = self._select_middle_mixes(
            mixes - 2, forbidden={first.node_id, second.node_id, contact.node_id},
        )
        if len(middles) < mixes - 2:
            return
        dest_endpoint = (
            contact.descriptor.public_endpoint if contact.is_public else None
        )
        path = [HopSpec(first.node_id, first.key)]
        path += [
            HopSpec(
                m.node_id, m.key, public_endpoint=m.descriptor.public_endpoint,
            )
            for m in middles
        ]
        path += [
            HopSpec(
                second.node_id, second.key,
                public_endpoint=second.descriptor.public_endpoint,
            ),
            HopSpec(contact.node_id, contact.key, public_endpoint=dest_endpoint),
        ]
        keys = tuple(self.provider.new_symmetric_key() for _ in path)
        labels = [self._new_circuit_label() for _ in path]
        hops = [
            CircuitHop(
                circuit_id=labels[index],
                key=keys[index],
                next_circuit_id=(
                    labels[index + 1] if index + 1 < len(path) else None
                ),
                lifetime=self._circuit_lifetime,
            )
            for index in range(len(path))
        ]
        build_start_ms = self._charged_ms()
        packet = build_circuit_setup(
            self.provider, path, hops, node=self.node_id, context=f"{context}.csetup",
        )
        build_ms = self._charged_ms() - build_start_ms
        now = self._sim.now
        self._circuits[contact.node_id] = _SourceCircuit(
            contact_id=contact.node_id,
            circuit_id=labels[0],
            keys=keys,
            first_mix=first.node_id,
            second_mix=second.node_id,
            middle_mixes=tuple(m.node_id for m in middles),
            expires_at=now + self._circuit_lifetime,
        )
        self._circuit_by_id[labels[0]] = contact.node_id
        self.stats.circuit_setups += 1
        tel = self.telemetry
        if tel.enabled:
            span = tel.span_start(
                f"{context}.circuit_setup", trace_id=packet.trace_id,
                node=self.node_id, layer="wcl", ms=build_ms, hops=len(path),
            )
            tel.span_end(span, at=now + build_ms / 1000.0)
            tel.counter("wcl.circuit_setups", node=self.node_id, layer="wcl").inc()
        first_mix = first.node_id
        self._sim.schedule(
            build_ms / 1000.0,
            lambda: self.cm.send_via_session(
                first_mix, "wcl.circuit_setup", packet, packet.wire_size, "wcl"
            ),
        )

    def _new_circuit_label(self) -> int:
        """A fresh per-link circuit label (locally collision-checked)."""
        while True:
            label = self._rng.getrandbits(48)
            if label not in self._circuit_by_id and label not in self._relay:
                return label

    def _send_on_circuit(
        self,
        circuit: _SourceCircuit,
        content: Any,
        content_size: int,
        context: str,
    ) -> AttemptInfo:
        """The amortized data path: symmetric layer wrap, no RSA at all."""
        wrap_start_ms = self._charged_ms()
        body = self.provider.wrap_layers(
            list(circuit.keys), content, content_size,
            node=self.node_id, context=context,
        )
        wrap_ms = self._charged_ms() - wrap_start_ms
        frame = CircuitFrame(
            circuit_id=circuit.circuit_id, body=body,
            trace_id=self.provider.next_trace_id(),
        )
        tel = self.telemetry
        if tel.enabled:
            span = tel.span_start(
                f"{context}.cwrap", trace_id=frame.trace_id,
                node=self.node_id, layer="wcl", ms=wrap_ms,
                hops=len(circuit.keys),
            )
            tel.span_end(span, at=self._sim.now + wrap_ms / 1000.0)
            tel.counter("wcl.sent", node=self.node_id, layer="wcl").inc()
            tel.counter("wcl.circuit_sent", node=self.node_id, layer="wcl").inc()
            tel.histogram("wcl.circuit_wrap_ms", layer="wcl").observe(wrap_ms)
        first_mix = circuit.first_mix
        self._sim.schedule(
            wrap_ms / 1000.0,
            lambda: self.cm.send_via_session(
                first_mix, "wcl.circuit_data", frame, frame.wire_size, "wcl"
            ),
        )
        self.stats.sent += 1
        self.stats.circuit_sent += 1
        return AttemptInfo(
            first_mix=circuit.first_mix, second_mix=circuit.second_mix,
            trace_id=frame.trace_id, middle_mixes=circuit.middle_mixes,
        )

    def _close_source_circuit(
        self, circuit: _SourceCircuit, notify: bool
    ) -> None:
        self._circuits.pop(circuit.contact_id, None)
        self._circuit_by_id.pop(circuit.circuit_id, None)
        if notify:
            self.cm.send_via_session(
                circuit.first_mix, "wcl.circuit_teardown",
                {"circuit": circuit.circuit_id}, sizes.circuit_header, "wcl",
            )

    # -- relay/destination side ----------------------------------------
    def handle_circuit_setup(self, peer: NodeId, packet: CircuitSetupPacket) -> None:
        """A setup onion arrived: install per-hop state, forward or ack."""
        tel = self.telemetry
        start_ms = self._charged_ms()
        try:
            layer, forward = peel_setup(
                self.provider, self.keypair, packet,
                node=self.node_id, context="wcl.peel",
            )
        except CryptoError:
            self.stats.misrouted += 1
            tel.counter("wcl.misrouted", node=self.node_id, layer="wcl").inc()
            return
        decrypt_ms = self._charged_ms() - start_ms
        hop = layer.hop
        now = self._sim.now
        self._sweep_expired_relays(now)
        self._relay[hop.circuit_id] = _RelayCircuit(
            key=hop.key,
            next_hop=layer.next_hop,
            next_circuit_id=hop.next_circuit_id,
            prev_peer=peer,
            expires_at=now + hop.lifetime,
        )
        if hop.next_circuit_id is not None:
            self._relay_back[hop.next_circuit_id] = hop.circuit_id
        if tel.enabled:
            span = tel.span_start(
                "wcl.circuit_install", trace_id=packet.trace_id,
                node=self.node_id, layer="wcl", ms=decrypt_ms,
                role="dest" if forward is None else "mix",
            )
            tel.span_end(span, at=now + decrypt_ms / 1000.0)
            tel.counter(
                "wcl.circuit_installed", node=self.node_id, layer="wcl"
            ).inc()
        delay = decrypt_ms / 1000.0
        if forward is None:
            # We are the destination: complete the handshake with an ack
            # walking hop-by-hop back along the reverse labels.
            circuit_id = hop.circuit_id
            self._sim.schedule(
                delay,
                lambda: self.cm.send_via_session(
                    peer, "wcl.circuit_ack",
                    {"circuit": circuit_id}, sizes.circuit_header, "wcl",
                ),
            )
            return
        next_hop = layer.next_hop
        assert next_hop is not None and forward is not None
        # Setup onions are rare control traffic; they bypass batched
        # mixing (which protects the data path's timing).
        self._sim.schedule(
            delay, lambda: self._forward(next_hop, forward, "wcl.circuit_setup")
        )

    def handle_circuit_ack(self, peer: NodeId, payload: dict) -> None:
        """A backward setup ack: mark established, or relay further back."""
        circuit_id = payload["circuit"]
        contact_id = self._circuit_by_id.get(circuit_id)
        if contact_id is not None:
            circuit = self._circuits.get(contact_id)
            if (
                circuit is not None
                and circuit.circuit_id == circuit_id
                and not circuit.established
            ):
                circuit.established = True
                self.telemetry.counter(
                    "wcl.circuit_established", node=self.node_id, layer="wcl"
                ).inc()
            return
        our_label = self._relay_back.get(circuit_id)
        if our_label is None:
            return  # stale or unknown: a mix never complains
        entry = self._relay.get(our_label)
        if entry is None:
            return
        self.cm.send_via_session(
            entry.prev_peer, "wcl.circuit_ack",
            {"circuit": our_label}, sizes.circuit_header, "wcl",
        )

    def handle_circuit_data(self, frame: CircuitFrame) -> None:
        """A data frame: unwrap our layer, deliver or relabel + forward."""
        tel = self.telemetry
        entry = self._relay.get(frame.circuit_id)
        if entry is None:
            # Unknown label: the circuit-mode analogue of an onion that
            # does not open with our key.
            self.stats.misrouted += 1
            tel.counter("wcl.misrouted", node=self.node_id, layer="wcl").inc()
            return
        now = self._sim.now
        if now >= entry.expires_at:
            self._drop_relay_entry(frame.circuit_id, entry)
            self.stats.circuit_expired += 1
            tel.counter(
                "wcl.circuit_expired", node=self.node_id, layer="wcl"
            ).inc()
            return
        start_ms = self._charged_ms()
        try:
            result = self.provider.unwrap_layer(
                entry.key, frame.body, node=self.node_id, context="wcl.cunwrap",
            )
        except CryptoError:
            self.stats.misrouted += 1
            tel.counter("wcl.misrouted", node=self.node_id, layer="wcl").inc()
            return
        unwrap_ms = self._charged_ms() - start_ms
        delay = unwrap_ms / 1000.0
        if tel.enabled:
            span = tel.span_start(
                "wcl.cunwrap", trace_id=frame.trace_id, node=self.node_id,
                layer="wcl", ms=unwrap_ms,
                role="dest" if entry.next_hop is None else "mix",
            )
            tel.span_end(span, at=now + delay)
            tel.histogram("wcl.cunwrap_ms", layer="wcl").observe(unwrap_ms)
        if entry.next_hop is None:
            # We are the destination; the unwrap returned the content.
            self.stats.delivered += 1
            self.stats.circuit_delivered += 1
            if tel.enabled:
                tel.instant(
                    "wcl.delivered", trace_id=frame.trace_id,
                    node=self.node_id, layer="wcl",
                )
                tel.counter("wcl.delivered", node=self.node_id, layer="wcl").inc()
                tel.counter(
                    "wcl.circuit_delivered", node=self.node_id, layer="wcl"
                ).inc()
            if self._receive_upcall is not None:
                upcall = self._receive_upcall
                content, size = result, frame.body.size_bytes
                self._sim.schedule(delay, lambda: upcall(content, size))
            return
        assert isinstance(result, LayeredPayload)
        assert entry.next_circuit_id is not None
        forward = CircuitFrame(
            circuit_id=entry.next_circuit_id, body=result,
            trace_id=frame.trace_id,
        )
        self.stats.forwarded += 1
        self.stats.circuit_forwarded += 1
        tel.counter("wcl.forwarded", node=self.node_id, layer="wcl").inc()
        tel.counter("wcl.circuit_forwarded", node=self.node_id, layer="wcl").inc()
        next_hop = entry.next_hop
        if self._mix_batch_interval is None:
            self._sim.schedule(
                delay, lambda: self._forward(next_hop, forward, "wcl.circuit_data")
            )
        else:
            self._sim.schedule(
                delay,
                lambda: self._hold_for_mixing(next_hop, forward, "wcl.circuit_data"),
            )

    def handle_circuit_teardown(self, payload: dict) -> None:
        """Explicit teardown walking the forward direction."""
        circuit_id = payload["circuit"]
        entry = self._relay.pop(circuit_id, None)
        if entry is None:
            return
        if entry.next_circuit_id is not None:
            self._relay_back.pop(entry.next_circuit_id, None)
        self.telemetry.counter(
            "wcl.circuit_torn_down", node=self.node_id, layer="wcl"
        ).inc()
        if entry.next_hop is None or entry.next_circuit_id is None:
            return
        next_hop, next_label = entry.next_hop, entry.next_circuit_id
        send = lambda: self.cm.send_via_session(  # noqa: E731
            next_hop.node_id, "wcl.circuit_teardown",
            {"circuit": next_label}, sizes.circuit_header, "wcl",
        )
        if next_hop.public_endpoint is not None:
            descriptor = NodeDescriptor(
                node_id=next_hop.node_id,
                kind=NodeKind.PUBLIC,
                nat_type=NatType.OPEN,
                public_endpoint=next_hop.public_endpoint,
            )
            self.cm.ensure_session(
                descriptor, on_ready=send, on_fail=lambda reason: None
            )
        else:
            send()

    def _drop_relay_entry(self, circuit_id: int, entry: _RelayCircuit) -> None:
        self._relay.pop(circuit_id, None)
        if entry.next_circuit_id is not None:
            self._relay_back.pop(entry.next_circuit_id, None)

    def _sweep_expired_relays(self, now: float) -> None:
        """Drop relay entries past their deadline (bounds idle state)."""
        expired = [
            (circuit_id, entry)
            for circuit_id, entry in self._relay.items()
            if now >= entry.expires_at
        ]
        for circuit_id, entry in expired:
            self._drop_relay_entry(circuit_id, entry)

    # ------------------------------------------------------------------
    def _charged_ms(self) -> float:
        """Cumulative CPU ms charged to this node (delta = cost of a step)."""
        return self.provider.accountant.node_total_ms(self.node_id)
