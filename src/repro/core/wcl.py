"""WCL: the WHISPER communication layer (Section III).

Provides the ``sendTo(contact, msg)`` / ``receive(msg)`` API of Fig. 1:
one-way confidential channels over onion paths S -> A -> B -> D, where

- A (first mix) comes from the sender's connection backlog — a node with a
  recently-used bidirectional NAT route;
- B (second mix) must be a P-node that can reach D: one of D's advertised
  gateways when D is natted, or any known P-node when D is public;
- content is encrypted with a fresh symmetric key sealed for D only.

Failures are silent by design (a broken hop cannot notify the source without
breaking anonymity); callers detect them by end-to-end timeout and re-send
with :meth:`WhisperCommunicationLayer.send_to` excluding tried mix pairs —
exactly the retry scheme evaluated in Table I.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable

from ..crypto.provider import CryptoError, CryptoProvider, KeyPair, PublicKey
from ..nat.traversal import ConnectionManager, NodeDescriptor
from ..net.address import Endpoint, NodeId, NodeKind
from ..nat.types import NatType
from ..sim.clock import Clock
from ..telemetry import NULL_TELEMETRY, Telemetry
from .backlog import CbEntry, ConnectionBacklog
from .contact import Gateway, PrivateContact
from .onion import HopSpec, NextHop, OnionPacket, build_onion, peel

__all__ = ["WhisperCommunicationLayer", "AttemptInfo", "WclStats"]

ReceiveUpcall = Callable[[Any, int], None]


@dataclass(frozen=True, slots=True)
class AttemptInfo:
    """Outcome of one path-construction attempt (for retry bookkeeping)."""

    first_mix: NodeId
    second_mix: NodeId  # the next-to-last hop (always a P-node)
    trace_id: int
    middle_mixes: tuple[NodeId, ...] = ()  # extra hops when mixes > 2


@dataclass
class WclStats:
    """Counters for one WCL endpoint."""

    sent: int = 0
    forwarded: int = 0  # onions relayed as a mix
    delivered: int = 0  # onions terminating here
    no_path: int = 0  # send_to found no usable (A, B) pair
    degraded_paths: int = 0  # pair drawn from the widened (PSS-view) pool
    misrouted: int = 0  # header did not open with our key
    forward_failures: int = 0  # next-hop session was gone
    mix_held: int = 0  # forwards pooled by batched mixing (countermeasure)


class WhisperCommunicationLayer:
    """One node's WCL endpoint."""

    def __init__(
        self,
        node_id: NodeId,
        keypair: KeyPair,
        cm: ConnectionManager,
        backlog: ConnectionBacklog,
        provider: CryptoProvider,
        sim: Clock,
        rng: random.Random,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.node_id = node_id
        self.keypair = keypair
        self.cm = cm
        self.backlog = backlog
        self.provider = provider
        self._sim = sim
        self._rng = rng
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.stats = WclStats()
        self._receive_upcall: ReceiveUpcall | None = None
        # Batched mixing (anonymity countermeasure): None = off, the
        # default — the forward path is then byte-identical to a build
        # without the feature.
        self._mix_batch_interval: float | None = None
        self._mix_pool: list[tuple[int, NextHop, OnionPacket]] = []
        self._mix_flush_pending = False

    @property
    def public_key(self) -> PublicKey:
        """This node's circulating WCL identity key."""
        return self.keypair.public

    def set_receive_upcall(self, upcall: ReceiveUpcall) -> None:
        """Register the PPSS (or application) sink for arriving contents."""
        self._receive_upcall = upcall

    # ------------------------------------------------------------------
    # sending (the WCL API's sendTo)
    # ------------------------------------------------------------------
    def send_to(
        self,
        contact: PrivateContact,
        content: Any,
        content_size: int,
        exclude: set[tuple[NodeId, NodeId]] | None = None,
        context: str = "wcl",
        mixes: int = 2,
    ) -> AttemptInfo | None:
        """Build an onion path to ``contact`` and emit the message.

        ``exclude`` lists (first mix, second mix) pairs already tried; the
        selection draws a pair outside it, so callers implement the paper's
        alternative-path retries by accumulating failures.  Returns None
        when no usable pair remains ("No alt." in Table I).

        ``mixes`` sets the path length: the paper's default is 2 (paths of
        exactly four nodes); footnote 2's colluding-attacker extension uses
        f mixes to tolerate f-1 colluders.  Extra mixes are P-nodes from
        the connection backlog inserted between the first mix and the
        next-to-last hop — every hop can reach a P-node directly.
        """
        if mixes < 2:
            raise ValueError(f"a WCL path needs at least 2 mixes, got {mixes}")
        exclude = exclude or set()
        pair = self._select_mixes(contact, exclude)
        if pair is None:
            self.stats.no_path += 1
            self.telemetry.counter("wcl.no_path", node=self.node_id, layer="wcl").inc()
            return None
        first, second = pair
        middles = self._select_middle_mixes(
            mixes - 2, forbidden={first.node_id, second.node_id, contact.node_id},
        )
        if len(middles) < mixes - 2:
            self.stats.no_path += 1
            self.telemetry.counter("wcl.no_path", node=self.node_id, layer="wcl").inc()
            return None
        dest_endpoint = (
            contact.descriptor.public_endpoint if contact.is_public else None
        )
        path = [HopSpec(first.node_id, first.key)]
        path += [
            HopSpec(
                m.node_id, m.key, public_endpoint=m.descriptor.public_endpoint,
            )
            for m in middles
        ]
        path += [
            HopSpec(
                second.node_id, second.key,
                public_endpoint=second.descriptor.public_endpoint,
            ),
            HopSpec(contact.node_id, contact.key, public_endpoint=dest_endpoint),
        ]
        build_start_ms = self._charged_ms()
        packet = build_onion(
            self.provider, path, content, content_size,
            node=self.node_id, context=context,
        )
        build_ms = self._charged_ms() - build_start_ms
        tel = self.telemetry
        if tel.enabled:
            # The span covers the CPU time the build charges: the packet hits
            # the wire exactly when the span closes.
            span = tel.span_start(
                f"{context}.build", trace_id=packet.trace_id,
                node=self.node_id, layer="wcl", ms=build_ms, hops=len(path),
            )
            tel.span_end(span, at=self._sim.now + build_ms / 1000.0)
            tel.counter("wcl.sent", node=self.node_id, layer="wcl").inc()
            tel.histogram("wcl.build_ms", layer="wcl").observe(build_ms)
        # The CPU time spent building the onion delays the transmission.
        self._sim.schedule(
            build_ms / 1000.0,
            lambda: self._emit(first.node_id, packet, context),
        )
        self.stats.sent += 1
        return AttemptInfo(
            first_mix=first.node_id, second_mix=second.node_id,
            trace_id=packet.trace_id,
            middle_mixes=tuple(m.node_id for m in middles),
        )

    def _select_middle_mixes(self, count: int, forbidden: set[NodeId]) -> list:
        """P-nodes from the CB serving as intermediate hops (mixes > 2)."""
        if count <= 0:
            return []
        candidates = [
            e for e in self.backlog.public_entries()
            if e.node_id not in forbidden
        ]
        self._rng.shuffle(candidates)
        return candidates[:count]

    def _emit(self, first_mix: NodeId, packet: OnionPacket, context: str) -> None:
        self.telemetry.instant(
            f"{context}.sent", trace_id=packet.trace_id,
            node=self.node_id, layer="wcl",
        )
        self.cm.send_via_session(
            first_mix, "wcl.onion", packet, packet.wire_size, "wcl"
        )

    def _select_mixes(
        self,
        contact: PrivateContact,
        exclude: set[tuple[NodeId, NodeId]],
    ) -> tuple[object, object] | None:
        """Draw an (A, B) pair honouring the paper's constraints."""
        second_candidates: list[Gateway] = [
            g for g in contact.gateways
            if g.node_id not in (self.node_id, contact.node_id)
        ]
        if contact.is_public:
            # Any known P-node can reach a public destination directly.
            for entry in self.backlog.public_entries():
                if entry.node_id not in (self.node_id, contact.node_id) and all(
                    g.node_id != entry.node_id for g in second_candidates
                ):
                    second_candidates.append(
                        Gateway(descriptor=entry.descriptor, key=entry.key)
                    )
        firsts = self.backlog.first_mix_candidates(
            exclude={self.node_id, contact.node_id}
        )
        self._rng.shuffle(second_candidates)
        self._rng.shuffle(firsts)
        pair = self._pick_pair(firsts, second_candidates, exclude)
        if pair is not None:
            return pair
        # Graceful degradation: when the CB itself is starved — its P-node
        # quorum below Π, e.g. after a partition or a churn burst evicted
        # most entries — widen the pool with PSS-view peers that are just
        # as usable (key known from a gossip exchange, session still open)
        # rather than failing the send outright.  A healthy CB that merely
        # ran out of untried pairs still returns "no_path": there the
        # exclusions, not the backlog, are the binding constraint.
        if self.backlog.count_public() >= self.backlog.pi:
            return None
        widened = self._degraded_pool({self.node_id, contact.node_id})
        if not widened:
            return None
        self._rng.shuffle(widened)
        firsts = firsts + widened
        if contact.is_public:
            for entry in widened:
                if entry.is_public and all(
                    g.node_id != entry.node_id for g in second_candidates
                ):
                    second_candidates.append(
                        Gateway(descriptor=entry.descriptor, key=entry.key)
                    )
        pair = self._pick_pair(firsts, second_candidates, exclude)
        if pair is not None:
            self.stats.degraded_paths += 1
            self.telemetry.counter(
                "wcl.degraded_path", node=self.node_id, layer="wcl"
            ).inc()
        return pair

    @staticmethod
    def _pick_pair(
        firsts: list,
        seconds: list,
        exclude: set[tuple[NodeId, NodeId]],
    ) -> tuple[object, object] | None:
        # Vary the second mix fastest: a stale gateway is the most common
        # failure, so alternatives try a different B before a different A.
        for first in firsts:
            for second in seconds:
                if first.node_id == second.node_id:
                    continue
                if (first.node_id, second.node_id) in exclude:
                    continue
                return first, second
        return None

    def _degraded_pool(self, forbidden: set[NodeId]) -> list[CbEntry]:
        """PSS-view peers usable as emergency mix candidates.

        A view entry qualifies when we learned its public key through a
        gossip exchange *and* still hold an open session towards it — at
        that point it offers exactly what a CB entry offers (a keyed,
        reachable hop), only staler.
        """
        pss = self.backlog.pss
        pool: list[CbEntry] = []
        for entry in pss.view.entries():
            nid = entry.node_id
            if nid in forbidden or nid in self.backlog:
                continue
            key = pss.known_keys.get(nid)
            if key is None or not self.cm.has_session(nid):
                continue
            pool.append(CbEntry(descriptor=entry.descriptor, key=key))
        return pool

    # ------------------------------------------------------------------
    # receiving / forwarding
    # ------------------------------------------------------------------
    def handle_onion(self, packet: OnionPacket) -> None:
        """An onion arrived over one of our sessions: peel, then act."""
        tel = self.telemetry
        decrypt_start_ms = self._charged_ms()
        try:
            layer, forward = peel(
                self.provider, self.keypair, packet,
                node=self.node_id, context="wcl.peel",
            )
        except CryptoError:
            self.stats.misrouted += 1
            tel.counter("wcl.misrouted", node=self.node_id, layer="wcl").inc()
            return
        decrypt_ms = self._charged_ms() - decrypt_start_ms
        if tel.enabled:
            span = tel.span_start(
                "wcl.peel", trace_id=packet.trace_id, node=self.node_id,
                layer="wcl", ms=decrypt_ms,
                role="dest" if forward is None else "mix",
            )
            tel.span_end(span, at=self._sim.now + decrypt_ms / 1000.0)
            tel.histogram("wcl.peel_ms", layer="wcl").observe(decrypt_ms)
        delay = decrypt_ms / 1000.0
        if forward is None:
            # We are the destination: recover the content with k.
            assert layer.key is not None
            try:
                content = self.provider.decrypt_payload(
                    layer.key, packet.body, node=self.node_id, context="wcl.body"
                )
            except CryptoError:
                self.stats.misrouted += 1
                tel.counter("wcl.misrouted", node=self.node_id, layer="wcl").inc()
                return
            self.stats.delivered += 1
            if tel.enabled:
                tel.instant(
                    "wcl.delivered", trace_id=packet.trace_id,
                    node=self.node_id, layer="wcl",
                )
                tel.counter("wcl.delivered", node=self.node_id, layer="wcl").inc()
            if self._receive_upcall is not None:
                upcall = self._receive_upcall
                self._sim.schedule(
                    delay, lambda: upcall(content, packet.body.size_bytes)
                )
            return
        next_hop = layer.next_hop
        assert next_hop is not None
        self.stats.forwarded += 1
        tel.counter("wcl.forwarded", node=self.node_id, layer="wcl").inc()
        if self._mix_batch_interval is None:
            self._sim.schedule(
                delay, lambda: self._forward(next_hop, forward)
            )
        else:
            self._sim.schedule(
                delay, lambda: self._hold_for_mixing(next_hop, forward)
            )

    # ------------------------------------------------------------------
    # batched mixing (anonymity countermeasure)
    # ------------------------------------------------------------------
    def enable_mix_batching(self, interval: float) -> None:
        """Hold-and-flush mixing for forwarded onions.

        Instead of forwarding each onion as soon as it is peeled, the mix
        pools it and releases the whole pool at the next batch boundary —
        a multiple of ``interval`` on the clock, so boundaries are
        deterministic and traces stay byte-identical per seed.  Flushes
        depart in trace-id order, decoupling departure order from arrival
        order: that reordering, plus the severed in/out timing link, is
        what defeats predecessor-style chaining.  Only *relayed* onions
        are held; a sender's own emissions are not (the countermeasure
        lives at WCL relays).
        """
        if interval <= 0:
            raise ValueError(
                f"mix batch interval must be positive, got {interval}"
            )
        self._mix_batch_interval = interval

    def disable_mix_batching(self) -> None:
        """Turn mixing off; anything still pooled is flushed immediately."""
        self._mix_batch_interval = None
        if self._mix_pool:
            self._flush_mix_pool()

    def _hold_for_mixing(self, next_hop: NextHop, packet: OnionPacket) -> None:
        interval = self._mix_batch_interval
        if interval is None:
            # Disabled while the peel delay was in flight: forward plainly.
            self._forward(next_hop, packet)
            return
        self._mix_pool.append((packet.trace_id, next_hop, packet))
        self.stats.mix_held += 1
        self.telemetry.counter(
            "wcl.mix_held", node=self.node_id, layer="wcl"
        ).inc()
        if not self._mix_flush_pending:
            self._mix_flush_pending = True
            now = self._sim.now
            boundary = (int(now / interval) + 1) * interval
            self._sim.schedule(boundary - now, self._flush_mix_pool)

    def _flush_mix_pool(self) -> None:
        self._mix_flush_pending = False
        pool, self._mix_pool = self._mix_pool, []
        if not pool:
            return
        for _trace_id, next_hop, packet in sorted(pool, key=lambda h: h[0]):
            self._forward(next_hop, packet)
        self.telemetry.counter(
            "wcl.mix_flushed", node=self.node_id, layer="wcl"
        ).inc(len(pool))

    def _forward(self, next_hop, packet: OnionPacket) -> None:
        if next_hop.public_endpoint is not None:
            descriptor = NodeDescriptor(
                node_id=next_hop.node_id,
                kind=NodeKind.PUBLIC,
                nat_type=NatType.OPEN,
                public_endpoint=next_hop.public_endpoint,
            )
            self.cm.ensure_session(
                descriptor,
                on_ready=lambda: self._forward_via_session(next_hop.node_id, packet),
                on_fail=lambda reason: self._forward_failed(),
            )
        else:
            self._forward_via_session(next_hop.node_id, packet)

    def _forward_via_session(self, node_id: NodeId, packet: OnionPacket) -> None:
        if not self.cm.send_via_session(
            node_id, "wcl.onion", packet, packet.wire_size, "wcl"
        ):
            self._forward_failed()

    def _forward_failed(self) -> None:
        # A mix cannot report the break without revealing path structure;
        # the source recovers by end-to-end timeout (Table I "Alt." rows).
        self.stats.forward_failures += 1
        self.telemetry.counter(
            "wcl.forward_failures", node=self.node_id, layer="wcl"
        ).inc()

    # ------------------------------------------------------------------
    def _charged_ms(self) -> float:
        """Cumulative CPU ms charged to this node (delta = cost of a step)."""
        return self.provider.accountant.node_total_ms(self.node_id)
