"""Private contact records: how PPSS entries describe reachable members.

A :class:`PrivateContact` carries everything a source needs to build a WCL
path to a group member (Section IV-B): the member's identity and public key,
and — for N-node members — Π P-node *gateways* (identity + public key pairs)
usable as the next-to-last hop, because those P-nodes hold an open
NAT-traversed session towards the member.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..crypto.provider import PublicKey
from ..nat.traversal import NodeDescriptor
from ..net.address import NodeId
from ..net.message import sizes

__all__ = ["Gateway", "PrivateContact"]


@dataclass(frozen=True, slots=True)
class Gateway:
    """A P-node that can reach the contact directly (next-to-last hop B)."""

    descriptor: NodeDescriptor
    key: PublicKey

    @property
    def node_id(self) -> NodeId:
        return self.descriptor.node_id

    @property
    def is_public(self) -> bool:
        return self.descriptor.is_public


@dataclass(frozen=True, slots=True)
class PrivateContact:
    """A confidentially-reachable group member."""

    descriptor: NodeDescriptor
    key: PublicKey
    gateways: tuple[Gateway, ...] = ()

    @property
    def node_id(self) -> NodeId:
        """Identity of the member this contact reaches."""
        return self.descriptor.node_id

    @property
    def is_public(self) -> bool:
        """Whether the member is directly reachable (P-node)."""
        return self.descriptor.is_public

    def wire_size(self) -> int:
        """Serialized size (Section V-E: N-node entries carry Π keys)."""
        return sizes.private_view_entry(len(self.gateways))

    def with_gateways(self, gateways: tuple[Gateway, ...]) -> "PrivateContact":
        return replace(self, gateways=gateways)
