"""WHISPER core: connection backlog, onion WCL, private groups, PPSS."""

from .backlog import CbEntry, ConnectionBacklog
from .contact import Gateway, PrivateContact
from .election import Heartbeat, LeaderElection, Proposal, proposal_value
from .group import (
    Accreditation,
    GroupKeyring,
    Invitation,
    Passport,
    issue_accreditation,
    issue_passport,
)
from .node import WhisperConfig, WhisperNode
from .onion import HopSpec, NextHop, OnionLayer, OnionPacket, build_onion, peel
from .ppss import (
    MemberState,
    PpssConfig,
    PpssStats,
    PrivatePeerSamplingService,
    PrivateViewEntry,
)
from .sampling import BoundedParetoSampler, ZipfSampler
from .wcl import AttemptInfo, WclStats, WhisperCommunicationLayer

__all__ = [
    "Accreditation",
    "AttemptInfo",
    "BoundedParetoSampler",
    "CbEntry",
    "ConnectionBacklog",
    "Gateway",
    "GroupKeyring",
    "Heartbeat",
    "HopSpec",
    "Invitation",
    "LeaderElection",
    "MemberState",
    "NextHop",
    "OnionLayer",
    "OnionPacket",
    "Passport",
    "PpssConfig",
    "PpssStats",
    "PrivateContact",
    "PrivatePeerSamplingService",
    "PrivateViewEntry",
    "Proposal",
    "WclStats",
    "WhisperCommunicationLayer",
    "WhisperConfig",
    "WhisperNode",
    "ZipfSampler",
    "build_onion",
    "issue_accreditation",
    "issue_passport",
    "peel",
    "proposal_value",
]
