"""A small bounded LRU map shared by the stack's lookup caches.

PR 4 introduced several memoization dicts on hot paths (descriptor
lookups, latency pair bases, owner hints) that grew without bound for the
lifetime of a :class:`~repro.harness.world.World`; the wire codec's encode
cache joins them in this PR.  All of them now sit on :class:`LruCache`: a
plain insertion-ordered dict with move-to-front on hit and
evict-the-oldest past ``capacity``, plus hit/miss counters that the owning
layer can publish as ``<name>.cache_hit`` / ``<name>.cache_miss``
telemetry counters (see :meth:`publish`).

Eviction is deterministic (pure LRU, no clocks), so a bounded cache keeps
the same-seed byte-identical-trace guarantee: two runs touch the caches in
the same order and therefore evict the same keys.
"""

from __future__ import annotations

from typing import Any, Iterator

__all__ = ["LruCache"]


class LruCache:
    """Bounded mapping with least-recently-used eviction and counters."""

    __slots__ = ("capacity", "hits", "misses", "evictions", "_data",
                 "_published_hits", "_published_misses")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"LruCache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: dict[Any, Any] = {}
        self._published_hits = 0
        self._published_misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[Any]:
        return iter(self._data)

    def keys(self):
        return self._data.keys()

    def values(self):
        return self._data.values()

    def items(self):
        return self._data.items()

    def get(self, key: Any, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency on a hit."""
        data = self._data
        value = data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        # Move-to-front: dicts preserve insertion order, so re-inserting
        # makes this key the newest entry.
        del data[key]
        data[key] = value
        return value

    def lookup(self, key: Any, default: Any = None) -> Any:
        """Counted lookup without the move-to-front recency update.

        For caches whose capacity is derived to exceed the working set
        (owner hints, latency load factors at world scale) the recency
        bookkeeping is pure overhead: eviction never fires, so recency
        order is unobservable.  Hit/miss counters behave exactly like
        :meth:`get`; if such a cache ever does overflow, eviction order
        degrades from LRU to FIFO-of-insertion, which is still
        deterministic.
        """
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        return value

    def peek(self, key: Any, default: Any = None) -> Any:
        """Look up ``key`` without touching recency or counters."""
        return self._data.get(key, default)

    def put(self, key: Any, value: Any) -> None:
        data = self._data
        if key in data:
            del data[key]
        elif len(data) >= self.capacity:
            del data[next(iter(data))]
            self.evictions += 1
        data[key] = value

    def clear(self) -> None:
        self._data.clear()

    def publish(self, telemetry: Any, name: str, **labels: object) -> None:
        """Increment ``<name>.cache_hit`` / ``<name>.cache_miss`` counters.

        Incremental: only the delta since the previous publish is added, so
        hot paths can call this on every telemetry-enabled operation without
        double counting.  No-ops (two int compares) when nothing changed.
        """
        hits, misses = self.hits, self.misses
        if hits != self._published_hits:
            telemetry.counter(f"{name}.cache_hit", **labels).inc(
                hits - self._published_hits
            )
            self._published_hits = hits
        if misses != self._published_misses:
            telemetry.counter(f"{name}.cache_miss", **labels).inc(
                misses - self._published_misses
            )
            self._published_misses = misses


_MISSING = object()
