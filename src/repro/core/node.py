"""WhisperNode: the full protocol stack of Fig. 1 assembled on one node.

Layering (bottom-up), with the dispatch glue between them:

- fabric messages (``nat.*``) -> :class:`ConnectionManager` (Nylon traversal)
- session payloads -> PSS gossip, CB probes, or WCL onions by kind
- WCL-delivered confidential contents -> the PPSS instance of the target
  group (each group is managed by a separate instance, so memberships are
  never disclosed across groups)
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..crypto.provider import CryptoProvider
from ..nat.traversal import ConnectionManager, NodeDescriptor, TraversalPolicy
from ..nat.types import NatType
from ..net.address import NodeId
from ..net.message import Message
from ..net.network import Network
from ..pss.gossip import PeerSamplingService, PssConfig
from ..pss.policies import BiasedHealerPolicy
from ..sim.clock import Clock
from ..telemetry import NULL_TELEMETRY, Telemetry
from .backlog import ConnectionBacklog
from .group import Invitation
from .ppss import PpssConfig, PrivatePeerSamplingService
from .wcl import WhisperCommunicationLayer

__all__ = ["WhisperConfig", "WhisperNode"]


@dataclass(frozen=True)
class WhisperConfig:
    """Stack-wide knobs; defaults are the paper's experimental settings."""

    pi: int = 3
    pss: PssConfig = field(
        default_factory=lambda: PssConfig(exchange_keys=True)
    )
    ppss: PpssConfig = field(default_factory=PpssConfig)
    traversal: TraversalPolicy = field(default_factory=TraversalPolicy)
    # Circuit mode (amortized RSA): off by default — the paper's WCL is
    # per-message onions; circuits are the evaluated optimisation.
    circuit_mode: bool = False
    circuit_lifetime: float = 600.0


class WhisperNode:
    """One participant: identity keypair, Nylon PSS, CB, WCL, private groups."""

    def __init__(
        self,
        node_id: NodeId,
        nat_type: NatType,
        sim: Clock,
        network: Network,
        provider: CryptoProvider,
        rng: random.Random,
        config: WhisperConfig | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.node_id = node_id
        self.nat_type = nat_type
        self._sim = sim
        self._network = network
        self.provider = provider
        self._rng = rng
        self.config = config if config is not None else WhisperConfig()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.keypair = provider.generate_keypair()
        self.cm = ConnectionManager(
            node_id, nat_type, sim, network,
            policy=self.config.traversal,
            deliver_upcall=self._from_session,
            telemetry=self.telemetry,
        )
        self.pss = PeerSamplingService(
            node_id, self.cm, sim, rng,
            config=self.config.pss,
            policy=BiasedHealerPolicy(
                self.config.pss.view_size, self.config.pi, rng=rng
            ),
            public_key=self.keypair.public,
            telemetry=self.telemetry,
        )
        self.backlog = ConnectionBacklog(
            node_id, self.cm, self.pss, rng, pi=self.config.pi
        )
        # Nodes the PSS failure detector gives up on make bad mixes.
        self.pss.add_failure_listener(self.backlog.remove)
        # ... and so do peers whose sessions the keepalive prober evicted.
        self.cm.add_evict_listener(self.backlog.on_session_evicted)
        self.wcl = WhisperCommunicationLayer(
            node_id, self.keypair, self.cm, self.backlog, provider, sim, rng,
            telemetry=self.telemetry,
        )
        self.wcl.set_receive_upcall(self._from_wcl)
        if self.config.circuit_mode:
            self.wcl.enable_circuits(self.config.circuit_lifetime)
        self.groups: dict[str, PrivatePeerSamplingService] = {}
        self.unknown_group_messages = 0
        self.alive = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, introducers: list[NodeDescriptor]) -> None:
        """Attach to the network and bootstrap the system-wide PSS."""
        self._network.attach(self.node_id, self._on_fabric)
        self.pss.init(introducers)
        self.cm.start_keepalive()
        self.alive = True

    def stop(self) -> None:
        """Graceful local shutdown (protocol tasks stop, no goodbyes sent)."""
        self.alive = False
        self.cm.stop_keepalive()
        self.backlog.stop()
        self.pss.stop()
        for ppss in self.groups.values():
            ppss.leave()
        self._network.detach(self.node_id)

    def kill(self) -> None:
        """Abrupt failure (churn): vanish without stopping cleanly first."""
        self.stop()

    def descriptor(self) -> NodeDescriptor:
        return self.cm.descriptor()

    # ------------------------------------------------------------------
    # group API (Fig. 1: createGroup / joinGroup / getPeer / makePersistent)
    # ------------------------------------------------------------------
    def create_group(
        self, name: str, config: PpssConfig | None = None
    ) -> PrivatePeerSamplingService:
        """Found a private group; this node becomes its first leader."""
        if name in self.groups:
            raise ValueError(f"already a member of group {name!r}")
        ppss = self._new_ppss(name, config)
        ppss.create()
        self.groups[name] = ppss
        return ppss

    def join_group(
        self, invitation: Invitation, config: PpssConfig | None = None
    ) -> PrivatePeerSamplingService:
        """Redeem an invitation (asynchronously; see PPSS state)."""
        if invitation.group in self.groups:
            raise ValueError(f"already joining/member of {invitation.group!r}")
        ppss = self._new_ppss(invitation.group, config)
        ppss.join(invitation)
        self.groups[invitation.group] = ppss
        return ppss

    def group(self, name: str) -> PrivatePeerSamplingService:
        return self.groups[name]

    def leave_group(self, name: str) -> None:
        ppss = self.groups.pop(name, None)
        if ppss is not None:
            ppss.leave()

    def _new_ppss(
        self, name: str, config: PpssConfig | None
    ) -> PrivatePeerSamplingService:
        return PrivatePeerSamplingService(
            group=name,
            node_id=self.node_id,
            wcl=self.wcl,
            backlog=self.backlog,
            provider=self.provider,
            sim=self._sim,
            rng=self._rng,
            config=config if config is not None else self.config.ppss,
            telemetry=self.telemetry,
        )

    # ------------------------------------------------------------------
    # dispatch plumbing
    # ------------------------------------------------------------------
    def _on_fabric(self, message: Message) -> None:
        if message.kind.startswith("nat."):
            self.cm.handle_message(message)

    def _from_session(self, peer: NodeId, kind: str, payload: object, size: int) -> None:
        if kind.startswith("pss."):
            self.pss.handle_message(peer, kind, payload)
        elif kind == "wcl.onion":
            self.wcl.handle_onion(payload)
        elif kind == "wcl.circuit_setup":
            self.wcl.handle_circuit_setup(peer, payload)
        elif kind == "wcl.circuit_data":
            self.wcl.handle_circuit_data(payload)
        elif kind == "wcl.circuit_ack":
            self.wcl.handle_circuit_ack(peer, payload)
        elif kind == "wcl.circuit_teardown":
            self.wcl.handle_circuit_teardown(payload)
        elif kind == "wcl.cb_probe":
            self.backlog.on_probe(peer, payload, self.keypair.public)
        elif kind == "wcl.cb_probe_ack":
            self.backlog.on_probe_ack(peer, payload)

    def _from_wcl(self, content: object, size: int) -> None:
        if not isinstance(content, dict):
            return
        group = content.get("group")
        ppss = self.groups.get(group)
        if ppss is None:
            # Either not ours or for a group we do not belong to: a member
            # never reveals whether it recognised the group.
            self.unknown_group_messages += 1
            return
        ppss.handle_message(content, size)
