"""Seeded heavy-tail samplers for workload generation.

Application traffic is not uniform: DHT lookups concentrate on popular
keys (the classic Zipf shape measured in deployed P2P systems), and flow
sizes follow bounded power laws.  The workload subsystem
(:mod:`repro.workload`) draws both from the samplers here.

Determinism contract: a sampler consumes *only* the ``random.Random``
instance it was given, draws exactly one ``random()`` double per sample,
and maps it through a precomputed table with pure float arithmetic — so
two same-seed runs produce byte-identical sample streams on every
platform CPython supports (the Mersenne Twister double stream and IEEE-754
arithmetic are both platform-stable).  ``tests/test_sampling.py`` pins
exact sequences to hold the contract.
"""

from __future__ import annotations

import random
from bisect import bisect_left

__all__ = ["ZipfSampler", "BoundedParetoSampler"]


class ZipfSampler:
    """Zipf-distributed ranks over ``{1, .., n}``: P(k) proportional to 1/k**s.

    Sampling inverts the precomputed cumulative distribution with a binary
    search — O(log n) per draw, one RNG double consumed, no rejection loop
    (rejection sampling draws a data-dependent number of doubles, which
    would make downstream RNG consumption depend on earlier samples and
    ruin cross-run trace comparisons when parameters change).
    """

    __slots__ = ("n", "exponent", "_rng", "_cdf")

    def __init__(self, n: int, exponent: float = 1.1, rng: random.Random | None = None) -> None:
        if n < 1:
            raise ValueError(f"ZipfSampler needs n >= 1, got {n}")
        if exponent <= 0:
            raise ValueError(f"Zipf exponent must be positive, got {exponent}")
        self.n = n
        self.exponent = exponent
        self._rng = rng if rng is not None else random.Random(0)
        weights = [1.0 / (k ** exponent) for k in range(1, n + 1)]
        total = 0.0
        cdf = []
        for w in weights:
            total += w
            cdf.append(total)
        # Normalize in place; force the final entry to exactly 1.0 so a
        # random() draw of 0.999... can never fall past the table.
        self._cdf = [c / total for c in cdf]
        self._cdf[-1] = 1.0

    def sample(self) -> int:
        """One rank in ``[1, n]``; rank 1 is the most popular."""
        u = self._rng.random()
        return bisect_left(self._cdf, u) + 1

    def sample_many(self, count: int) -> list[int]:
        return [self.sample() for _ in range(count)]

    def probability(self, rank: int) -> float:
        """The exact model probability of ``rank`` (for shape tests)."""
        if not 1 <= rank <= self.n:
            raise ValueError(f"rank out of range: {rank}")
        lo = self._cdf[rank - 2] if rank >= 2 else 0.0
        return self._cdf[rank - 1] - lo


class BoundedParetoSampler:
    """Bounded Pareto over ``[low, high]`` with tail index ``alpha``.

    The standard inverse-CDF transform::

        x = (-(u*H**a - u*L**a - H**a) / (H**a * L**a)) ** (-1/a)

    One ``random()`` double per sample; the result is clamped into
    ``[low, high]`` to absorb float rounding at the boundaries.
    """

    __slots__ = ("low", "high", "alpha", "_rng", "_la", "_ha")

    def __init__(
        self,
        low: float,
        high: float,
        alpha: float = 1.5,
        rng: random.Random | None = None,
    ) -> None:
        if low <= 0 or high <= low:
            raise ValueError(f"need 0 < low < high, got [{low}, {high}]")
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.low = low
        self.high = high
        self.alpha = alpha
        self._rng = rng if rng is not None else random.Random(0)
        self._la = low ** alpha
        self._ha = high ** alpha

    def sample(self) -> float:
        u = self._rng.random()
        la, ha = self._la, self._ha
        x = (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / self.alpha)
        if x < self.low:
            return self.low
        if x > self.high:
            return self.high
        return x

    def sample_many(self, count: int) -> list[float]:
        return [self.sample() for _ in range(count)]
