"""WHISPER: middleware for confidential communication in large-scale networks.

A full Python reproduction of Schiavoni, Riviere & Felber (ICDCS 2011):
NAT-resilient peer sampling (Nylon), the WHISPER communication layer (onion
routes without trusted third parties), the private peer sampling service
(confidential group membership), and the T-Chord application — all running
on a deterministic discrete-event simulation substrate.

Quick start::

    from repro import World, WorldConfig

    world = World(WorldConfig(seed=1))
    world.populate(100)
    world.start_all()
    world.run(120.0)                      # let the PSS converge
    alice, bob = world.alive_nodes()[:2]
    group = alice.create_group("friends")
    bob.join_group(group.invite(bob.node_id))
    world.run(120.0)                      # the join completes over WCL
"""

from .core import (
    Invitation,
    PpssConfig,
    PrivateContact,
    PrivatePeerSamplingService,
    WhisperConfig,
    WhisperNode,
)
from .harness import World, WorldConfig
from .telemetry import Telemetry

__version__ = "1.0.0"

__all__ = [
    "Invitation",
    "PpssConfig",
    "PrivateContact",
    "PrivatePeerSamplingService",
    "Telemetry",
    "WhisperConfig",
    "WhisperNode",
    "World",
    "WorldConfig",
    "__version__",
]
