"""Deterministic heavy-traffic workload subsystem (open-loop generators).

The workload package drives application traffic over the deployed WHISPER
stack — constant-bitrate streams inside private groups, Zipf-popular
T-Chord lookups, flash-crowd joins, hundreds of concurrent groups — while
keeping the repo's determinism contract: same seed ⇒ byte-identical
telemetry, at any worker count, because every random draw derives from the
workload seed and arrivals ride the deterministic clock.

Layering:

- :mod:`.spec` — frozen traffic-model descriptions (what to offer);
- :mod:`.driver` — clock-agnostic open-loop scheduling + per-stream
  accounting (how to offer it and what happened);
- :mod:`.attach` — binding a spec to a :class:`~repro.harness.world.World`
  (groups, rings, sinks, joiners);
- :mod:`.scenarios` — the named catalogue used by ``repro.experiments
  load`` and ``bench_load``.
"""

from .driver import OpenLoopStream, StreamAccount, WorkloadDriver
from .scenarios import SCENARIOS, build_scenario, world_size
from .spec import (
    CbrStreams,
    CoverTraffic,
    FlashCrowd,
    WorkloadSpec,
    ZipfLookups,
)

__all__ = [
    "CbrStreams",
    "CoverTraffic",
    "FlashCrowd",
    "OpenLoopStream",
    "SCENARIOS",
    "StreamAccount",
    "WorkloadDriver",
    "WorkloadSpec",
    "ZipfLookups",
    "build_scenario",
    "world_size",
]
