"""Open-loop workload driver: offered load on a clock, accounting on the side.

The driver is the *mechanism* half of the subsystem: it turns interarrival
processes into scheduled emission callbacks and keeps per-stream delivery
accounts.  It is deliberately clock-agnostic — anything satisfying the
:class:`repro.sim.clock.Clock` protocol works, so the same driver runs on
the discrete-event :class:`~repro.sim.engine.Simulator` and on the live
:class:`~repro.runtime.clock.AsyncioScheduler` unchanged.

Open-loop means arrivals are scheduled from the arrival process alone:
the next emission goes on the clock *before* the current one is resolved,
and nothing about delivery failures, timeouts or backpressure delays it.
That is the property that makes saturation measurable — a closed-loop
generator would slow itself down and hide the overload.  Each stream
tracks its cadence on an **absolute** schedule (``start + k*interval``
via ``schedule_at``), so float drift cannot accumulate across thousands
of packets.

Accounting vocabulary (per stream and driver-wide):

- *offered*: arrivals the process generated (scheduled emissions fired);
- *emitted*: offered arrivals whose send action was actually attempted
  (a stream whose sender is dead can offer without emitting);
- *completed*: operations confirmed finished (packet delivered, lookup
  answered, join reached MEMBER);
- *failed*: operations confirmed dead (timeout, error callback);
- *lag*: ``offered - completed - failed`` — in-flight depth when the
  system keeps up, a monotonically growing debt when it does not.  This
  is the open-loop lag gauge (``workload.lag``).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable

from ..parallel import derive_seed

if TYPE_CHECKING:
    from ..sim.clock import Cancellable, Clock
    from ..telemetry import Telemetry

__all__ = ["StreamAccount", "OpenLoopStream", "WorkloadDriver"]


class StreamAccount:
    """Exact per-stream ledger; the report layer reads these fields."""

    __slots__ = (
        "sid", "kind", "offered", "emitted", "completed", "failed",
        "bytes_offered", "bytes_delivered", "first_at", "last_completion_at",
    )

    def __init__(self, sid: str, kind: str) -> None:
        self.sid = sid
        self.kind = kind
        self.offered = 0
        self.emitted = 0
        self.completed = 0
        self.failed = 0
        self.bytes_offered = 0
        self.bytes_delivered = 0
        self.first_at: float | None = None
        self.last_completion_at: float | None = None

    @property
    def resolved(self) -> int:
        return self.completed + self.failed

    @property
    def lag(self) -> int:
        return self.offered - self.resolved

    @property
    def delivery_ratio(self) -> float:
        return self.completed / self.offered if self.offered else 0.0

    def goodput(self, now: float) -> float:
        """Delivered bytes per second over the stream's active window."""
        if self.first_at is None or self.bytes_delivered == 0:
            return 0.0
        end = self.last_completion_at if self.last_completion_at is not None else now
        window = end - self.first_at
        if window <= 0:
            return float(self.bytes_delivered)
        return self.bytes_delivered / window


class OpenLoopStream:
    """One arrival process: emit ``action`` on an absolute-time cadence.

    ``interval`` is either a float (constant bitrate) or a zero-argument
    callable returning the next gap (e.g. exponential draws for Poisson
    arrivals) — the callable pulls from the stream's private RNG stream,
    so arrival processes across streams never interleave entropy.  The
    stream stops after ``count`` arrivals or once the next arrival would
    land past ``until``, whichever comes first.
    """

    __slots__ = (
        "sid", "driver", "action", "interval", "count", "until",
        "rng", "_emitted_seq", "_start", "_next_at", "_epoch",
        "_handle", "_done",
    )

    def __init__(
        self,
        sid: str,
        driver: "WorkloadDriver",
        action: Callable[[int, float], bool],
        interval: float | Callable[[], float],
        start: float,
        count: int | None = None,
        until: float | None = None,
    ) -> None:
        if count is None and until is None:
            raise ValueError(f"stream {sid}: need a count or until stop condition")
        self.sid = sid
        self.driver = driver
        self.action = action
        self.interval = interval
        self.count = count
        self.until = until
        self.rng = random.Random(derive_seed(driver.seed, "stream", sid))
        self._emitted_seq = 0
        self._start = start
        self._next_at = start
        self._epoch = 0.0  # clock time at arm(); stream times are relative to it
        self._handle: "Cancellable | None" = None
        self._done = False

    @property
    def done(self) -> bool:
        return self._done

    def arm(self) -> None:
        """Anchor the cadence at the clock's current time and schedule.

        Spec times (``start``, ``until``) are relative to arming, so the
        same spec works whether the world armed it at t=0 or after a long
        convergence phase.
        """
        self._epoch = self.driver.clock.now
        self._next_at = self._start
        self._schedule()

    def stop(self) -> None:
        self._done = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _gap(self) -> float:
        gap = self.interval() if callable(self.interval) else self.interval
        if gap <= 0:
            raise ValueError(f"stream {self.sid}: non-positive interarrival {gap}")
        return gap

    def _schedule(self) -> None:
        if self._done:
            return
        if self.count is not None and self._emitted_seq >= self.count:
            self._done = True
            return
        if self.until is not None and self._next_at > self.until:
            self._done = True
            return
        # The target stays on the absolute grid (epoch + k*interval), but
        # the wait is issued as a clamped *delay*: on a wall clock the loop
        # can run late — or advance between two `now` reads — leaving the
        # target in the past, and a strict schedule_at would raise.  Firing
        # immediately without shifting _next_at preserves the open-loop
        # rate; on the simulator the clamp never engages and the event
        # lands exactly at the target time.
        delay = max(0.0, self._epoch + self._next_at - self.driver.clock.now)
        self._handle = self.driver.clock.schedule(delay, self._fire)

    def _fire(self) -> None:
        self._handle = None
        seq = self._emitted_seq
        self._emitted_seq += 1
        now = self.driver.clock.now
        # Open-loop: the *next* arrival goes on the clock before this one's
        # action runs, so a slow or failing action can never throttle the
        # offered load.
        self._next_at = self._next_at + self._gap()
        self._schedule()
        self.driver._on_arrival(self.sid, seq, now, self.action)


class WorkloadDriver:
    """Owns the streams, the accounts, and the telemetry instruments."""

    def __init__(self, clock: "Clock", telemetry: "Telemetry", seed: int) -> None:
        self.clock = clock
        self.telemetry = telemetry
        self.seed = seed
        self.streams: dict[str, OpenLoopStream] = {}
        self.accounts: dict[str, StreamAccount] = {}
        self._lag_gauge = telemetry.metrics.gauge("workload.lag", layer="workload")

    # ------------------------------------------------------------------
    # stream lifecycle
    # ------------------------------------------------------------------
    def add_stream(
        self,
        sid: str,
        kind: str,
        action: Callable[[int, float], bool],
        interval: float | Callable[[], float],
        start: float = 0.0,
        count: int | None = None,
        until: float | None = None,
    ) -> OpenLoopStream:
        """Register a stream; ``action(seq, now) -> emitted?`` does the send.

        The action returns True when it actually attempted the operation
        (the arrival then counts as *emitted*) and False when it could not
        (dead sender, missing group) — the arrival stays *offered* either
        way, and un-emitted arrivals are immediately accounted as failed.
        """
        if sid in self.streams:
            raise ValueError(f"duplicate stream id {sid!r}")
        stream = OpenLoopStream(sid, self, action, interval, start, count, until)
        self.streams[sid] = stream
        self.accounts[sid] = StreamAccount(sid, kind)
        return stream

    def arm(self) -> None:
        """Put every stream's first arrival on the clock."""
        for sid in sorted(self.streams):
            self.streams[sid].arm()

    def stop(self) -> None:
        for stream in self.streams.values():
            stream.stop()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _on_arrival(
        self,
        sid: str,
        seq: int,
        now: float,
        action: Callable[[int, float], bool],
    ) -> None:
        account = self.accounts[sid]
        account.offered += 1
        if account.first_at is None:
            account.first_at = now
        metrics = self.telemetry.metrics
        metrics.counter(
            "workload.offered", stream=sid, kind=account.kind, layer="workload"
        ).inc()
        self._lag_gauge.add(1)
        if action(seq, now):
            account.emitted += 1
            metrics.counter(
                "workload.emitted", stream=sid, kind=account.kind, layer="workload"
            ).inc()
        else:
            # Could not even attempt the operation — resolve it as failed
            # right away so lag only measures genuinely in-flight work.
            self._resolve(account, now, ok=False, nbytes=0, latency=None)

    def note_completion(
        self,
        sid: str,
        latency: float | None = None,
        nbytes: int = 0,
        ok: bool = True,
    ) -> None:
        """Record the outcome of one in-flight operation on stream ``sid``."""
        account = self.accounts[sid]
        self._resolve(account, self.clock.now, ok=ok, nbytes=nbytes, latency=latency)

    def _resolve(
        self,
        account: StreamAccount,
        now: float,
        ok: bool,
        nbytes: int,
        latency: float | None,
    ) -> None:
        metrics = self.telemetry.metrics
        if ok:
            account.completed += 1
            account.last_completion_at = now
            account.bytes_delivered += nbytes
            metrics.counter(
                "workload.completed",
                stream=account.sid, kind=account.kind, layer="workload",
            ).inc()
            if nbytes:
                metrics.counter(
                    "workload.delivered_bytes",
                    stream=account.sid, kind=account.kind, layer="workload",
                ).inc(nbytes)
            if latency is not None:
                metrics.histogram(
                    "workload.latency",
                    stream=account.sid, kind=account.kind, layer="workload",
                ).observe(latency)
        else:
            account.failed += 1
            metrics.counter(
                "workload.dropped",
                stream=account.sid, kind=account.kind, layer="workload",
            ).inc()
        self._lag_gauge.add(-1)

    def note_offered_bytes(self, sid: str, nbytes: int) -> None:
        self.accounts[sid].bytes_offered += nbytes

    # ------------------------------------------------------------------
    # driver-wide views
    # ------------------------------------------------------------------
    @property
    def offered(self) -> int:
        return sum(a.offered for a in self.accounts.values())

    @property
    def completed(self) -> int:
        return sum(a.completed for a in self.accounts.values())

    @property
    def failed(self) -> int:
        return sum(a.failed for a in self.accounts.values())

    @property
    def lag(self) -> int:
        """Offered-but-unresolved operations across all streams."""
        return sum(a.lag for a in self.accounts.values())

    def accounts_by_kind(self, kind: str) -> list[StreamAccount]:
        return [
            self.accounts[sid]
            for sid in sorted(self.accounts)
            if self.accounts[sid].kind == kind
        ]
