"""Workload specifications: *what* traffic to offer, declared as data.

A :class:`WorkloadSpec` bundles a group deployment shape (how many PPSS
groups, how many members each) with a tuple of traffic models.  Four
models cover the load shapes confidential-messaging middleware must carry:

- :class:`CbrStreams` — constant-bitrate streams inside private groups,
  the DC-nets VoIP shape (fixed packet cadence, fixed payload);
- :class:`ZipfLookups` — T-Chord lookups whose keys follow a Zipf
  popularity law (heavy head, long tail) with Poisson arrivals;
- :class:`FlashCrowd` — a burst of group-join attempts compressed into a
  short window (the "everyone joins the channel at once" event);
- :class:`CoverTraffic` — decoy CBR per group member, the anonymity
  countermeasure ablated by the ``anonymity`` experiment: not payload but
  chaff, emitted so a traffic-analysis adversary cannot tell active
  senders from idle members;
- multi-group mode is not a separate model: a spec with hundreds of
  ``groups`` and one stream per group *is* the concurrent-groups
  workload (see :mod:`repro.workload.scenarios`).

A spec can also switch on batched mixing at WCL relays
(``mix_batch_interval``), the second anonymity countermeasure — a
deployment knob rather than a traffic model, carried here so ablation
variants stay picklable sweep points.

Specs are frozen and picklable, so sweep workers can receive them, and
carry no RNG state — every random decision downstream derives from the
driver seed via :func:`repro.parallel.derive_seed`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "CbrStreams",
    "CoverTraffic",
    "FlashCrowd",
    "WorkloadSpec",
    "ZipfLookups",
]


@dataclass(frozen=True)
class CbrStreams:
    """Constant-bitrate private-group streams (VoIP-like).

    ``streams`` concurrent flows, each emitting a ``payload``-byte packet
    every ``interval`` seconds from ``start`` for ``duration`` seconds.
    Streams are assigned round-robin over the spec's groups; sender and
    receiver are distinct members of the stream's group.
    """

    streams: int = 8
    interval: float = 0.5
    payload: int = 160  # 20 ms G.711 frame, the DC-nets VoIP unit
    start: float = 0.0
    duration: float = 120.0

    def __post_init__(self) -> None:
        if self.streams < 1:
            raise ValueError("CbrStreams needs at least one stream")
        if self.interval <= 0:
            raise ValueError("CBR interval must be positive")
        if self.payload < 1:
            raise ValueError("CBR payload must be positive")
        if self.duration <= 0:
            raise ValueError("CBR duration must be positive")

    @property
    def packets_per_stream(self) -> int:
        return int(self.duration / self.interval)

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class ZipfLookups:
    """Zipf-keyed T-Chord lookups at ``rate`` per second (open-loop Poisson).

    Keys are drawn from ``{1..keys}`` with exponent ``exponent``; queriers
    are uniform over the ring members.  The ring lives in the spec's first
    group.
    """

    rate: float = 2.0
    keys: int = 500
    exponent: float = 1.1
    start: float = 0.0
    duration: float = 120.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("lookup rate must be positive")
        if self.keys < 1:
            raise ValueError("need at least one key")
        if self.duration <= 0:
            raise ValueError("lookup duration must be positive")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class FlashCrowd:
    """``joiners`` group-join attempts spread uniformly over ``spread`` s.

    All joins target the spec's first group; completion means the joiner
    reached MEMBER state before ``deadline`` seconds elapsed.
    """

    joiners: int = 20
    at: float = 0.0
    spread: float = 10.0
    deadline: float = 180.0

    def __post_init__(self) -> None:
        if self.joiners < 1:
            raise ValueError("a flash crowd needs at least one joiner")
        if self.spread <= 0:
            raise ValueError("flash-crowd spread must be positive")
        if self.deadline <= 0:
            raise ValueError("flash-crowd deadline must be positive")

    @property
    def end(self) -> float:
        return self.at + self.spread + self.deadline


@dataclass(frozen=True)
class CoverTraffic:
    """Decoy emissions: every group member sends chaff on a fixed cadence.

    Each member of each group emits a ``payload``-byte decoy every
    ``interval`` seconds to a rotating fellow member, from ``start`` for
    ``duration`` seconds.  Decoys ride the same onion construction as
    application payloads (``ppss.send_cover``), are discarded at the
    receiver, and resolve the moment they are emitted — they are a
    countermeasure, not offered load, so they must not show up as lag.
    """

    interval: float = 0.5
    payload: int = 160  # match the CBR unit so decoys are indistinguishable
    start: float = 0.0
    duration: float = 120.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("cover-traffic interval must be positive")
        if self.payload < 1:
            raise ValueError("cover-traffic payload must be positive")
        if self.duration <= 0:
            raise ValueError("cover-traffic duration must be positive")

    @property
    def end(self) -> float:
        return self.start + self.duration


TrafficModel = CbrStreams | ZipfLookups | FlashCrowd | CoverTraffic


@dataclass(frozen=True)
class WorkloadSpec:
    """One complete workload: a group deployment plus its traffic models."""

    name: str
    groups: int = 4
    members_per_group: int = 6
    models: tuple[TrafficModel, ...] = field(default_factory=tuple)
    # Groups gossip faster than the paper's 60 s default so load runs
    # converge within experiment timescales (matches fig9's choice).
    cycle_time: float = 30.0
    # Batched mixing at WCL relays (anonymity countermeasure): None = off,
    # the default — existing specs keep byte-identical traces.
    mix_batch_interval: float | None = None

    def __post_init__(self) -> None:
        if self.groups < 1:
            raise ValueError("a workload needs at least one group")
        if self.members_per_group < 1:
            raise ValueError("groups need at least one member besides the leader")
        if self.mix_batch_interval is not None and self.mix_batch_interval <= 0:
            raise ValueError("mix batch interval must be positive")
        for model in self.models:
            if not isinstance(
                model, (CbrStreams, ZipfLookups, FlashCrowd, CoverTraffic)
            ):
                raise TypeError(f"not a traffic model: {model!r}")

    def horizon(self) -> float:
        """Sim seconds (from arming) until the last model goes quiet."""
        return max((model.end for model in self.models), default=0.0)

    def model(self, kind: type) -> TrafficModel | None:
        """The first model of ``kind``, or None."""
        for model in self.models:
            if isinstance(model, kind):
                return model
        return None
