"""Attach a :class:`WorkloadSpec` to a running :class:`~repro.harness.world.World`.

This is the *policy* half of the subsystem: it translates traffic models
into concrete streams over the deployed stack —

- groups come from the shared :class:`~repro.experiments.common.GroupPlan`
  (leaders are P-nodes, as in the paper's Fig. 8 deployments); members are
  assigned round-robin over the non-leader population in node-id order, so
  the deployment is a pure function of the world and the spec;
- CBR packets are PPSS application payloads (``ppss.send_app``) tagged
  ``{"app": "workload"}``; delivery is observed by a *chaining* app-handler
  sink installed on every member, which forwards any non-workload payload
  to whatever handler the application (e.g. T-Chord) had installed —
  PPSS has a single app-handler slot and the workload must not steal it;
- Zipf lookups run over a T-Chord ring built on the first group's members,
  with keys drawn from the :class:`~repro.core.sampling.ZipfSampler`;
- flash-crowd joiners are fresh nodes spawned into the world mid-run,
  invited to the first group, and polled until they reach MEMBER state or
  miss the deadline.

Every random choice (member picks, Zipf keys, Poisson gaps) derives from
the workload seed via :func:`repro.parallel.derive_seed`, never from the
world's protocol RNG streams — attaching a workload perturbs the
deployment only through the traffic itself.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from ..apps.tchord import TChordNode
from ..core.ppss import MemberState, PpssConfig
from ..core.sampling import ZipfSampler
from ..experiments.common import GroupPlan
from ..parallel import derive_seed
from .driver import WorkloadDriver
from .spec import (
    CbrStreams,
    CoverTraffic,
    FlashCrowd,
    WorkloadSpec,
    ZipfLookups,
)

if TYPE_CHECKING:
    from ..core.node import WhisperNode
    from ..harness.world import World

__all__ = ["AttachedWorkload"]

TCHORD_CYCLE_TIME = 10.0
"""Ring gossip period under load — faster than fig9's 20 s so the ring is
usable within the shorter convergence budget of load scenarios."""

JOIN_POLL_INTERVAL = 2.0
"""How often a flash-crowd joiner's membership state is re-checked."""


class AttachedWorkload:
    """One spec bound to one world: groups joined, streams ready to arm.

    Lifecycle::

        attached = AttachedWorkload(world, spec, seed)
        world.run(converge)      # let the group memberships gossip in
        attached.arm()           # rings built, sinks installed, clocks set
        world.run(spec.horizon() + drain)
        attached.finish()        # close per-stream spans
        rows = attached.summary()
    """

    def __init__(self, world: "World", spec: WorkloadSpec, seed: int) -> None:
        self.world = world
        self.spec = spec
        self.seed = seed
        self.driver = WorkloadDriver(world.sim, world.telemetry, seed)
        self.plan = GroupPlan(
            world, spec.groups,
            ppss_config=PpssConfig(cycle_time=spec.cycle_time),
        )
        self.members: dict[str, list["WhisperNode"]] = {}
        # Ground truth for the adversary experiments: CBR stream id ->
        # (group, sender id, receiver id).  Filled at arm time.
        self.cbr_endpoints: dict[str, tuple[str, int, int]] = {}
        self.tchords: list[TChordNode] = []
        self._spans: dict[str, object] = {}
        self._armed = False
        self._subscribe_members()

    # ------------------------------------------------------------------
    # deployment
    # ------------------------------------------------------------------
    def _subscribe_members(self) -> None:
        """Round-robin the non-leader population into the spec's groups."""
        leader_ids = self.plan.leader_ids()
        candidates = sorted(
            (n for n in self.world.alive_nodes() if n.node_id not in leader_ids),
            key=lambda n: n.node_id,
        )
        if not candidates:
            raise ValueError("workload needs non-leader nodes to subscribe")
        cursor = 0
        for name in self.plan.names:
            leader = self.plan.leaders[name]
            group_members = [leader]
            scanned = 0
            while (
                len(group_members) - 1 < self.spec.members_per_group
                and scanned < len(candidates)
            ):
                node = candidates[cursor % len(candidates)]
                cursor += 1
                scanned += 1
                if name in node.groups:
                    continue
                invitation = leader.group(name).invite(node.node_id)
                node.join_group(invitation, config=self.plan.ppss_config)
                group_members.append(node)
            self.members[name] = group_members

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Build rings/sinks and put every stream's first arrival on the clock.

        Call after the world has run long enough for group joins to settle;
        arming is idempotent-hostile by design (second call raises).
        """
        if self._armed:
            raise RuntimeError("workload already armed")
        self._armed = True
        if self.spec.mix_batch_interval is not None:
            for node in sorted(
                self.world.alive_nodes(), key=lambda n: n.node_id
            ):
                node.wcl.enable_mix_batching(self.spec.mix_batch_interval)
        zipf = self.spec.model(ZipfLookups)
        if zipf is not None:
            self._build_ring()
        # Sinks chain on top of whatever handler T-Chord just installed,
        # so they must come second.
        self._install_sinks()
        for index, model in enumerate(self.spec.models):
            if isinstance(model, CbrStreams):
                self._arm_cbr(index, model)
            elif isinstance(model, ZipfLookups):
                self._arm_zipf(index, model)
            elif isinstance(model, FlashCrowd):
                self._arm_flash(index, model)
            elif isinstance(model, CoverTraffic):
                self._arm_cover(index, model)
        telemetry = self.world.telemetry
        for sid in sorted(self.driver.streams):
            account = self.driver.accounts[sid]
            self._spans[sid] = telemetry.span_start(
                "workload.stream", layer="workload",
                stream=sid, kind=account.kind,
            )
        self.driver.arm()

    def finish(self) -> None:
        """Stop the streams and close each per-stream span with its ledger."""
        self.driver.stop()
        telemetry = self.world.telemetry
        now = self.world.sim.now
        for sid, span in sorted(self._spans.items()):
            account = self.driver.accounts[sid]
            telemetry.span_end(
                span,
                offered=account.offered,
                completed=account.completed,
                failed=account.failed,
                bytes_delivered=account.bytes_delivered,
                goodput=round(account.goodput(now), 3),
            )
        self._spans.clear()

    # -- CBR streams ----------------------------------------------------
    def _arm_cbr(self, index: int, model: CbrStreams) -> None:
        names = self.plan.names
        for i in range(model.streams):
            sid = f"cbr-{index}-{i}"
            name = names[i % len(names)]
            group_members = self.members[name]
            if len(group_members) < 2:
                raise ValueError(f"group {name} too small for a CBR stream")
            rng = random.Random(derive_seed(self.seed, "cbr", index, i))
            sender, receiver = rng.sample(group_members, 2)
            self.cbr_endpoints[sid] = (name, sender.node_id, receiver.node_id)
            action = self._make_cbr_action(sid, name, sender, receiver, model)
            self.driver.add_stream(
                sid, "cbr", action,
                interval=model.interval,
                start=model.start,
                until=model.end,
            )

    def _make_cbr_action(
        self,
        sid: str,
        name: str,
        sender: "WhisperNode",
        receiver: "WhisperNode",
        model: CbrStreams,
    ):
        def action(seq: int, now: float) -> bool:
            src = sender.groups.get(name)
            dst = receiver.groups.get(name)
            if (
                src is None or dst is None
                or src.state is not MemberState.MEMBER
                or dst.state is not MemberState.MEMBER
            ):
                return False
            self.driver.note_offered_bytes(sid, model.payload)
            payload = {
                "app": "workload",
                "sid": sid,
                "seq": seq,
                "t": now,
                "size": model.payload,
            }
            return src.send_app(
                dst.self_contact(), payload, model.payload,
                include_self_contact=False,
            )

        return action

    def _install_sinks(self) -> None:
        for name in self.plan.names:
            for node in self.members[name]:
                ppss = node.groups.get(name)
                if ppss is None:
                    continue
                previous = getattr(ppss, "_app_handler", None)
                ppss.set_app_handler(self._make_sink(previous))

    def _make_sink(self, previous):
        def sink(payload, reply_to) -> None:
            if isinstance(payload, dict) and payload.get("app") == "workload":
                latency = self.world.sim.now - payload["t"]
                self.driver.note_completion(
                    payload["sid"],
                    latency=latency,
                    nbytes=payload.get("size", 0),
                    ok=True,
                )
            elif previous is not None:
                previous(payload, reply_to)

        return sink

    # -- cover traffic (anonymity countermeasure) -----------------------
    def _arm_cover(self, index: int, model: CoverTraffic) -> None:
        """One decoy stream per group member, rotating over fellow members."""
        for name in self.plan.names:
            group_members = self.members[name]
            if len(group_members) < 2:
                continue
            for node in group_members:
                sid = f"cover-{index}-{name}-{node.node_id}"
                rng = random.Random(
                    derive_seed(self.seed, "cover", index, name, node.node_id)
                )
                action = self._make_cover_action(
                    sid, name, node, group_members, model, rng
                )
                self.driver.add_stream(
                    sid, "cover", action,
                    interval=model.interval,
                    start=model.start,
                    until=model.end,
                )

    def _make_cover_action(
        self,
        sid: str,
        name: str,
        sender: "WhisperNode",
        group_members: list["WhisperNode"],
        model: CoverTraffic,
        rng: random.Random,
    ):
        def action(seq: int, now: float) -> bool:
            src = sender.groups.get(name)
            if src is None or src.state is not MemberState.MEMBER:
                return False
            peers = [m for m in group_members if m.node_id != sender.node_id]
            target = rng.choice(peers)
            dst = target.groups.get(name)
            if dst is None or dst.state is not MemberState.MEMBER:
                return False
            if not src.send_cover(dst.self_contact(), model.payload):
                return False
            # Decoys are fire-and-forget: resolve immediately so lag keeps
            # measuring real application debt, not chaff in flight.
            self.driver.note_completion(sid, nbytes=0, ok=True)
            return True

        return action

    # -- Zipf lookups ---------------------------------------------------
    def _build_ring(self) -> None:
        ring_group = self.plan.names[0]
        for node in self.members[ring_group]:
            ppss = node.groups.get(ring_group)
            if ppss is None:
                continue
            self.tchords.append(
                TChordNode(
                    ppss,
                    self.world.sim,
                    random.Random(derive_seed(self.seed, "tchord", node.node_id)),
                    cycle_time=TCHORD_CYCLE_TIME,
                )
            )

    def _arm_zipf(self, index: int, model: ZipfLookups) -> None:
        sid = f"zipf-{index}"
        keys = ZipfSampler(
            model.keys, model.exponent,
            random.Random(derive_seed(self.seed, "zipf-keys", index)),
        )
        pick = random.Random(derive_seed(self.seed, "zipf-pick", index))
        arrivals = random.Random(derive_seed(self.seed, "zipf-arrivals", index))

        def action(seq: int, now: float) -> bool:
            ready = [tc for tc in self.tchords if tc.successor is not None]
            if not ready:
                return False
            querier = pick.choice(ready)
            key = f"load-key-{keys.sample()}"

            def done(result) -> None:
                if result is None:
                    self.driver.note_completion(sid, ok=False)
                else:
                    self.driver.note_completion(
                        sid, latency=result.latency, ok=True
                    )

            querier.lookup(key, done)
            return True

        self.driver.add_stream(
            sid, "zipf", action,
            interval=lambda: arrivals.expovariate(model.rate),
            start=model.start,
            until=model.end,
        )

    # -- flash crowd ----------------------------------------------------
    def _arm_flash(self, index: int, model: FlashCrowd) -> None:
        sid = f"flash-{index}"
        target = self.plan.names[0]
        leader = self.plan.leaders[target]

        def action(seq: int, now: float) -> bool:
            ppss = leader.groups.get(target)
            if ppss is None or not leader.alive:
                return False
            joiner = self.world.spawn_started()
            joiner.join_group(
                ppss.invite(joiner.node_id), config=self.plan.ppss_config
            )
            self._poll_join(sid, joiner, target, deadline=now + model.deadline)
            return True

        self.driver.add_stream(
            sid, "flash", action,
            interval=model.spread / model.joiners,
            start=model.at,
            count=model.joiners,
        )

    def _poll_join(
        self, sid: str, joiner: "WhisperNode", name: str, deadline: float
    ) -> None:
        started = self.world.sim.now

        def check() -> None:
            ppss = joiner.groups.get(name)
            if ppss is not None and ppss.state is MemberState.MEMBER:
                self.driver.note_completion(
                    sid, latency=self.world.sim.now - started, ok=True
                )
                return
            if self.world.sim.now >= deadline:
                self.driver.note_completion(sid, ok=False)
                return
            self.driver.clock.schedule(JOIN_POLL_INTERVAL, check)

        self.driver.clock.schedule(JOIN_POLL_INTERVAL, check)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def summary(self) -> list[dict[str, object]]:
        """One row per stream: the ledger plus latency percentiles."""
        now = self.world.sim.now
        rows: list[dict[str, object]] = []
        metrics = self.world.telemetry.metrics
        for sid in sorted(self.driver.accounts):
            account = self.driver.accounts[sid]
            row: dict[str, object] = {
                "stream": sid,
                "kind": account.kind,
                "offered": account.offered,
                "emitted": account.emitted,
                "completed": account.completed,
                "failed": account.failed,
                "lag": account.lag,
                "delivery_ratio": round(account.delivery_ratio, 4),
                "goodput_bps": round(account.goodput(now), 3),
            }
            histogram = metrics.collect("workload.latency").get(
                (("kind", account.kind), ("layer", "workload"), ("stream", sid))
            )
            if histogram is not None and histogram.count:
                for key, value in histogram.percentiles().items():
                    row[key] = round(value, 4)
            rows.append(row)
        return rows
