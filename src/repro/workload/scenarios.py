"""Named workload scenarios for the ``load`` experiment and ``bench_load``.

Each builder returns a :class:`~repro.workload.spec.WorkloadSpec` scaled by
the usual population multiplier (1.0 = the reference shape, smaller values
give quick sanity runs).  The catalogue:

- ``cbr`` — steady VoIP-like streams inside a handful of groups, the
  baseline "does confidential delivery keep up" shape;
- ``zipf`` — a T-Chord ring answering Zipf-popular lookups (heavy head,
  long tail), the private-index query shape of Fig. 9 under open load;
- ``flash`` — a quiet deployment hit by a compressed burst of group joins;
- ``multigroup`` — hundreds of small concurrent groups each carrying one
  stream, the Fig. 8 many-groups shape under traffic;
- ``mixed`` — CBR + Zipf + a flash crowd at once, the bench_load shape.

``world_size`` gives the node population each scenario expects; the
experiment populates the world accordingly.
"""

from __future__ import annotations

from ..experiments.common import scaled
from .spec import CbrStreams, FlashCrowd, WorkloadSpec, ZipfLookups

__all__ = ["SCENARIOS", "build_scenario", "world_size"]


def _cbr(scale: float) -> WorkloadSpec:
    return WorkloadSpec(
        name="cbr",
        groups=scaled(4, scale, minimum=2),
        members_per_group=scaled(6, scale, minimum=4),
        models=(
            CbrStreams(
                streams=scaled(8, scale, minimum=4),
                interval=0.5,
                payload=160,
                duration=scaled(120, scale, minimum=60),
            ),
        ),
    )


def _zipf(scale: float) -> WorkloadSpec:
    return WorkloadSpec(
        name="zipf",
        groups=1,
        members_per_group=scaled(20, scale, minimum=12),
        models=(
            ZipfLookups(
                rate=2.0,
                keys=scaled(500, scale, minimum=100),
                exponent=1.1,
                start=60.0,  # give T-Man a head start on the ring
                duration=scaled(120, scale, minimum=60),
            ),
        ),
    )


def _flash(scale: float) -> WorkloadSpec:
    return WorkloadSpec(
        name="flash",
        groups=1,
        members_per_group=scaled(6, scale, minimum=4),
        models=(
            FlashCrowd(
                joiners=scaled(20, scale, minimum=8),
                at=10.0,
                spread=10.0,
                deadline=240.0,
            ),
        ),
    )


def _multigroup(scale: float) -> WorkloadSpec:
    # The Fig. 8 shape: one group per P-node, here each carrying traffic.
    # At scale 1.0 this is 120 concurrent PPSS groups with 120 live streams;
    # the paper's cluster runs 300 (Table I), reachable with scale 2.5.
    groups = scaled(120, scale, minimum=12)
    return WorkloadSpec(
        name="multigroup",
        groups=groups,
        members_per_group=3,
        models=(
            CbrStreams(
                streams=groups,  # round-robin lands exactly one per group
                interval=2.0,
                payload=160,
                duration=scaled(120, scale, minimum=60),
            ),
        ),
    )


def _mixed(scale: float) -> WorkloadSpec:
    return WorkloadSpec(
        name="mixed",
        groups=scaled(4, scale, minimum=2),
        members_per_group=scaled(8, scale, minimum=6),
        models=(
            CbrStreams(
                streams=scaled(6, scale, minimum=3),
                interval=0.5,
                payload=160,
                duration=scaled(120, scale, minimum=60),
            ),
            ZipfLookups(
                rate=1.0,
                keys=scaled(200, scale, minimum=50),
                exponent=1.1,
                start=60.0,
                duration=scaled(90, scale, minimum=45),
            ),
            FlashCrowd(
                joiners=scaled(10, scale, minimum=4),
                at=30.0,
                spread=10.0,
                deadline=240.0,
            ),
        ),
    )


SCENARIOS = {
    "cbr": _cbr,
    "zipf": _zipf,
    "flash": _flash,
    "multigroup": _multigroup,
    "mixed": _mixed,
}


def build_scenario(name: str, scale: float = 1.0) -> WorkloadSpec:
    try:
        builder = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(f"unknown scenario {name!r} (known: {known})") from None
    return builder(scale)


def world_size(spec: WorkloadSpec, scale: float = 1.0) -> int:
    """Node population a spec needs: members + leaders + free P-nodes.

    Groups need P-node leaders and only ~30% of the population is public,
    so the floor is leader-driven for many-group specs and member-driven
    for few-group ones.  The slack keeps introducers and WCL relays
    available beyond the subscribed membership.
    """
    members = spec.groups * spec.members_per_group
    leaders_need = int(spec.groups / 0.3) + 5
    return max(scaled(200, scale, minimum=60), members + spec.groups + 10, leaders_need)
