"""Overlay-graph quality metrics: clustering coefficient and in-degrees.

Section II-B: "The quality of the overlay created by the PSS is measured by
its resemblance to a random graph with fixed out-degrees.  A balanced
distribution of the nodes' in-degrees ensures load-balancing.  A low
clustering factor indicates that the diversity of the peers in the views
will be maximized."  Fig. 5 plots exactly these two metrics; this module
computes them from a snapshot of all nodes' views.
"""

from __future__ import annotations

from collections import defaultdict

from ..net.address import NodeId

__all__ = [
    "ViewGraph",
    "local_clustering_coefficient",
    "in_degree_distribution",
]


class ViewGraph:
    """Directed graph snapshot built from per-node view membership."""

    def __init__(self, views: dict[NodeId, list[NodeId]]) -> None:
        """``views`` maps each node to the node ids currently in its view."""
        self.successors: dict[NodeId, set[NodeId]] = {
            node: set(targets) - {node} for node, targets in views.items()
        }
        self.nodes: list[NodeId] = sorted(self.successors.keys())
        self._in_degree: dict[NodeId, int] = defaultdict(int)
        for targets in self.successors.values():
            for target in targets:
                self._in_degree[target] += 1

    def in_degree(self, node: NodeId) -> int:
        return self._in_degree.get(node, 0)

    def out_degree(self, node: NodeId) -> int:
        return len(self.successors.get(node, ()))

    def undirected_neighbours(self, node: NodeId) -> set[NodeId]:
        """Neighbours ignoring direction (standard for clustering on digraphs
        built from views, matching how PeerSim-era studies report it)."""
        neighbours = set(self.successors.get(node, ()))
        for other, targets in self.successors.items():
            if node in targets:
                neighbours.add(other)
        neighbours.discard(node)
        return neighbours


def local_clustering_coefficient(graph: ViewGraph, node: NodeId) -> float:
    """Fraction of a node's (undirected) neighbour pairs that are linked."""
    neighbours = graph.undirected_neighbours(node)
    k = len(neighbours)
    if k < 2:
        return 0.0
    links = 0
    for a in neighbours:
        adjacency = graph.successors.get(a, set())
        for b in neighbours:
            if a < b and (b in adjacency or a in graph.successors.get(b, set())):
                links += 1
    return links / (k * (k - 1) / 2)


def in_degree_distribution(
    graph: ViewGraph, nodes: list[NodeId] | None = None
) -> list[int]:
    """In-degrees for the requested node subset (default: all), sorted."""
    if nodes is None:
        nodes = graph.nodes
    return sorted(graph.in_degree(node) for node in nodes)
