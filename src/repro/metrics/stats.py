"""Distribution utilities: CDFs, percentiles, stacked-percentile series.

The paper's figures report distributions as CDFs (Fig. 5, 7, 9) or stacked
percentiles in shades of grey (Fig. 8: 5th/25th/50th/75th/90th).  These
helpers compute the same summaries from raw samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["cdf_points", "percentile", "stacked_percentiles", "Summary", "summarize"]


def percentile(samples: list[float], q: float) -> float:
    """Linear-interpolation percentile, q in [0, 100]."""
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q out of range: {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    # low + (high-low)*f rather than low*(1-f) + high*f: the latter can
    # round below ordered[low] when the two samples are equal.
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def cdf_points(samples: list[float]) -> list[tuple[float, float]]:
    """(value, cumulative fraction) pairs, suitable for CDF plotting."""
    if not samples:
        return []
    ordered = sorted(samples)
    n = len(ordered)
    return [(value, (i + 1) / n) for i, value in enumerate(ordered)]


# The grey-shade stack used throughout Fig. 8.
PAPER_PERCENTILES = (5.0, 25.0, 50.0, 75.0, 90.0)


def stacked_percentiles(
    samples: list[float], levels: tuple[float, ...] = PAPER_PERCENTILES
) -> dict[float, float]:
    """The paper's stacked-percentile representation of a distribution."""
    return {level: percentile(samples, level) for level in levels}


@dataclass(frozen=True)
class Summary:
    count: int
    mean: float
    minimum: float
    maximum: float
    median: float
    p90: float


def summarize(samples: list[float]) -> Summary:
    if not samples:
        raise ValueError("cannot summarize an empty sample set")
    return Summary(
        count=len(samples),
        mean=sum(samples) / len(samples),
        minimum=min(samples),
        maximum=max(samples),
        median=percentile(samples, 50.0),
        p90=percentile(samples, 90.0),
    )
