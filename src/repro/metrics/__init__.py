"""Measurement utilities for overlay quality and distribution summaries."""

from .graph import ViewGraph, in_degree_distribution, local_clustering_coefficient
from .stats import (
    PAPER_PERCENTILES,
    Summary,
    cdf_points,
    percentile,
    stacked_percentiles,
    summarize,
)

__all__ = [
    "PAPER_PERCENTILES",
    "Summary",
    "ViewGraph",
    "cdf_points",
    "in_degree_distribution",
    "local_clustering_coefficient",
    "percentile",
    "stacked_percentiles",
    "summarize",
]
