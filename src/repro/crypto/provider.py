"""Crypto providers: one interface, a real and a simulated implementation.

All WHISPER layers (onion construction, passports, group keys) talk to a
:class:`CryptoProvider`.  Two implementations exist:

- :class:`RealCryptoProvider` — genuine RSA (this repo's from-scratch
  implementation) with hybrid sealing (RSA-wrapped session key + stream
  body) and AES-CTR payload encryption.  Used by unit tests, the security
  test-suite and the examples; key size configurable.
- :class:`SimCryptoProvider` — structurally identical envelope objects
  with access control enforced by key identity instead of number theory.
  Used for 1,000-node experiment runs where pure-Python bignum math would
  dominate wall-clock time without affecting any measured quantity (the
  cost model charges calibrated CPU time either way).

Both raise :class:`CryptoError` when opening with a wrong key, so protocol
code paths are identical.
"""

from __future__ import annotations

import itertools
import pickle
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from ..net.address import NodeId
from . import rsa
from .aes import ctr_transform
from .costmodel import CpuAccountant
from .stream import layered_wrap, stream_transform, tag, verify_tag

__all__ = [
    "CryptoError",
    "PublicKey",
    "KeyPair",
    "Sealed",
    "EncryptedPayload",
    "LayeredPayload",
    "CryptoProvider",
    "RealCryptoProvider",
    "SimCryptoProvider",
]


class CryptoError(Exception):
    """Decryption/verification failure (wrong key, tampered data)."""


@dataclass(frozen=True)
class PublicKey:
    """Opaque circulating public key.

    ``material`` is an :class:`rsa.RsaPublicKey` for the real provider or a
    key identifier string for the simulated one.  ``fingerprint`` is stable
    and printable (used by group key histories).
    """

    material: Any
    fingerprint: str


@dataclass(frozen=True)
class KeyPair:
    public: PublicKey
    secret: Any  # RsaPrivateKey, or the sim key identifier


@dataclass(frozen=True)
class Sealed:
    """Asymmetrically sealed object (onion layer, invitation, ...)."""

    key_fingerprint: str
    blob: Any
    size_bytes: int


@dataclass(frozen=True)
class EncryptedPayload:
    """Symmetrically encrypted object (WCL message body)."""

    blob: Any
    auth: Any
    size_bytes: int


@dataclass(frozen=True)
class LayeredPayload:
    """A circuit-mode body under N symmetric layers (outermost first).

    ``auths[0]`` authenticates the ciphertext as the *current* outermost
    hop receives it; unwrapping one layer strips ``auths[0]`` and yields
    either another :class:`LayeredPayload` (a mix) or the plaintext object
    (the destination, when one auth remains).  ``size_bytes`` is the body's
    wire-size model and does not shrink per hop — only the per-layer MACs
    (accounted by the frame's ``wire_size``) come off.
    """

    blob: Any
    auths: tuple
    size_bytes: int


class CryptoProvider(ABC):
    """Factory + operations; charges the CPU accountant when one is set."""

    def __init__(self, rng: random.Random, accountant: CpuAccountant | None = None) -> None:
        self._rng = rng
        self.accountant = accountant if accountant is not None else CpuAccountant()
        # Measurement-only trace ids (onion correlation for Fig. 7).  One
        # counter per provider — i.e. per World, since a World builds
        # exactly one provider — so two Worlds in one process draw the
        # same id sequences as two separate processes would.
        self._trace_ids = itertools.count(1)

    def next_trace_id(self) -> int:
        """Next measurement trace id (provider-scoped, starts at 1)."""
        return next(self._trace_ids)

    # ------------------------------------------------------------------
    @abstractmethod
    def generate_keypair(self) -> KeyPair:
        """Create a fresh keypair (no CPU charge: keygen is off-cycle)."""

    @abstractmethod
    def seal(self, public: PublicKey, obj: Any, *, node: NodeId = -1,
             context: str = "") -> Sealed:
        """Asymmetrically encrypt a (small) object for the key holder."""

    @abstractmethod
    def open(self, keypair: KeyPair, sealed: Sealed, *, node: NodeId = -1,
             context: str = "") -> Any:
        """Invert :meth:`seal`; raises CryptoError with the wrong keypair."""

    @abstractmethod
    def encrypt_payload(self, key: bytes, obj: Any, size_hint: int, *,
                        node: NodeId = -1, context: str = "") -> EncryptedPayload:
        """Symmetric bulk encryption of a message body."""

    @abstractmethod
    def decrypt_payload(self, key: bytes, enc: EncryptedPayload, *,
                        node: NodeId = -1, context: str = "") -> Any:
        """Invert :meth:`encrypt_payload`; raises CryptoError on mismatch."""

    def wrap_layers(self, keys: list[bytes], obj: Any, size_hint: int, *,
                    node: NodeId = -1, context: str = "") -> LayeredPayload:
        """Encrypt ``obj`` under every key in ``keys`` (outermost first).

        The circuit-mode data path: symmetric crypto only, one layer per
        hop, each layer independently authenticated so a hop detects a
        wrong/expired key exactly like :meth:`decrypt_payload` does.
        """
        raise NotImplementedError

    def unwrap_layer(self, key: bytes, layered: LayeredPayload, *,
                     node: NodeId = -1, context: str = "") -> Any:
        """Strip one layer; the plaintext object when it was the last.

        Returns a :class:`LayeredPayload` while layers remain, the
        decrypted object at the destination.  Raises :class:`CryptoError`
        when ``key`` does not authenticate the outermost layer.
        """
        raise NotImplementedError

    @abstractmethod
    def sign(self, keypair: KeyPair, obj: Any, *, node: NodeId = -1,
             context: str = "") -> Any:
        """Signature over a canonical encoding of ``obj``."""

    @abstractmethod
    def verify(self, public: PublicKey, obj: Any, signature: Any, *,
               node: NodeId = -1, context: str = "") -> bool:
        """Check a signature; False (not an exception) on mismatch."""

    # ------------------------------------------------------------------
    def new_symmetric_key(self) -> bytes:
        """A fresh random 128-bit key (the per-message key *k* of Fig. 2)."""
        return self._rng.getrandbits(128).to_bytes(16, "big")

    def new_nonce(self) -> bytes:
        return self._rng.getrandbits(64).to_bytes(8, "big")


# ----------------------------------------------------------------------
class RealCryptoProvider(CryptoProvider):
    """RSA + AES-CTR (or the fast stream cipher) with pickle serialization."""

    def __init__(
        self,
        rng: random.Random,
        accountant: CpuAccountant | None = None,
        key_bits: int = 512,
        use_aes: bool = True,
    ) -> None:
        super().__init__(rng, accountant)
        if key_bits < 256:
            raise ValueError("hybrid sealing needs at least a 256-bit modulus")
        self._key_bits = key_bits
        self._use_aes = use_aes

    def _bulk(self, key: bytes, nonce: bytes, data: bytes) -> bytes:
        if self._use_aes:
            return ctr_transform(key, nonce, data)
        return stream_transform(key, nonce, data)

    def generate_keypair(self) -> KeyPair:
        pair = rsa.generate_keypair(self._key_bits, self._rng)
        public = PublicKey(material=pair.public, fingerprint=pair.public.fingerprint())
        return KeyPair(public=public, secret=pair.private)

    def seal(self, public, obj, *, node=-1, context=""):
        body = pickle.dumps(obj)
        session_key = self.new_symmetric_key()
        nonce = self.new_nonce()
        wrapped = rsa.encrypt(public.material, session_key + nonce, self._rng)
        ciphertext = self._bulk(session_key, nonce, body)
        self.accountant.rsa_encrypt(node, context)
        self.accountant.aes(node, len(body), context)
        return Sealed(
            key_fingerprint=public.fingerprint,
            blob=(wrapped, ciphertext),
            size_bytes=len(wrapped) + len(ciphertext),
        )

    def open(self, keypair, sealed, *, node=-1, context=""):
        wrapped, ciphertext = sealed.blob
        try:
            opened = rsa.decrypt(keypair.secret, wrapped)
        except ValueError as exc:
            self.accountant.rsa_decrypt(node, context)
            raise CryptoError(f"seal does not open: {exc}") from exc
        self.accountant.rsa_decrypt(node, context)
        if len(opened) != 24:
            raise CryptoError("seal does not open: bad session material")
        session_key, nonce = opened[:16], opened[16:]
        body = self._bulk(session_key, nonce, ciphertext)
        self.accountant.aes(node, len(body), context)
        try:
            return pickle.loads(body)
        except Exception as exc:  # wrong key yields garbage bytes
            raise CryptoError("seal does not open: corrupt body") from exc

    def encrypt_payload(self, key, obj, size_hint, *, node=-1, context=""):
        body = pickle.dumps(obj)
        nonce = self.new_nonce()
        ciphertext = self._bulk(key, nonce, body)
        auth = tag(key, ciphertext)
        self.accountant.aes(node, max(len(body), size_hint), context)
        return EncryptedPayload(
            blob=(nonce, ciphertext), auth=auth,
            size_bytes=max(len(ciphertext), size_hint),
        )

    def decrypt_payload(self, key, enc, *, node=-1, context=""):
        nonce, ciphertext = enc.blob
        if not verify_tag(key, ciphertext, enc.auth):
            raise CryptoError("payload authentication failed")
        body = self._bulk(key, nonce, ciphertext)
        self.accountant.aes(node, enc.size_bytes, context)
        try:
            return pickle.loads(body)
        except Exception as exc:
            raise CryptoError("payload corrupt") from exc

    def wrap_layers(self, keys, obj, size_hint, *, node=-1, context=""):
        if not keys:
            raise ValueError("wrap_layers needs at least one key")
        body = pickle.dumps(obj)
        nonces = tuple(self.new_nonce() for _ in keys)
        if self._use_aes:
            ciphertexts: list[bytes] = []
            data = body
            for index in range(len(keys) - 1, -1, -1):
                data = ctr_transform(keys[index], nonces[index], data)
                ciphertexts.append(data)
            ciphertexts.reverse()
        else:
            # The compiled big-int kernel: every intermediate ciphertext in
            # one pass (each hop MACs the ciphertext it will receive).
            ciphertexts = layered_wrap(keys, nonces, body)
        auths = tuple(
            tag(key, ciphertext)
            for key, ciphertext in zip(keys, ciphertexts)
        )
        self.accountant.aes_layers(
            node, max(len(body), size_hint), len(keys), context
        )
        return LayeredPayload(
            blob=(nonces, ciphertexts[0]), auths=auths,
            size_bytes=max(len(body), size_hint),
        )

    def unwrap_layer(self, key, layered, *, node=-1, context=""):
        nonces, ciphertext = layered.blob
        if not layered.auths or not verify_tag(key, ciphertext, layered.auths[0]):
            raise CryptoError("circuit layer authentication failed")
        inner = self._bulk(key, nonces[0], ciphertext)
        self.accountant.aes(node, layered.size_bytes, context)
        if len(layered.auths) == 1:
            try:
                return pickle.loads(inner)
            except Exception as exc:
                raise CryptoError("circuit payload corrupt") from exc
        return LayeredPayload(
            blob=(nonces[1:], inner), auths=layered.auths[1:],
            size_bytes=layered.size_bytes,
        )

    def sign(self, keypair, obj, *, node=-1, context=""):
        self.accountant.rsa_sign(node, context)
        return rsa.sign(keypair.secret, _canonical(obj))

    def verify(self, public, obj, signature, *, node=-1, context=""):
        self.accountant.rsa_verify(node, context)
        return rsa.verify(public.material, _canonical(obj), signature)


# ----------------------------------------------------------------------
class SimCryptoProvider(CryptoProvider):
    """Key-identity-enforced envelopes; same API surface and failure modes."""

    def __init__(self, rng: random.Random, accountant: CpuAccountant | None = None) -> None:
        super().__init__(rng, accountant)
        self._counter = 0

    def generate_keypair(self) -> KeyPair:
        self._counter += 1
        key_id = f"simkey-{self._counter}-{self._rng.getrandbits(32):08x}"
        return KeyPair(
            public=PublicKey(material=key_id, fingerprint=key_id),
            secret=key_id,
        )

    def seal(self, public, obj, *, node=-1, context=""):
        self.accountant.rsa_encrypt(node, context)
        # Charge the CPU model for the bytes the real provider would bulk-
        # encrypt (the serialized body), not a flat constant; ``size_bytes``
        # keeps the paper's wire-size model for bandwidth accounting.
        self.accountant.aes(node, len(_value_canonical(obj)), context)
        return Sealed(
            key_fingerprint=public.fingerprint,
            blob=obj,
            size_bytes=256,
        )

    def open(self, keypair, sealed, *, node=-1, context=""):
        self.accountant.rsa_decrypt(node, context)
        if sealed.key_fingerprint != keypair.public.fingerprint:
            raise CryptoError("seal does not open: wrong key")
        self.accountant.aes(node, len(_value_canonical(sealed.blob)), context)
        return sealed.blob

    def encrypt_payload(self, key, obj, size_hint, *, node=-1, context=""):
        body = _value_canonical(obj)
        self.accountant.aes(node, max(len(body), size_hint), context)
        # The envelope must never carry key material: authenticate with a
        # MAC over the canonical body, exactly like the real provider tags
        # its ciphertext.  (An earlier revision stored the raw symmetric key
        # as ``auth``, leaking it to anyone holding the envelope.)
        return EncryptedPayload(
            blob=obj, auth=tag(key, body), size_bytes=size_hint
        )

    def decrypt_payload(self, key, enc, *, node=-1, context=""):
        # Recompute the MAC under the presented key; a wrong key yields a
        # different tag, preserving the CryptoError failure mode.
        if not verify_tag(key, _value_canonical(enc.blob), enc.auth):
            raise CryptoError("payload key mismatch")
        self.accountant.aes(node, enc.size_bytes, context)
        return enc.blob

    def wrap_layers(self, keys, obj, size_hint, *, node=-1, context=""):
        if not keys:
            raise ValueError("wrap_layers needs at least one key")
        # MAC chain standing in for nested encryption: layer i tags the
        # next layer's tag (innermost tags the canonical body), so each
        # hop's key check composes exactly like peeling real ciphertext.
        body = _value_canonical(obj)
        chain = [tag(keys[-1], body)]
        for index in range(len(keys) - 2, -1, -1):
            chain.append(tag(keys[index], chain[-1]))
        self.accountant.aes_layers(
            node, max(len(body), size_hint), len(keys), context
        )
        return LayeredPayload(
            blob=obj, auths=tuple(reversed(chain)), size_bytes=size_hint
        )

    def unwrap_layer(self, key, layered, *, node=-1, context=""):
        auths = layered.auths
        if not auths:
            raise CryptoError("circuit layer authentication failed")
        inner_ref = (
            auths[1] if len(auths) > 1 else _value_canonical(layered.blob)
        )
        if not verify_tag(key, inner_ref, auths[0]):
            raise CryptoError("circuit layer key mismatch")
        self.accountant.aes(node, layered.size_bytes, context)
        if len(auths) == 1:
            return layered.blob
        return LayeredPayload(
            blob=layered.blob, auths=auths[1:], size_bytes=layered.size_bytes
        )

    def sign(self, keypair, obj, *, node=-1, context=""):
        self.accountant.rsa_sign(node, context)
        return ("sig", keypair.public.fingerprint, _canonical(obj))

    def verify(self, public, obj, signature, *, node=-1, context=""):
        self.accountant.rsa_verify(node, context)
        if not isinstance(signature, tuple) or len(signature) != 3:
            return False
        kind, fingerprint, digest = signature
        return (
            kind == "sig"
            and fingerprint == public.fingerprint
            and digest == _canonical(obj)
        )


_CANONICAL_CACHE: dict[int, tuple[Any, bytes]] = {}
_CANONICAL_CACHE_LIMIT = 1024
_VALUE_CACHE: dict[int, tuple[Any, bytes]] = {}


def _value_canonical(obj: Any) -> bytes:
    """Value-based canonical encoding for the sim envelope MAC and charges.

    Pickle is identity-sensitive: it memoizes shared references, so an
    object that has been encode->decoded by the wire codec (which rebuilds
    the tree without the original sharing) can pickle to different bytes
    than the original even though the two are equal.  The MAC written at
    ``encrypt_payload`` must verify after a wire round-trip, so the
    canonical form is the wire codec's own deterministic value encoding;
    pickle remains the fallback for objects the wire cannot carry (which
    by definition never cross a codec boundary).  Memoized by identity,
    sharing the signature cache's limit/eviction policy.
    """
    key = id(obj)
    hit = _VALUE_CACHE.get(key)
    if hit is not None and hit[0] is obj:
        return hit[1]
    from ..wire.codec import WireEncodeError, encode_value  # deferred: codec imports us

    try:
        data = encode_value(obj)
    except WireEncodeError:
        data = pickle.dumps(obj)
    if len(_VALUE_CACHE) >= _CANONICAL_CACHE_LIMIT:
        _VALUE_CACHE.clear()
    _VALUE_CACHE[key] = (obj, data)
    return data


def _canonical(obj: Any) -> bytes:
    """Stable canonical encoding (pickle) of a signed/authenticated object.

    Signed objects are immutable descriptors that get signed once and
    verified many times (every hop re-checks a passport), so the encoding is
    memoized by object identity.  The cache holds a strong reference to the
    object, which keeps its ``id`` from being reused while the entry lives;
    the identity check guards against reuse after a wholesale clear.
    """
    key = id(obj)
    hit = _CANONICAL_CACHE.get(key)
    if hit is not None and hit[0] is obj:
        return hit[1]
    data = pickle.dumps(obj)
    if len(_CANONICAL_CACHE) >= _CANONICAL_CACHE_LIMIT:
        _CANONICAL_CACHE.clear()
    _CANONICAL_CACHE[key] = (obj, data)
    return data
