"""A fast SHA-256-based stream cipher for large-scale simulation runs.

Pure-Python AES costs ~100 µs per 16-byte block; encrypting thousands of
20 KB PPSS view exchanges would dominate wall-clock time without changing
any protocol behaviour.  This keystream cipher (SHA-256 in counter mode —
the construction behind many DRBGs) is a drop-in substitute used by the
simulation crypto provider; the *simulated* CPU cost charged by the cost
model remains the calibrated AES cost either way.

Not intended as a production cipher; it exists so that the simulated
protocols still perform a real keyed, invertible transformation (tests
verify that ciphertext reveals nothing without the key and that tampering
is detectable via the MAC-like tag).
"""

from __future__ import annotations

import hashlib
import hmac

__all__ = ["stream_transform", "tag", "verify_tag"]


def stream_transform(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """XOR ``data`` with a SHA-256 counter keystream (self-inverse)."""
    out = bytearray(len(data))
    block_count = (len(data) + 31) // 32
    for block_index in range(block_count):
        keystream = hashlib.sha256(
            key + nonce + block_index.to_bytes(8, "big")
        ).digest()
        offset = block_index * 32
        chunk = data[offset : offset + 32]
        for i, byte in enumerate(chunk):
            out[offset + i] = byte ^ keystream[i]
    return bytes(out)


def tag(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA256 authentication tag."""
    return hmac.new(key, data, hashlib.sha256).digest()


def verify_tag(key: bytes, data: bytes, expected: bytes) -> bool:
    return hmac.compare_digest(tag(key, data), expected)
