"""A fast SHA-256-based stream cipher for large-scale simulation runs.

Pure-Python AES costs ~100 µs per 16-byte block; encrypting thousands of
20 KB PPSS view exchanges would dominate wall-clock time without changing
any protocol behaviour.  This keystream cipher (SHA-256 in counter mode —
the construction behind many DRBGs) is a drop-in substitute used by the
simulation crypto provider; the *simulated* CPU cost charged by the cost
model remains the calibrated AES cost either way.

The transform runs as one big-int XOR over the whole buffer instead of a
per-byte Python loop (the same hot-loop treatment the wire codec got:
CPython bignum XOR is a single C call).  Circuit-mode layered transforms
additionally get per-layer-count ``exec``-compiled kernels — an N-layer
wrap is one compiled function with the layer loop unrolled, producing
every intermediate ciphertext (each hop authenticates the ciphertext *it*
receives) without re-entering the interpreter loop per layer.

Not intended as a production cipher; it exists so that the simulated
protocols still perform a real keyed, invertible transformation (tests
verify that ciphertext reveals nothing without the key and that tampering
is detectable via the MAC-like tag).
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Callable, Sequence

__all__ = [
    "stream_transform",
    "layered_wrap",
    "keystream_int",
    "tag",
    "verify_tag",
]

_sha256 = hashlib.sha256


def keystream_int(key: bytes, nonce: bytes, length: int) -> int:
    """The SHA-256 counter keystream for ``length`` bytes, as a big int.

    Byte-compatible with the original per-byte implementation: block ``i``
    is ``sha256(key + nonce + i.to_bytes(8))`` and the stream is truncated
    to ``length`` bytes before conversion.
    """
    if length <= 0:
        return 0
    prefix = key + nonce
    blocks = b"".join(
        _sha256(prefix + index.to_bytes(8, "big")).digest()
        for index in range((length + 31) // 32)
    )
    return int.from_bytes(blocks[:length], "big")


def stream_transform(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """XOR ``data`` with a SHA-256 counter keystream (self-inverse)."""
    length = len(data)
    if length == 0:
        return b""
    value = int.from_bytes(data, "big") ^ keystream_int(key, nonce, length)
    return value.to_bytes(length, "big")


# -- exec-compiled layered kernels (circuit-mode wrap) ----------------------
#
# ``layered_wrap(keys, nonces, data)`` applies the stream transform once
# per layer, innermost (destination) first, and returns every intermediate
# ciphertext outermost-first: result[i] is the ciphertext hop i receives
# (and MACs).  Unwrapping one layer is just ``stream_transform`` with that
# hop's key, so no decode kernel is needed.

_WRAP_KERNELS: dict[int, Callable[..., list[bytes]]] = {}


def _compile_wrap(n_layers: int) -> Callable[..., list[bytes]]:
    lines = [
        "def _wrap(keys, nonces, data, _ks=keystream_int):",
        "    L = len(data)",
        "    x = int.from_bytes(data, 'big')",
    ]
    for index in range(n_layers - 1, -1, -1):
        lines.append(f"    x ^= _ks(keys[{index}], nonces[{index}], L)")
        lines.append(f"    c{index} = x")
    body = ", ".join(f"c{i}.to_bytes(L, 'big')" for i in range(n_layers))
    lines.append(f"    return [{body}]")
    namespace: dict[str, object] = {"keystream_int": keystream_int}
    exec("\n".join(lines), namespace)  # noqa: S102 - compile-time codegen
    return namespace["_wrap"]  # type: ignore[return-value]


def layered_wrap(
    keys: Sequence[bytes], nonces: Sequence[bytes], data: bytes
) -> list[bytes]:
    """All intermediate ciphertexts of an N-layer wrap, outermost first."""
    n_layers = len(keys)
    if n_layers == 0:
        raise ValueError("layered wrap needs at least one key")
    if len(nonces) != n_layers:
        raise ValueError(f"{n_layers} keys but {len(nonces)} nonces")
    if not data:
        return [b""] * n_layers
    kernel = _WRAP_KERNELS.get(n_layers)
    if kernel is None:
        kernel = _WRAP_KERNELS[n_layers] = _compile_wrap(n_layers)
    return kernel(keys, nonces, data)


def tag(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA256 authentication tag."""
    return hmac.new(key, data, hashlib.sha256).digest()


def verify_tag(key: bytes, data: bytes, expected: bytes) -> bool:
    return hmac.compare_digest(tag(key, data), expected)
