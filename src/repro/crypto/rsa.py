"""Textbook-plus-padding RSA: key generation, encryption, signatures.

The WHISPER prototype uses RSA for onion-layer encryption and for signing
group passports; this module provides both from scratch.  Padding is a
PKCS#1-v1.5-style random pad (sufficient against the paper's
honest-but-curious adversary; we do not claim CCA security).  Signatures are
hash-then-exponentiate with SHA-256.

Key sizes are configurable: experiments default to small keys (fast pure
Python arithmetic) while the cost model charges simulated CPU time
calibrated for the 1024-bit keys of the paper era.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass

from .primes import generate_prime

__all__ = ["RsaPublicKey", "RsaPrivateKey", "RsaKeyPair", "generate_keypair"]

_PUBLIC_EXPONENT = 65537


@dataclass(frozen=True)
class RsaPublicKey:
    """(n, e) — safe to circulate in gossip exchanges."""

    n: int
    e: int

    @property
    def modulus_bits(self) -> int:
        return self.n.bit_length()

    @property
    def max_payload_bytes(self) -> int:
        """Largest plaintext the padding scheme accommodates."""
        return self.n.bit_length() // 8 - 11

    def fingerprint(self) -> str:
        """Short stable identifier for logging and key history."""
        digest = hashlib.sha256(f"{self.n}:{self.e}".encode()).hexdigest()
        return digest[:16]


@dataclass(frozen=True)
class RsaPrivateKey:
    """(n, d) plus the CRT components for faster decryption."""

    n: int
    d: int
    p: int
    q: int
    d_p: int
    d_q: int
    q_inv: int

    def _decrypt_int(self, c: int) -> int:
        """CRT decryption: ~4x faster than a plain pow(c, d, n)."""
        m1 = pow(c % self.p, self.d_p, self.p)
        m2 = pow(c % self.q, self.d_q, self.q)
        h = (self.q_inv * (m1 - m2)) % self.p
        return m2 + h * self.q


@dataclass(frozen=True)
class RsaKeyPair:
    public: RsaPublicKey
    private: RsaPrivateKey


def generate_keypair(bits: int, rng: random.Random) -> RsaKeyPair:
    """Generate an RSA keypair with a ``bits``-bit modulus."""
    if bits < 128:
        raise ValueError(f"modulus too small for the padding scheme: {bits} bits")
    while True:
        p = generate_prime(bits // 2, rng)
        q = generate_prime(bits - bits // 2, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if math.gcd(_PUBLIC_EXPONENT, phi) != 1:
            continue
        d = pow(_PUBLIC_EXPONENT, -1, phi)
        if p < q:
            p, q = q, p  # CRT convention: p > q
        private = RsaPrivateKey(
            n=n, d=d, p=p, q=q,
            d_p=d % (p - 1), d_q=d % (q - 1), q_inv=pow(q, -1, p),
        )
        return RsaKeyPair(public=RsaPublicKey(n=n, e=_PUBLIC_EXPONENT), private=private)


# ----------------------------------------------------------------------
# encryption (PKCS#1-v1.5-style padding)
# ----------------------------------------------------------------------
def encrypt(public: RsaPublicKey, plaintext: bytes, rng: random.Random) -> bytes:
    """Encrypt ``plaintext`` (must fit ``public.max_payload_bytes``)."""
    k = (public.n.bit_length() + 7) // 8
    if len(plaintext) > k - 11:
        raise ValueError(
            f"plaintext too long: {len(plaintext)} > {k - 11} bytes"
        )
    pad_len = k - len(plaintext) - 3
    padding = bytes(rng.randrange(1, 256) for _ in range(pad_len))
    block = b"\x00\x02" + padding + b"\x00" + plaintext
    m = int.from_bytes(block, "big")
    c = pow(m, public.e, public.n)
    return c.to_bytes(k, "big")


def decrypt(private: RsaPrivateKey, ciphertext: bytes) -> bytes:
    """Invert :func:`encrypt`; raises ValueError on malformed padding."""
    k = (private.n.bit_length() + 7) // 8
    c = int.from_bytes(ciphertext, "big")
    if c >= private.n:
        raise ValueError("ciphertext out of range")
    m = private._decrypt_int(c)
    block = m.to_bytes(k, "big")
    if block[0] != 0 or block[1] != 2:
        raise ValueError("decryption error: bad padding header")
    try:
        separator = block.index(b"\x00", 2)
    except ValueError:
        raise ValueError("decryption error: missing padding separator") from None
    if separator < 10:
        raise ValueError("decryption error: padding too short")
    return block[separator + 1 :]


# ----------------------------------------------------------------------
# signatures (SHA-256, full-domain-ish)
# ----------------------------------------------------------------------
def sign(private: RsaPrivateKey, message: bytes) -> bytes:
    """Sign SHA-256(message) with the private exponent."""
    k = (private.n.bit_length() + 7) // 8
    digest = int.from_bytes(hashlib.sha256(message).digest(), "big") % private.n
    s = private._decrypt_int(digest)
    return s.to_bytes(k, "big")


def verify(public: RsaPublicKey, message: bytes, signature: bytes) -> bool:
    """Check a signature produced by :func:`sign`."""
    s = int.from_bytes(signature, "big")
    if s >= public.n:
        return False
    recovered = pow(s, public.e, public.n)
    digest = int.from_bytes(hashlib.sha256(message).digest(), "big") % public.n
    return recovered == digest
