"""Cryptographic substrate: RSA, AES, providers, and the CPU cost model."""

from .aes import AES128, ctr_transform
from .costmodel import PAPER_COSTS, CostModel, CpuAccountant, OpRecord
from .primes import generate_prime, is_probable_prime
from .provider import (
    CryptoError,
    CryptoProvider,
    EncryptedPayload,
    KeyPair,
    PublicKey,
    RealCryptoProvider,
    Sealed,
    SimCryptoProvider,
)
from .rsa import RsaKeyPair, RsaPrivateKey, RsaPublicKey, generate_keypair
from .stream import stream_transform, tag, verify_tag

__all__ = [
    "AES128",
    "CostModel",
    "CpuAccountant",
    "CryptoError",
    "CryptoProvider",
    "EncryptedPayload",
    "KeyPair",
    "OpRecord",
    "PAPER_COSTS",
    "PublicKey",
    "RealCryptoProvider",
    "RsaKeyPair",
    "RsaPrivateKey",
    "RsaPublicKey",
    "Sealed",
    "SimCryptoProvider",
    "ctr_transform",
    "generate_keypair",
    "generate_prime",
    "is_probable_prime",
    "stream_transform",
    "tag",
    "verify_tag",
]
