"""Prime generation for RSA key material.

Miller-Rabin probabilistic primality testing with a deterministic witness
set for small inputs and random witnesses above, plus trial division by
small primes to discard most composites cheaply.
"""

from __future__ import annotations

import random

__all__ = ["is_probable_prime", "generate_prime"]

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
]

# Deterministic Miller-Rabin witnesses: correct for all n < 3.3e24
# (Sorenson & Webster).
_DETERMINISTIC_WITNESSES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41]
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981


def _miller_rabin_round(n: int, a: int, d: int, r: int) -> bool:
    """One Miller-Rabin round; True when ``n`` passes for witness ``a``."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = x * x % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rng: random.Random | None = None, rounds: int = 20) -> bool:
    """Miller-Rabin primality test.

    Deterministic (and exact) below ~3.3e24; probabilistic with ``rounds``
    random witnesses above — error probability below 4^-rounds.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    if n < _DETERMINISTIC_BOUND:
        witnesses = [a for a in _DETERMINISTIC_WITNESSES if a < n - 1]
    else:
        if rng is None:
            rng = random.Random()
        witnesses = [rng.randrange(2, n - 1) for _ in range(rounds)]
    return all(_miller_rabin_round(n, a, d, r) for a in witnesses)


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime of exactly ``bits`` bits.

    The top two bits are forced to 1 so the product of two such primes has
    the full 2*bits length (standard RSA practice); the low bit is forced to
    1 for oddness.
    """
    if bits < 8:
        raise ValueError(f"prime size too small: {bits} bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate, rng):
            return candidate
