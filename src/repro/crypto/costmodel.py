"""Simulated CPU cost accounting for cryptographic operations.

The paper's Table II reports *measured* CPU time per PPSS cycle on 2.2 GHz
Core 2 Duo machines.  Our substrate executes (small-key or simulated)
crypto, so wall-clock time is meaningless; instead every operation charges a
*calibrated* cost to the node performing it.  Calibration constants are set
for the paper-era hardware and 1024/2048-bit RSA with 1 KB serialized keys:
RSA private-key operations in the ~45 ms range, public-key operations a
couple of ms, AES at tens of microseconds per kilobyte.

The WCL also uses the charged durations as processing delays, so Fig. 7's
breakdown (path build vs decrypt vs network) is reproducible.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..net.address import NodeId
from ..telemetry import NULL_TELEMETRY

if TYPE_CHECKING:
    from ..telemetry import Telemetry

__all__ = ["CostModel", "CpuAccountant", "OpRecord", "PAPER_COSTS"]


@dataclass(frozen=True)
class CostModel:
    """Per-operation CPU costs in milliseconds.

    Calibrated against Table II: with ~6 RSA decrypts per N-node PPSS cycle
    and the paper's 293 ms/cycle figure, one private-key operation lands in
    the ~45 ms range (RSA with 1 KB serialized keys through Lua/C bindings
    on a 2.2 GHz Core 2 Duo shared by ~45 emulated nodes).  Public-key
    operations with e=65537 are ~20x cheaper; AES streams at tens of
    microseconds per kilobyte.
    """

    rsa_decrypt_ms: float = 45.0  # private-key op (onion layer peel)
    rsa_encrypt_ms: float = 2.0  # public-key op (onion layer add)
    rsa_sign_ms: float = 45.0  # private-key op (passport issuance)
    rsa_verify_ms: float = 2.0  # public-key op (passport check)
    aes_ms_per_kb: float = 0.016  # bulk symmetric encryption
    aes_setup_ms: float = 0.005  # key schedule
    # Lognormal sigma for per-operation load jitter (OS scheduling, co-hosted
    # nodes contending for the CPU).  Applied only when the accountant is
    # given an RNG; 0 disables it.
    jitter_sigma: float = 0.25

    def aes_ms(self, size_bytes: int) -> float:
        return self.aes_setup_ms + self.aes_ms_per_kb * (size_bytes / 1024.0)


PAPER_COSTS = CostModel()
"""Default calibration used by the evaluation benchmarks."""


@dataclass
class OpRecord:
    """Accumulated cost of one operation type at one node."""

    count: int = 0
    total_ms: float = 0.0

    def add(self, ms: float) -> None:
        self.count += 1
        self.total_ms += ms


class CpuAccountant:
    """Records (node, operation, context) -> cost; supports epoch snapshots.

    ``context`` is a free-form tag ("wcl.request", "wcl.response", ...) so
    experiments can produce the request/response breakdown of Fig. 7.
    """

    def __init__(
        self,
        model: CostModel | None = None,
        rng: "random.Random | None" = None,
    ) -> None:
        self.model = model if model is not None else PAPER_COSTS
        self._rng = rng
        self._telemetry = NULL_TELEMETRY
        self._records: dict[NodeId, dict[tuple[str, str], OpRecord]] = defaultdict(
            lambda: defaultdict(OpRecord)
        )

    def bind_telemetry(self, telemetry: "Telemetry") -> None:
        """Mirror every charged operation into telemetry counters.

        ``crypto.ms`` / ``crypto.ops`` are labelled (node, op) so Table II
        can read per-node AES vs RSA totals straight from the registry."""
        self._telemetry = telemetry

    def _jitter(self, ms: float) -> float:
        """Multiplicative load jitter; identity without an RNG (unit tests)."""
        sigma = self.model.jitter_sigma
        if self._rng is None or sigma <= 0:
            return ms
        return ms * self._rng.lognormvariate(0.0, sigma)

    # -- charging helpers; each returns the charged duration in seconds so
    # callers can also apply it as a processing delay.
    def charge(self, node: NodeId, op: str, ms: float, context: str = "") -> float:
        self._records[node][(op, context)].add(ms)
        tel = self._telemetry
        if tel.enabled:
            tel.counter("crypto.ms", node=node, op=op, layer="crypto").inc(ms)
            tel.counter("crypto.ops", node=node, op=op, layer="crypto").inc()
        return ms / 1000.0

    def rsa_decrypt(self, node: NodeId, context: str = "") -> float:
        return self.charge(
            node, "rsa_decrypt", self._jitter(self.model.rsa_decrypt_ms), context
        )

    def rsa_encrypt(self, node: NodeId, context: str = "") -> float:
        return self.charge(
            node, "rsa_encrypt", self._jitter(self.model.rsa_encrypt_ms), context
        )

    def rsa_sign(self, node: NodeId, context: str = "") -> float:
        return self.charge(
            node, "rsa_sign", self._jitter(self.model.rsa_sign_ms), context
        )

    def rsa_verify(self, node: NodeId, context: str = "") -> float:
        return self.charge(
            node, "rsa_verify", self._jitter(self.model.rsa_verify_ms), context
        )

    def aes(self, node: NodeId, size_bytes: int, context: str = "") -> float:
        return self.charge(
            node, "aes", self._jitter(self.model.aes_ms(size_bytes)), context
        )

    def aes_layers(
        self, node: NodeId, size_bytes: int, layers: int, context: str = ""
    ) -> float:
        """``layers`` symmetric passes over one body, charged as one op.

        The circuit-mode wrap runs all layers in a single compiled kernel,
        so the model charges the combined cost with a single record update
        and one jitter draw (the layers execute back-to-back under the
        same load conditions).  The op name stays ``aes`` so Table II's
        AES-vs-RSA breakdown aggregates circuit traffic naturally.
        """
        return self.charge(
            node, "aes",
            self._jitter(self.model.aes_ms(size_bytes) * layers), context,
        )

    # -- reporting
    def node_total_ms(self, node: NodeId, op_prefix: str = "") -> float:
        """Total milliseconds charged to ``node`` for ops matching the prefix."""
        records = self._records.get(node)
        if not records:
            return 0.0
        return sum(
            record.total_ms
            for (op, _ctx), record in records.items()
            if op.startswith(op_prefix)
        )

    def node_context_ms(self, node: NodeId, context: str) -> float:
        records = self._records.get(node)
        if not records:
            return 0.0
        return sum(
            record.total_ms
            for (_op, ctx), record in records.items()
            if ctx == context
        )

    def op_breakdown(self, node: NodeId) -> dict[str, OpRecord]:
        """Aggregate per-operation records for a node (contexts merged)."""
        merged: dict[str, OpRecord] = defaultdict(OpRecord)
        for (op, _ctx), record in self._records.get(node, {}).items():
            merged[op].count += record.count
            merged[op].total_ms += record.total_ms
        return dict(merged)

    def nodes(self) -> list[NodeId]:
        return list(self._records.keys())

    def reset(self) -> None:
        self._records.clear()
