"""Deterministic fault injection on the network fabric.

The :class:`FaultInjector` executes a :class:`~repro.faults.plan.FaultPlan`
against a running :class:`~repro.harness.world.World`.  It installs itself
as the network's fault hook: every send and every delivery asks the
injector whether an active fault swallows the message.  Four fault families
are supported (see :mod:`repro.faults.plan`):

- **blackholes** — directed (src, dst) pairs whose traffic vanishes;
- **loss bursts** — extra uniform loss windows, stacking multiplicatively;
- **partitions** — seeded group splits with scheduled healing;
- **stalls** — nodes that silently drop all traffic, both directions;
- **NAT resets / rebinds** — devices that forget their association rules,
  killing established inbound sessions;
- **transit shaping** — extra delay, duplication and reordering windows,
  applied through the fabric's ``on_transit`` hook (the live fabric
  executes the same directives with real scheduler timers; see
  :mod:`repro.faults.live`).

Determinism: victim selection uses the world registry's ``faults`` stream
and iterates populations in sorted-id order, and the loss draw consumes the
same stream in simulator event order — so two same-seed runs inject exactly
the same faults and export byte-identical telemetry traces.

Every injected fault and every swallowed message is counted through the
telemetry layer under ``fault.*`` so resilience experiments can correlate
protocol-level recovery with the raw fault timeline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..net.address import NodeId
from .plan import (
    Blackhole,
    Delay,
    Duplicate,
    FaultDirective,
    FaultPlan,
    LossBurst,
    NatRebind,
    NatReset,
    Partition,
    Reorder,
    Stall,
)

if TYPE_CHECKING:  # the harness imports nothing from faults; cycle-safe
    from ..harness.world import World

__all__ = ["FaultInjector", "FaultStats"]


@dataclass
class FaultStats:
    """What the injector did and what it swallowed."""

    blackhole_drops: int = 0
    partition_drops: int = 0
    stall_drops: int = 0
    loss_drops: int = 0
    faults_activated: int = 0
    faults_healed: int = 0
    nodes_stalled: int = 0
    nat_resets: int = 0
    nat_rebinds: int = 0
    sessions_invalidated: int = 0  # NAT mappings wiped by resets/rebinds
    delays_injected: int = 0
    duplicates_injected: int = 0
    reorders_injected: int = 0
    active_rates: list[float] = field(default_factory=list)


class FaultInjector:
    """Applies a fault plan to a world's network fabric."""

    def __init__(
        self,
        world: "World",
        plan: FaultPlan | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self.world = world
        self._sim = world.sim
        self._rng = rng if rng is not None else world.registry.stream("faults")
        self.telemetry = world.telemetry
        self.stats = FaultStats()
        # Active fault state.
        self._blackholes: set[tuple[NodeId, NodeId]] = set()
        self._stalled: set[NodeId] = set()
        self._loss_rates: list[float] = []
        self._delays: list[Delay] = []
        self._dup_rates: list[float] = []
        self._reorders: list[Reorder] = []
        # node -> partition group index; None when no partition is active.
        self._partition: dict[NodeId, int] | None = None
        self._partition_groups = 0
        self._events: list[object] = []  # pending sim events (cancellable)
        world.network.set_fault_hook(self)
        if plan is not None:
            self.arm(plan)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def arm(self, plan: FaultPlan | list[FaultDirective]) -> None:
        """Schedule every directive relative to the current sim time."""
        for directive in plan:
            self.schedule(directive)

    def schedule(self, directive: FaultDirective, base: float | None = None) -> None:
        """Schedule one directive; times are relative to ``base`` (now)."""
        sim = self._sim
        base = sim.now if base is None else base
        if isinstance(directive, Blackhole):
            self._at(base + directive.at, lambda d=directive: self._open_blackhole(d))
        elif isinstance(directive, LossBurst):
            self._at(base + directive.start, lambda d=directive: self._start_loss(d))
        elif isinstance(directive, Partition):
            self._at(base + directive.start, lambda d=directive: self._split(d))
        elif isinstance(directive, Stall):
            self._at(base + directive.at, lambda d=directive: self._stall(d))
        elif isinstance(directive, NatReset):
            self._at(base + directive.at, lambda d=directive: self._reset_nat(d))
        elif isinstance(directive, Delay):
            self._at(base + directive.start, lambda d=directive: self._start_delay(d))
        elif isinstance(directive, Duplicate):
            self._at(base + directive.start, lambda d=directive: self._start_dup(d))
        elif isinstance(directive, Reorder):
            self._at(
                base + directive.start, lambda d=directive: self._start_reorder(d)
            )
        elif isinstance(directive, NatRebind):
            self._at(base + directive.at, lambda d=directive: self._rebind_nat(d))
        else:
            raise TypeError(f"not a fault directive: {directive!r}")

    def _at(self, time: float, callback) -> None:
        self._events.append(self._sim.schedule_at(time, callback))

    def cancel_pending(self) -> None:
        """Cancel not-yet-fired directives and heal everything active."""
        for event in self._events:
            event.cancel()  # type: ignore[attr-defined]
        self._events.clear()
        self.heal_all()

    def heal_all(self) -> None:
        """Immediately clear all active fault state (partitions, stalls...)."""
        self._blackholes.clear()
        self._stalled.clear()
        self._loss_rates.clear()
        self._delays.clear()
        self._dup_rates.clear()
        self._reorders.clear()
        self._partition = None

    # ------------------------------------------------------------------
    # the network hook (called on every send / delivery)
    # ------------------------------------------------------------------
    def on_send(self, src: NodeId, dst_hint: NodeId) -> str | None:
        """Reason the egress message is swallowed, or None to let it pass."""
        reason = self._deterministic_drop(src, dst_hint)
        if reason is not None:
            return reason
        if self._loss_rates and self._rng.random() < self._effective_loss():
            self.stats.loss_drops += 1
            self._count_drop("loss")
            return "loss"
        return None

    def on_transit(self, src: NodeId, dst_hint: NodeId) -> tuple[float, int]:
        """Transit-shaping effects for one message: (extra_delay, copies).

        Consulted by the fabric after the drop checks pass.  Returns the
        extra seconds the message spends in flight and how many copies are
        delivered (1 = normal, 2 = duplicated).  The RNG is only consumed
        while a shaping directive is active, so plans without delay/
        duplicate/reorder directives leave existing traces byte-identical.
        """
        extra = 0.0
        copies = 1
        for directive in self._delays:
            if directive.rate >= 1.0 or self._rng.random() < directive.rate:
                extra += directive.delay
                if directive.jitter:
                    extra += self._rng.random() * directive.jitter
                self.stats.delays_injected += 1
                self._count_shaping("delay")
        for rate in self._dup_rates:
            if self._rng.random() < rate:
                copies += 1
                self.stats.duplicates_injected += 1
                self._count_shaping("duplicate")
        for directive in self._reorders:
            if self._rng.random() < directive.rate:
                extra += directive.delay
                self.stats.reorders_injected += 1
                self._count_shaping("reorder")
        return extra, copies

    @property
    def shaping_active(self) -> bool:
        """Whether any delay/duplicate/reorder directive is currently live."""
        return bool(self._delays or self._dup_rates or self._reorders)

    def on_deliver(self, src: NodeId, owner: NodeId) -> str | None:
        """Ingress check: faults that arose while the message was in flight
        (a partition forming, a node stalling) still swallow it — a link that
        is down when the packet arrives loses the packet."""
        return self._deterministic_drop(src, owner)

    def _deterministic_drop(self, src: NodeId, dst: NodeId) -> str | None:
        if (src, dst) in self._blackholes:
            self.stats.blackhole_drops += 1
            self._count_drop("blackhole")
            return "blackhole"
        if src in self._stalled or dst in self._stalled:
            self.stats.stall_drops += 1
            self._count_drop("stall")
            return "stall"
        partition = self._partition
        if partition is not None:
            if self._group_of(src) != self._group_of(dst):
                self.stats.partition_drops += 1
                self._count_drop("partition")
                return "partition"
        return None

    def _effective_loss(self) -> float:
        keep = 1.0
        for rate in self._loss_rates:
            keep *= 1.0 - rate
        return 1.0 - keep

    def _group_of(self, node: NodeId) -> int:
        assert self._partition is not None
        group = self._partition.get(node)
        if group is None:
            # Nodes that joined after the split land in a deterministic
            # group: a partition does not exempt newcomers.
            group = node % self._partition_groups
            self._partition[node] = group
        return group

    # ------------------------------------------------------------------
    # activations
    # ------------------------------------------------------------------
    def _open_blackhole(self, directive: Blackhole) -> None:
        self._blackholes.add((directive.src, directive.dst))
        self._record_activation("blackhole")
        if directive.duration is not None:
            self._at(
                self._sim.now + directive.duration,
                lambda: self._close_blackhole(directive),
            )

    def _close_blackhole(self, directive: Blackhole) -> None:
        self._blackholes.discard((directive.src, directive.dst))
        self._record_heal("blackhole")

    def _start_loss(self, directive: LossBurst) -> None:
        self._loss_rates.append(directive.rate)
        self._record_activation("loss")
        self._at(
            self._sim.now + (directive.end - directive.start),
            lambda: self._stop_loss(directive),
        )

    def _stop_loss(self, directive: LossBurst) -> None:
        try:
            self._loss_rates.remove(directive.rate)
        except ValueError:
            pass
        self._record_heal("loss")

    def _split(self, directive: Partition) -> None:
        ids = sorted(n.node_id for n in self.world.alive_nodes())
        self._rng.shuffle(ids)
        groups = directive.group_count
        self._partition = {nid: i % groups for i, nid in enumerate(ids)}
        self._partition_groups = groups
        self._record_activation("partition")
        self._at(
            self._sim.now + (directive.end - directive.start), self._heal_partition
        )

    def _heal_partition(self) -> None:
        self._partition = None
        self._record_heal("partition")

    def _stall(self, directive: Stall) -> None:
        ids = sorted(
            n.node_id
            for n in self.world.alive_nodes()
            if n.node_id not in self._stalled
        )
        count = min(len(ids), max(1, round(len(ids) * directive.fraction)))
        victims = self._rng.sample(ids, count) if count else []
        self._stalled.update(victims)
        self.stats.nodes_stalled += len(victims)
        self._record_activation("stall")
        if self.telemetry.enabled:
            self.telemetry.counter("fault.stalled_nodes", layer="fault").inc(
                len(victims)
            )
        self._at(
            self._sim.now + directive.duration,
            lambda: self._unstall(victims),
        )

    def _unstall(self, victims: list[NodeId]) -> None:
        self._stalled.difference_update(victims)
        self._record_heal("stall")

    def _reset_nat(self, directive: NatReset) -> None:
        victims, wiped = self._wipe_nat_mappings(directive.fraction)
        self.stats.nat_resets += len(victims)
        self.stats.sessions_invalidated += wiped
        self._record_activation("nat_reset")
        if self.telemetry.enabled:
            self.telemetry.counter("fault.nat_resets", layer="fault").inc(
                len(victims)
            )

    def _rebind_nat(self, directive: NatRebind) -> None:
        # The sim fabric has no sockets to close; a rebind's observable
        # effect — peers' established paths to the victim go dark until NAT
        # traversal re-discovers the endpoint — is a mapping wipe.
        victims, wiped = self._wipe_nat_mappings(directive.fraction)
        self.stats.nat_rebinds += len(victims)
        self.stats.sessions_invalidated += wiped
        self._record_activation("nat_rebind")
        if self.telemetry.enabled:
            self.telemetry.counter("fault.nat_rebinds", layer="fault").inc(
                len(victims)
            )

    def _wipe_nat_mappings(self, fraction: float) -> tuple[list[NodeId], int]:
        topology = self.world.topology
        natted = sorted(
            n.node_id
            for n in self.world.alive_nodes()
            if topology.knows(n.node_id)
            and topology.assignment(n.node_id).device is not None
        )
        count = min(len(natted), max(1, round(len(natted) * fraction)))
        victims = self._rng.sample(natted, count) if count else []
        wiped = 0
        for nid in victims:
            device = topology.assignment(nid).device
            assert device is not None
            wiped += device.reset_mappings()
        return victims, wiped

    def _start_delay(self, directive: Delay) -> None:
        self._delays.append(directive)
        self._record_activation("delay")
        self._at(
            self._sim.now + (directive.end - directive.start),
            lambda: self._stop_delay(directive),
        )

    def _stop_delay(self, directive: Delay) -> None:
        try:
            self._delays.remove(directive)
        except ValueError:
            pass
        self._record_heal("delay")

    def _start_dup(self, directive: Duplicate) -> None:
        self._dup_rates.append(directive.rate)
        self._record_activation("duplicate")
        self._at(
            self._sim.now + (directive.end - directive.start),
            lambda: self._stop_dup(directive),
        )

    def _stop_dup(self, directive: Duplicate) -> None:
        try:
            self._dup_rates.remove(directive.rate)
        except ValueError:
            pass
        self._record_heal("duplicate")

    def _start_reorder(self, directive: Reorder) -> None:
        self._reorders.append(directive)
        self._record_activation("reorder")
        self._at(
            self._sim.now + (directive.end - directive.start),
            lambda: self._stop_reorder(directive),
        )

    def _stop_reorder(self, directive: Reorder) -> None:
        try:
            self._reorders.remove(directive)
        except ValueError:
            pass
        self._record_heal("reorder")

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def stalled_nodes(self) -> set[NodeId]:
        return set(self._stalled)

    def partition_active(self) -> bool:
        return self._partition is not None

    def _count_drop(self, reason: str) -> None:
        if self.telemetry.enabled:
            self.telemetry.counter(
                "fault.drops", layer="fault", reason=reason
            ).inc()

    def _count_shaping(self, kind: str) -> None:
        if self.telemetry.enabled:
            self.telemetry.counter(
                "fault.shaped", layer="fault", kind=kind
            ).inc()

    def _record_activation(self, kind: str) -> None:
        self.stats.faults_activated += 1
        if self.telemetry.enabled:
            self.telemetry.counter(
                "fault.injected", layer="fault", kind=kind
            ).inc()
            self.telemetry.instant(f"fault.{kind}.on", layer="fault")

    def _record_heal(self, kind: str) -> None:
        self.stats.faults_healed += 1
        if self.telemetry.enabled:
            self.telemetry.counter(
                "fault.healed", layer="fault", kind=kind
            ).inc()
            self.telemetry.instant(f"fault.{kind}.off", layer="fault")
