"""Fault injection: deterministic partial failures for robustness testing.

See :mod:`.plan` for the fault taxonomy, :mod:`.injector` for execution on
the simulated fabric and :mod:`.live` for execution against real UDP
datagrams (:class:`~repro.faults.live.LiveFaultFabric`).  Fault directives
are also scriptable through the churn script language
(:mod:`repro.churn.script`)::

    from 300s to 600s partition groups a|b
    at 400s blackhole 5 -> 9
    at 500s stall 3% for 120s
    at 600s reset nat 10%
    at 620s rebind nat 10%
    from 700s to 760s loss 20%
    from 700s to 760s delay 50ms 20%
    from 700s to 760s duplicate 10%
    from 700s to 760s reorder 10% by 80ms

and serializable to/from canonical JSON (``FaultPlan.to_json`` /
``FaultPlan.from_json``) so soak schedules travel on CLIs and into
recorded perf extras.
"""

from .injector import FaultInjector, FaultStats
from .live import LiveFaultFabric, LiveFaultStats
from .plan import (
    Blackhole,
    Delay,
    Duplicate,
    FaultDirective,
    FaultPlan,
    FaultPlanError,
    LossBurst,
    NatRebind,
    NatReset,
    Partition,
    Reorder,
    Stall,
    is_fault_directive,
)

__all__ = [
    "Blackhole",
    "Delay",
    "Duplicate",
    "FaultDirective",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultStats",
    "LiveFaultFabric",
    "LiveFaultStats",
    "LossBurst",
    "NatRebind",
    "NatReset",
    "Partition",
    "Reorder",
    "Stall",
    "is_fault_directive",
]
