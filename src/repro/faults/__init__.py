"""Fault injection: deterministic partial failures for robustness testing.

See :mod:`.plan` for the fault taxonomy and :mod:`.injector` for execution.
Fault directives are also scriptable through the churn script language
(:mod:`repro.churn.script`)::

    from 300s to 600s partition groups a|b
    at 400s blackhole 5 -> 9
    at 500s stall 3% for 120s
    at 600s reset nat 10%
    from 700s to 760s loss 20%
"""

from .injector import FaultInjector, FaultStats
from .plan import (
    Blackhole,
    FaultDirective,
    FaultPlan,
    LossBurst,
    NatReset,
    Partition,
    Stall,
    is_fault_directive,
)

__all__ = [
    "Blackhole",
    "FaultDirective",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "LossBurst",
    "NatReset",
    "Partition",
    "Stall",
    "is_fault_directive",
]
