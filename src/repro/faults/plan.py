"""Fault directives and the deterministic :class:`FaultPlan`.

The paper's Table I evaluates WHISPER only against whole-node churn; real
deployments also see *partial* failures: links that silently blackhole,
loss-rate bursts, network partitions that later heal, nodes that stall
(alive but dropping everything) and NAT boxes that reboot and forget their
mappings.  This module declares those faults as data — small frozen
dataclasses that a script parser (see :mod:`repro.churn.script`) or an
experiment builds directly — and bundles them into a :class:`FaultPlan`
that the :class:`~repro.faults.injector.FaultInjector` executes on the
simulated clock.

All times are relative to the moment the plan is armed (exactly like churn
scripts), so the same plan can run after any warm-up period.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Union

from ..net.address import NodeId

__all__ = [
    "Blackhole",
    "LossBurst",
    "Partition",
    "Stall",
    "NatReset",
    "Delay",
    "Duplicate",
    "Reorder",
    "NatRebind",
    "FaultDirective",
    "FaultPlan",
    "FaultPlanError",
    "is_fault_directive",
]


@dataclass(frozen=True)
class Blackhole:
    """Silently drop every message from ``src`` to ``dst``.

    Starts at ``at``; ``duration`` of ``None`` means the link never heals
    (the paper's one-way route failures).  The reverse direction is not
    affected — directed blackholes model asymmetric routing failures.
    """

    at: float
    src: NodeId
    dst: NodeId
    duration: float | None = None

    def __post_init__(self) -> None:
        if self.duration is not None and self.duration <= 0:
            raise ValueError("blackhole duration must be positive")


@dataclass(frozen=True)
class LossBurst:
    """Extra uniform message loss of ``rate`` during [start, end].

    Stacks on top of the latency model's own loss (PlanetLab profile), the
    way congestion events stack on a testbed's background loss.
    """

    start: float
    end: float
    rate: float  # fraction of messages dropped, e.g. 0.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"loss rate out of range: {self.rate}")
        if self.end < self.start:
            raise ValueError("loss burst ends before it starts")


@dataclass(frozen=True)
class Partition:
    """Split the live population into isolated groups during [start, end].

    ``group_count`` groups are drawn uniformly (seeded) when the partition
    activates; traffic *between* groups is dropped, traffic *within* a group
    flows normally.  Healing at ``end`` is scheduled up front, matching how
    churn scripts declare whole scenarios in advance.
    """

    start: float
    end: float
    group_count: int = 2

    def __post_init__(self) -> None:
        if self.group_count < 2:
            raise ValueError("a partition needs at least 2 groups")
        if self.end < self.start:
            raise ValueError("partition heals before it forms")


@dataclass(frozen=True)
class Stall:
    """A fraction of live nodes stops emitting/receiving for ``duration``.

    Stalled nodes stay attached (their timers keep firing, they think they
    are fine) but every message in or out is dropped — the relay-wedged /
    GC-paused / laptop-lid-closed failure mode.
    """

    at: float
    fraction: float
    duration: float

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"stall fraction out of range: {self.fraction}")
        if self.duration <= 0:
            raise ValueError("stall duration must be positive")


@dataclass(frozen=True)
class NatReset:
    """A fraction of natted nodes' NAT devices reboot at ``at``.

    Rebooting a NAT box forgets every association rule: established inbound
    sessions towards the node die silently (packets to the old external
    ports are filtered) until traffic re-opens fresh mappings.
    """

    at: float
    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"nat reset fraction out of range: {self.fraction}")


@dataclass(frozen=True)
class Delay:
    """Extra per-message transit delay of ``delay`` seconds during [start, end].

    Each affected message (a ``rate`` fraction of traffic) is held back by
    ``delay`` plus a uniform draw from [0, jitter] — the bufferbloat /
    congested-uplink failure mode.  On the live fabric the hold-back is a
    real scheduler timer between ``sendto`` calls; in the simulator it adds
    to the latency model's transit time.
    """

    start: float
    end: float
    delay: float
    jitter: float = 0.0
    rate: float = 1.0

    def __post_init__(self) -> None:
        if self.delay <= 0:
            raise ValueError("delay must be positive")
        if self.jitter < 0:
            raise ValueError("delay jitter cannot be negative")
        if not 0.0 < self.rate <= 1.0:
            raise ValueError(f"delay rate out of range: {self.rate}")
        if self.end < self.start:
            raise ValueError("delay window ends before it starts")


@dataclass(frozen=True)
class Duplicate:
    """A ``rate`` fraction of messages is delivered twice during [start, end].

    UDP duplication happens on real paths (retransmitting middleboxes,
    route flaps); idempotent protocol handling is what this shakes out.
    """

    start: float
    end: float
    rate: float

    def __post_init__(self) -> None:
        if not 0.0 < self.rate <= 1.0:
            raise ValueError(f"duplicate rate out of range: {self.rate}")
        if self.end < self.start:
            raise ValueError("duplicate window ends before it starts")


@dataclass(frozen=True)
class Reorder:
    """A ``rate`` fraction of messages is held back ``delay`` seconds.

    Holding back a minority of packets while the rest flow normally makes
    later packets overtake earlier ones — the classic UDP reordering
    pattern of multi-path routing.
    """

    start: float
    end: float
    rate: float
    delay: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 < self.rate <= 1.0:
            raise ValueError(f"reorder rate out of range: {self.rate}")
        if self.delay <= 0:
            raise ValueError("reorder hold-back delay must be positive")
        if self.end < self.start:
            raise ValueError("reorder window ends before it starts")


@dataclass(frozen=True)
class NatRebind:
    """A ``fraction`` of nodes' NAT mappings rebind to fresh endpoints at ``at``.

    The live fabric closes and reopens the victim's UDP socket mid-run (the
    OS hands out a new port, exactly what a rebooted NAT box does to its
    external mapping); peers keep sending to the stale endpoint until NAT
    re-traversal discovers the new one.  In the simulator the victim's NAT
    device forgets its association rules, the same observable effect.
    """

    at: float
    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"nat rebind fraction out of range: {self.fraction}")


FaultDirective = Union[
    Blackhole, LossBurst, Partition, Stall, NatReset,
    Delay, Duplicate, Reorder, NatRebind,
]

_FAULT_TYPES = (
    Blackhole, LossBurst, Partition, Stall, NatReset,
    Delay, Duplicate, Reorder, NatRebind,
)

_KIND_TO_TYPE = {
    "blackhole": Blackhole,
    "loss": LossBurst,
    "partition": Partition,
    "stall": Stall,
    "nat_reset": NatReset,
    "delay": Delay,
    "duplicate": Duplicate,
    "reorder": Reorder,
    "nat_rebind": NatRebind,
}
_TYPE_TO_KIND = {cls: kind for kind, cls in _KIND_TO_TYPE.items()}


class FaultPlanError(ValueError):
    """A serialized fault plan could not be parsed."""


def is_fault_directive(directive: object) -> bool:
    """Whether a parsed script directive belongs to the fault subsystem."""
    return isinstance(directive, _FAULT_TYPES)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, validated collection of fault directives."""

    directives: tuple[FaultDirective, ...] = ()

    def __post_init__(self) -> None:
        for directive in self.directives:
            if not is_fault_directive(directive):
                raise TypeError(
                    f"not a fault directive: {directive!r}"
                )

    @classmethod
    def of(cls, *directives: FaultDirective) -> "FaultPlan":
        return cls(directives=tuple(directives))

    def __len__(self) -> int:
        return len(self.directives)

    def __iter__(self):
        return iter(self.directives)

    # ------------------------------------------------------------------
    # serialization: soak schedules travel on CLIs and into perf extras
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Canonical JSON (sorted keys, no whitespace variance)."""
        rows = []
        for directive in self.directives:
            row: dict[str, object] = {"kind": _TYPE_TO_KIND[type(directive)]}
            for spec in fields(directive):
                row[spec.name] = getattr(directive, spec.name)
            rows.append(row)
        return json.dumps({"directives": rows}, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse :meth:`to_json` output; raises :class:`FaultPlanError`."""
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(document, dict) or "directives" not in document:
            raise FaultPlanError('fault plan needs a top-level "directives" list')
        rows = document["directives"]
        if not isinstance(rows, list):
            raise FaultPlanError('"directives" must be a list')
        directives: list[FaultDirective] = []
        for index, row in enumerate(rows):
            if not isinstance(row, dict) or "kind" not in row:
                raise FaultPlanError(f'directive #{index} needs a "kind" field')
            kind = row["kind"]
            directive_type = _KIND_TO_TYPE.get(kind)
            if directive_type is None:
                raise FaultPlanError(
                    f"directive #{index}: unknown kind {kind!r} "
                    f"(expected one of {sorted(_KIND_TO_TYPE)})"
                )
            kwargs = {k: v for k, v in row.items() if k != "kind"}
            known = {spec.name for spec in fields(directive_type)}
            unknown = set(kwargs) - known
            if unknown:
                raise FaultPlanError(
                    f"directive #{index} ({kind}): unknown fields {sorted(unknown)}"
                )
            try:
                directives.append(directive_type(**kwargs))
            except (TypeError, ValueError) as exc:
                raise FaultPlanError(
                    f"directive #{index} ({kind}): {exc}"
                ) from exc
        return cls(directives=tuple(directives))
