"""Fault directives and the deterministic :class:`FaultPlan`.

The paper's Table I evaluates WHISPER only against whole-node churn; real
deployments also see *partial* failures: links that silently blackhole,
loss-rate bursts, network partitions that later heal, nodes that stall
(alive but dropping everything) and NAT boxes that reboot and forget their
mappings.  This module declares those faults as data — small frozen
dataclasses that a script parser (see :mod:`repro.churn.script`) or an
experiment builds directly — and bundles them into a :class:`FaultPlan`
that the :class:`~repro.faults.injector.FaultInjector` executes on the
simulated clock.

All times are relative to the moment the plan is armed (exactly like churn
scripts), so the same plan can run after any warm-up period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..net.address import NodeId

__all__ = [
    "Blackhole",
    "LossBurst",
    "Partition",
    "Stall",
    "NatReset",
    "FaultDirective",
    "FaultPlan",
    "is_fault_directive",
]


@dataclass(frozen=True)
class Blackhole:
    """Silently drop every message from ``src`` to ``dst``.

    Starts at ``at``; ``duration`` of ``None`` means the link never heals
    (the paper's one-way route failures).  The reverse direction is not
    affected — directed blackholes model asymmetric routing failures.
    """

    at: float
    src: NodeId
    dst: NodeId
    duration: float | None = None

    def __post_init__(self) -> None:
        if self.duration is not None and self.duration <= 0:
            raise ValueError("blackhole duration must be positive")


@dataclass(frozen=True)
class LossBurst:
    """Extra uniform message loss of ``rate`` during [start, end].

    Stacks on top of the latency model's own loss (PlanetLab profile), the
    way congestion events stack on a testbed's background loss.
    """

    start: float
    end: float
    rate: float  # fraction of messages dropped, e.g. 0.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"loss rate out of range: {self.rate}")
        if self.end < self.start:
            raise ValueError("loss burst ends before it starts")


@dataclass(frozen=True)
class Partition:
    """Split the live population into isolated groups during [start, end].

    ``group_count`` groups are drawn uniformly (seeded) when the partition
    activates; traffic *between* groups is dropped, traffic *within* a group
    flows normally.  Healing at ``end`` is scheduled up front, matching how
    churn scripts declare whole scenarios in advance.
    """

    start: float
    end: float
    group_count: int = 2

    def __post_init__(self) -> None:
        if self.group_count < 2:
            raise ValueError("a partition needs at least 2 groups")
        if self.end < self.start:
            raise ValueError("partition heals before it forms")


@dataclass(frozen=True)
class Stall:
    """A fraction of live nodes stops emitting/receiving for ``duration``.

    Stalled nodes stay attached (their timers keep firing, they think they
    are fine) but every message in or out is dropped — the relay-wedged /
    GC-paused / laptop-lid-closed failure mode.
    """

    at: float
    fraction: float
    duration: float

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"stall fraction out of range: {self.fraction}")
        if self.duration <= 0:
            raise ValueError("stall duration must be positive")


@dataclass(frozen=True)
class NatReset:
    """A fraction of natted nodes' NAT devices reboot at ``at``.

    Rebooting a NAT box forgets every association rule: established inbound
    sessions towards the node die silently (packets to the old external
    ports are filtered) until traffic re-opens fresh mappings.
    """

    at: float
    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"nat reset fraction out of range: {self.fraction}")


FaultDirective = Union[Blackhole, LossBurst, Partition, Stall, NatReset]

_FAULT_TYPES = (Blackhole, LossBurst, Partition, Stall, NatReset)


def is_fault_directive(directive: object) -> bool:
    """Whether a parsed script directive belongs to the fault subsystem."""
    return isinstance(directive, _FAULT_TYPES)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, validated collection of fault directives."""

    directives: tuple[FaultDirective, ...] = ()

    def __post_init__(self) -> None:
        for directive in self.directives:
            if not is_fault_directive(directive):
                raise TypeError(
                    f"not a fault directive: {directive!r}"
                )

    @classmethod
    def of(cls, *directives: FaultDirective) -> "FaultPlan":
        return cls(directives=tuple(directives))

    def __len__(self) -> int:
        return len(self.directives)

    def __iter__(self):
        return iter(self.directives)
