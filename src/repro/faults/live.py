"""Fault injection against real UDP datagrams.

:class:`LiveFaultFabric` is the live-mode twin of
:class:`~repro.faults.injector.FaultInjector`: it executes the same seeded
:class:`~repro.faults.plan.FaultPlan` directives, but as a send/recv
interposition layer on :class:`~repro.runtime.live.LiveNetwork` — the
datagrams it drops, delays, duplicates, reorders and re-homes are real
frames on real sockets.  Directive-by-directive:

- **loss bursts** — probabilistic drop before ``sendto``;
- **delay / reorder** — the frame is held on an
  :class:`~repro.runtime.clock.AsyncioScheduler` timer and transmitted
  when it fires (reordering emerges from holding back a minority);
- **duplicate** — a second ``sendto`` of the same frame;
- **blackholes** — directed (src → dst) drops, the destination resolved
  through the network's endpoint-owner map;
- **partitions** — seeded group splits over the currently-bound nodes;
- **stalls** — the victim's handler is detached for the window (inbound
  lands in ``no_handler``) and its outbound is swallowed: alive, timers
  firing, totally dark;
- **NAT rebinds / resets** — the victim's socket is closed and reopened
  mid-run (:meth:`~repro.runtime.live.LiveNetwork.rebind_endpoint`), so
  peers keep hitting the stale endpoint until NAT traversal re-discovers
  the fresh one.

Determinism on a wall clock is necessarily weaker than in the simulator:
per-datagram draws depend on how much traffic actually flowed.  What *is*
reproducible run-to-run — and what :meth:`decision_digest` certifies — is
every plan-level decision: activation order and every victim selection
(stall victims, rebind victims, partition grouping), because those draw
from a dedicated seeded stream in sorted-node order, never from traffic.

Every injected fault is counted in telemetry under ``faults.live.*``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..net.address import Endpoint, NodeId
from ..telemetry import NULL_TELEMETRY
from .plan import (
    Blackhole,
    Delay,
    Duplicate,
    FaultDirective,
    FaultPlan,
    LossBurst,
    NatRebind,
    NatReset,
    Partition,
    Reorder,
    Stall,
)

if TYPE_CHECKING:
    from ..runtime.clock import ScheduledCall
    from ..runtime.live import LiveNetwork
    from ..telemetry import Telemetry

__all__ = ["LiveFaultFabric", "LiveFaultStats"]


@dataclass
class LiveFaultStats:
    """What the live fabric did to real datagrams."""

    dropped: int = 0  # loss + blackhole + stall + partition swallows
    delayed: int = 0
    duplicated: int = 0
    reordered: int = 0
    rebinds: int = 0
    nodes_stalled: int = 0
    faults_activated: int = 0
    faults_healed: int = 0
    # Plan-level decisions in execution order: (kind, victims) tuples.
    decisions: list[tuple[str, tuple[NodeId, ...]]] = field(default_factory=list)


class LiveFaultFabric:
    """Executes a FaultPlan against a LiveNetwork's real datagrams."""

    def __init__(
        self,
        network: "LiveNetwork",
        seed: int = 0,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self.network = network
        self.scheduler = network._scheduler
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        # Two independent seeded streams: plan-level decisions (victim
        # selection, partition grouping) must reproduce run-to-run no
        # matter how much traffic flowed, so per-datagram draws get their
        # own stream and can never perturb them.
        self._plan_rng = random.Random(seed)
        self._wire_rng = random.Random(seed ^ 0x5EED5EED)
        self.stats = LiveFaultStats()
        # Active fault state (same vocabulary as the sim injector).
        self._blackholes: set[tuple[NodeId, NodeId]] = set()
        self._stalled: set[NodeId] = set()
        self._stashed_handlers: dict[NodeId, object] = {}
        self._loss_rates: list[float] = []
        self._delays: list[Delay] = []
        self._dup_rates: list[float] = []
        self._reorders: list[Reorder] = []
        self._partition: dict[NodeId, int] | None = None
        self._partition_groups = 0
        self._timers: list["ScheduledCall"] = []
        network.set_fault_fabric(self)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def arm(self, plan: FaultPlan | list[FaultDirective]) -> None:
        """Schedule every directive relative to the current live clock."""
        for directive in plan:
            self.schedule(directive)

    def schedule(self, directive: FaultDirective) -> None:
        if isinstance(directive, Blackhole):
            self._after(directive.at, lambda d=directive: self._open_blackhole(d))
        elif isinstance(directive, LossBurst):
            self._window(
                directive.start, directive.end, "loss",
                lambda d=directive: self._loss_rates.append(d.rate),
                lambda d=directive: self._remove(self._loss_rates, d.rate),
            )
        elif isinstance(directive, Partition):
            self._after(directive.start, lambda d=directive: self._split(d))
        elif isinstance(directive, Stall):
            self._after(directive.at, lambda d=directive: self._stall(d))
        elif isinstance(directive, (NatReset, NatRebind)):
            # On real sockets a reset and a rebind are the same observable
            # event: the endpoint the world knew stops working.
            self._after(directive.at, lambda d=directive: self._rebind(d))
        elif isinstance(directive, Delay):
            self._window(
                directive.start, directive.end, "delay",
                lambda d=directive: self._delays.append(d),
                lambda d=directive: self._remove(self._delays, d),
            )
        elif isinstance(directive, Duplicate):
            self._window(
                directive.start, directive.end, "duplicate",
                lambda d=directive: self._dup_rates.append(d.rate),
                lambda d=directive: self._remove(self._dup_rates, d.rate),
            )
        elif isinstance(directive, Reorder):
            self._window(
                directive.start, directive.end, "reorder",
                lambda d=directive: self._reorders.append(d),
                lambda d=directive: self._remove(self._reorders, d),
            )
        else:
            raise TypeError(f"not a fault directive: {directive!r}")

    def _after(self, delay: float, callback) -> None:
        self._timers.append(self.scheduler.schedule(max(0.0, delay), callback))

    def _window(self, start: float, end: float, kind: str, on, off) -> None:
        def activate() -> None:
            on()
            self._record_activation(kind)

        def heal() -> None:
            off()
            self._record_heal(kind)

        self._after(start, activate)
        self._after(end, heal)

    @staticmethod
    def _remove(active: list, item) -> None:
        try:
            active.remove(item)
        except ValueError:
            pass

    def cancel_pending(self) -> None:
        """Cancel not-yet-fired directives and heal everything active."""
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        self.heal_all()

    def heal_all(self) -> None:
        self._blackholes.clear()
        self._loss_rates.clear()
        self._delays.clear()
        self._dup_rates.clear()
        self._reorders.clear()
        self._partition = None
        for node_id in list(self._stalled):
            self._unstall_node(node_id)

    def detach(self) -> None:
        """Remove the interposition layer (datagrams flow clean again)."""
        self.cancel_pending()
        self.network.set_fault_fabric(None)

    # ------------------------------------------------------------------
    # the datagram interposition surface (called by LiveNetwork)
    # ------------------------------------------------------------------
    def outbound(self, src_node: NodeId, dst: Endpoint, frame: bytes) -> None:
        """Decide one egress datagram's fate; transmit 0..n times."""
        addr = (dst.host, dst.port)
        reason = self._swallow_reason(src_node, self.network.owner_of(dst))
        if reason is not None:
            self.stats.dropped += 1
            self._count("faults.live.dropped", reason=reason)
            return
        if self._loss_rates and self._wire_rng.random() < self._effective_loss():
            self.stats.dropped += 1
            self._count("faults.live.dropped", reason="loss")
            return
        hold = 0.0
        for directive in self._delays:
            if (
                directive.rate >= 1.0
                or self._wire_rng.random() < directive.rate
            ):
                hold += directive.delay
                if directive.jitter:
                    hold += self._wire_rng.random() * directive.jitter
                self.stats.delayed += 1
                self._count("faults.live.delayed")
        for directive in self._reorders:
            if self._wire_rng.random() < directive.rate:
                hold += directive.delay
                self.stats.reordered += 1
                self._count("faults.live.reordered")
        copies = 1
        for rate in self._dup_rates:
            if self._wire_rng.random() < rate:
                copies += 1
                self.stats.duplicated += 1
                self._count("faults.live.duplicated")
        for _ in range(copies):
            if hold > 0.0:
                self._timers.append(
                    self.scheduler.schedule(
                        hold,
                        lambda s=src_node, f=frame, a=addr:
                            self.network.transmit(s, f, a),
                    )
                )
            else:
                self.network.transmit(src_node, frame, addr)

    def inbound(self, node_id: NodeId, addr: tuple[str, int]) -> str | None:
        """Reason an ingress datagram is swallowed, or None to deliver.

        Faults that arose while the datagram was in flight (a partition
        forming, the receiver stalling) still swallow it on arrival.
        """
        src = self.network.owner_of(Endpoint(addr[0], addr[1]))
        reason = self._swallow_reason(src, node_id)
        if reason is not None:
            self.stats.dropped += 1
            self._count("faults.live.dropped", reason=reason)
        return reason

    def _swallow_reason(
        self, src: NodeId | None, dst: NodeId | None
    ) -> str | None:
        if src is not None and dst is not None and (src, dst) in self._blackholes:
            return "blackhole"
        if src in self._stalled or dst in self._stalled:
            return "stall"
        partition = self._partition
        if partition is not None and src is not None and dst is not None:
            if self._group_of(src) != self._group_of(dst):
                return "partition"
        return None

    def _effective_loss(self) -> float:
        keep = 1.0
        for rate in self._loss_rates:
            keep *= 1.0 - rate
        return 1.0 - keep

    def _group_of(self, node: NodeId) -> int:
        assert self._partition is not None
        group = self._partition.get(node)
        if group is None:
            # Late arrivals land in a deterministic group, as in the sim.
            group = node % self._partition_groups
            self._partition[node] = group
        return group

    # ------------------------------------------------------------------
    # activations
    # ------------------------------------------------------------------
    def _open_blackhole(self, directive: Blackhole) -> None:
        self._blackholes.add((directive.src, directive.dst))
        self._decide("blackhole", (directive.src, directive.dst))
        self._record_activation("blackhole")
        if directive.duration is not None:
            self._after(
                directive.duration,
                lambda: self._close_blackhole(directive),
            )

    def _close_blackhole(self, directive: Blackhole) -> None:
        self._blackholes.discard((directive.src, directive.dst))
        self._record_heal("blackhole")

    def _split(self, directive: Partition) -> None:
        ids = sorted(self.network.endpoints)
        self._plan_rng.shuffle(ids)
        groups = directive.group_count
        self._partition = {nid: i % groups for i, nid in enumerate(ids)}
        self._partition_groups = groups
        self._decide("partition", tuple(ids))
        self._record_activation("partition")
        self._after(directive.end - directive.start, self._heal_partition)

    def _heal_partition(self) -> None:
        self._partition = None
        self._record_heal("partition")

    def _stall(self, directive: Stall) -> None:
        ids = sorted(
            nid for nid in self.network.endpoints if nid not in self._stalled
        )
        count = min(len(ids), max(1, round(len(ids) * directive.fraction)))
        victims = self._plan_rng.sample(ids, count) if count else []
        for nid in victims:
            self._stall_node(nid)
        self.stats.nodes_stalled += len(victims)
        self._decide("stall", tuple(victims))
        self._record_activation("stall")
        if self.telemetry.enabled:
            self.telemetry.counter(
                "faults.live.stalled_nodes", layer="fault"
            ).inc(len(victims))
        self._after(directive.duration, lambda: self._unstall(victims))

    def _stall_node(self, node_id: NodeId) -> None:
        self._stalled.add(node_id)
        network = self.network
        handler = network._handlers.get(node_id)
        if handler is not None:
            # Detach for the window: the node's own timers keep firing (it
            # thinks it is fine) while its inbound counts as no_handler.
            self._stashed_handlers[node_id] = handler
            network.detach(node_id)

    def _unstall(self, victims: list[NodeId]) -> None:
        for nid in victims:
            self._unstall_node(nid)
        self._record_heal("stall")

    def _unstall_node(self, node_id: NodeId) -> None:
        self._stalled.discard(node_id)
        handler = self._stashed_handlers.pop(node_id, None)
        network = self.network
        # Only restore if nothing re-attached meanwhile (a supervisor
        # restart installs a fresh incarnation's handler, which wins).
        if (
            handler is not None
            and not network.is_attached(node_id)
            and node_id in network.endpoints
        ):
            network.attach(node_id, handler)  # type: ignore[arg-type]

    def _rebind(self, directive: "NatReset | NatRebind") -> None:
        ids = sorted(self.network.endpoints)
        count = min(len(ids), max(1, round(len(ids) * directive.fraction)))
        victims = self._plan_rng.sample(ids, count) if count else []
        for nid in victims:
            self.network.rebind_endpoint(nid)
        self.stats.rebinds += len(victims)
        self._decide("nat_rebind", tuple(victims))
        self._record_activation("nat_rebind")
        if self.telemetry.enabled:
            self.telemetry.counter(
                "faults.live.rebinds", layer="fault"
            ).inc(len(victims))

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def stalled_nodes(self) -> set[NodeId]:
        return set(self._stalled)

    def partition_active(self) -> bool:
        return self._partition is not None

    def decision_digest(self) -> tuple[tuple[str, tuple[NodeId, ...]], ...]:
        """Every plan-level fault decision so far, in execution order.

        Same seed + same plan + same hosted node set ⇒ identical digest
        across runs, regardless of traffic — the reproducibility contract
        the soak experiment asserts.
        """
        return tuple(self.stats.decisions)

    def _decide(self, kind: str, victims: tuple[NodeId, ...]) -> None:
        self.stats.decisions.append((kind, victims))

    def _count(self, name: str, **labels: object) -> None:
        if self.telemetry.enabled:
            self.telemetry.counter(name, layer="fault", **labels).inc()

    def _record_activation(self, kind: str) -> None:
        self.stats.faults_activated += 1
        if self.telemetry.enabled:
            self.telemetry.counter(
                "faults.live.injected", layer="fault", kind=kind
            ).inc()
            self.telemetry.instant(f"faults.live.{kind}.on", layer="fault")

    def _record_heal(self, kind: str) -> None:
        self.stats.faults_healed += 1
        if self.telemetry.enabled:
            self.telemetry.counter(
                "faults.live.healed", layer="fault", kind=kind
            ).inc()
            self.telemetry.instant(f"faults.live.{kind}.off", layer="fault")
