"""Seeded random payload generators, one per registered message kind.

The property tests and ``benchmarks/bench_wire_codec.py`` both need
realistic payloads for every kind in the registry — including awkward
cases (None-able fields, empty buffers, nested onions, piggybacked
election state).  Generators are deterministic given the ``random.Random``
they are handed, so test failures reproduce from the seed alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.contact import Gateway, PrivateContact
from ..core.election import Heartbeat, Proposal
from ..core.group import (
    GroupKeyring,
    issue_accreditation,
    issue_passport,
)
from ..core.onion import CircuitFrame, CircuitHop, HopSpec, build_circuit_setup, build_onion
from ..core.ppss import PrivateViewEntry
from ..crypto.provider import CryptoProvider, SimCryptoProvider
from ..nat.traversal import NodeDescriptor
from ..nat.types import NatType
from ..net.address import Endpoint, NodeKind
from ..pss.view import ViewEntry
from .registry import registered_kinds

__all__ = ["SampleContext", "sample_payload", "sample_kinds"]


@dataclass
class SampleContext:
    """Shared state for payload generation (keys are expensive to mint)."""

    rng: random.Random
    provider: CryptoProvider
    group: str = "sample-group"
    keyring: GroupKeyring = field(init=False)

    def __post_init__(self) -> None:
        self.keyring = GroupKeyring(group=self.group)
        self.keyring.become_leader(self.provider.generate_keypair())

    @classmethod
    def fresh(cls, seed: int = 0, provider: CryptoProvider | None = None) -> "SampleContext":
        rng = random.Random(seed)
        if provider is None:
            provider = SimCryptoProvider(random.Random(seed + 1))
        return cls(rng=rng, provider=provider)

    # -- building blocks ---------------------------------------------------
    def node_id(self) -> int:
        return self.rng.randrange(1, 10_000)

    def endpoint(self) -> Endpoint:
        return Endpoint(f"pub-{self.rng.randrange(1, 500)}", self.rng.randrange(1024, 65535))

    def descriptor(self) -> NodeDescriptor:
        if self.rng.random() < 0.5:
            return NodeDescriptor(
                node_id=self.node_id(),
                kind=NodeKind.PUBLIC,
                nat_type=NatType.OPEN,
                public_endpoint=self.endpoint(),
            )
        return NodeDescriptor(
            node_id=self.node_id(),
            kind=NodeKind.NATTED,
            nat_type=self.rng.choice(
                [t for t in NatType if t is not NatType.OPEN]
            ),
            public_endpoint=None,
            route=tuple(self.node_id() for _ in range(self.rng.randrange(0, 3))),
        )

    def view_buffer(self) -> list[ViewEntry]:
        return [
            ViewEntry(descriptor=self.descriptor(), age=self.rng.randrange(0, 30))
            for _ in range(self.rng.randrange(0, 6))
        ]

    def public_key(self):
        return self.provider.generate_keypair().public

    def contact(self) -> PrivateContact:
        gateways = tuple(
            Gateway(descriptor=self.descriptor(), key=self.public_key())
            for _ in range(self.rng.randrange(0, 3))
        )
        return PrivateContact(
            descriptor=self.descriptor(), key=self.public_key(), gateways=gateways
        )

    def private_buffer(self) -> list[PrivateViewEntry]:
        return [
            PrivateViewEntry(contact=self.contact(), age=self.rng.randrange(0, 10))
            for _ in range(self.rng.randrange(0, 4))
        ]

    def passport(self):
        return issue_passport(self.provider, self.keyring, self.node_id())

    def heartbeat(self) -> Heartbeat | None:
        if self.rng.random() < 0.4:
            return None
        return Heartbeat(
            leader_id=self.node_id(),
            epoch=self.rng.randrange(1, 5),
            seq=self.rng.randrange(0, 1000),
        )

    def election(self) -> dict[str, Any] | None:
        if self.rng.random() < 0.5:
            return None
        return {
            "proposal": Proposal(
                value=self.rng.getrandbits(32),
                node_id=self.node_id(),
                epoch=self.rng.randrange(1, 5),
            )
        }

    def new_key(self) -> dict[str, Any] | None:
        if self.rng.random() < 0.7:
            return None
        keypair = self.provider.generate_keypair()
        return {
            "group": self.group,
            "leader_id": self.node_id(),
            "leader_key": self.keyring.leader_keypair.public,
            "key": keypair.public,
            "signature": self.provider.sign(
                self.keyring.leader_keypair,
                ("new_key", self.group, keypair.public.fingerprint),
            ),
        }

    def circuit_setup(self):
        path = [
            HopSpec(
                node_id=self.node_id(),
                public_key=self.public_key(),
                public_endpoint=self.endpoint() if self.rng.random() < 0.5 else None,
            )
            for _ in range(self.rng.randrange(2, 4))
        ]
        labels = [self.rng.getrandbits(48) for _ in path]
        hops = [
            CircuitHop(
                circuit_id=labels[index],
                key=self.provider.new_symmetric_key(),
                next_circuit_id=labels[index + 1] if index + 1 < len(path) else None,
                lifetime=float(self.rng.randrange(60, 1200)),
            )
            for index in range(len(path))
        ]
        return build_circuit_setup(self.provider, path, hops)

    def circuit_frame(self):
        keys = [
            self.provider.new_symmetric_key()
            for _ in range(self.rng.randrange(2, 5))
        ]
        body = self.provider.wrap_layers(
            keys, self._exchange_body("ppss.request"), 256
        )
        return CircuitFrame(
            circuit_id=self.rng.getrandbits(48),
            body=body,
            trace_id=self.provider.next_trace_id(),
        )

    def onion(self):
        path = [
            HopSpec(
                node_id=self.node_id(),
                public_key=self.public_key(),
                public_endpoint=self.endpoint() if self.rng.random() < 0.5 else None,
            )
            for _ in range(self.rng.randrange(2, 4))
        ]
        content = self._exchange_body("ppss.request")
        return build_onion(self.provider, path, content, 256)

    def _gossip_body(self) -> dict[str, Any]:
        return {
            "sender": self.descriptor(),
            "buffer": self.view_buffer(),
            "key": self.public_key() if self.rng.random() < 0.5 else None,
        }

    def _exchange_body(self, msg_type: str) -> dict[str, Any]:
        return {
            "type": msg_type,
            "group": self.group,
            "xid": self.rng.getrandbits(32),
            "sender": self.contact(),
            "passport": self.passport(),
            "buffer": self.private_buffer(),
            "hb": self.heartbeat(),
            "election": self.election(),
            "new_key": self.new_key(),
        }

    def _pcp_body(self, msg_type: str) -> dict[str, Any]:
        return {
            "type": msg_type,
            "group": self.group,
            "sender": self.contact(),
            "passport": self.passport(),
            "hb": self.heartbeat(),
            "election": self.election(),
            "new_key": self.new_key(),
        }


def _inner_kind_payload(ctx: SampleContext) -> tuple[str, Any, int]:
    """A random session kind + payload to ride inside nat.data / nat.relay."""
    inner_kinds = ("pss.request", "nat.sping", "wcl.cb_probe", "nat.connect_fail")
    kind = ctx.rng.choice(inner_kinds)
    payload = sample_payload(kind, ctx)
    return kind, payload, ctx.rng.randrange(16, 2048)


_BUILDERS: dict[str, Callable[[SampleContext], Any]] = {
    "nat.hello": lambda ctx: {"from": ctx.node_id()},
    "nat.ping": lambda ctx: {"from": ctx.node_id()},
    "nat.pong": lambda ctx: {"from": ctx.node_id(), "observed": ctx.endpoint()},
    "nat.sping": lambda ctx: {"from": ctx.node_id()},
    "nat.spong": lambda ctx: {"from": ctx.node_id()},
    "nat.connect": lambda ctx: {
        "target": ctx.node_id(),
        "requester": ctx.node_id(),
        "requester_nat": ctx.rng.choice(list(NatType)),
        "requester_external": ctx.endpoint() if ctx.rng.random() < 0.5 else None,
        "remaining": [ctx.node_id() for _ in range(ctx.rng.randrange(0, 3))],
        "path_taken": [ctx.node_id() for _ in range(ctx.rng.randrange(1, 4))],
    },
    "nat.connect_fail": lambda ctx: {
        "path": [ctx.node_id() for _ in range(ctx.rng.randrange(0, 4))],
        "target": ctx.node_id(),
        "reason": "rv lost target",
    },
    "nat.punch_offer": lambda ctx: {
        "requester": ctx.node_id(),
        "requester_nat": ctx.rng.choice(list(NatType)),
        "requester_external": ctx.endpoint() if ctx.rng.random() < 0.5 else None,
        "reply_path": [ctx.node_id() for _ in range(ctx.rng.randrange(1, 4))],
        "rv": ctx.node_id(),
    },
    "nat.punch_accept": lambda ctx: {
        "path": [ctx.node_id() for _ in range(ctx.rng.randrange(0, 3))],
        "target": ctx.node_id(),
        "requester": ctx.node_id(),
        "punch": ctx.rng.random() < 0.5,
        "target_external": ctx.endpoint() if ctx.rng.random() < 0.5 else None,
        "rv": ctx.node_id(),
    },
    "pss.request": lambda ctx: ctx._gossip_body(),
    "pss.response": lambda ctx: ctx._gossip_body(),
    "wcl.onion": lambda ctx: ctx.onion(),
    "wcl.circuit_setup": lambda ctx: ctx.circuit_setup(),
    "wcl.circuit_data": lambda ctx: ctx.circuit_frame(),
    "wcl.circuit_ack": lambda ctx: {"circuit": ctx.rng.getrandbits(48)},
    "wcl.circuit_teardown": lambda ctx: {"circuit": ctx.rng.getrandbits(48)},
    "wcl.cb_probe": lambda ctx: {"sender": ctx.descriptor()},
    "wcl.cb_probe_ack": lambda ctx: {"sender": ctx.descriptor(), "key": ctx.public_key()},
    "ppss.request": lambda ctx: ctx._exchange_body("ppss.request"),
    "ppss.response": lambda ctx: ctx._exchange_body("ppss.response"),
    "ppss.app": lambda ctx: {
        "type": "ppss.app",
        "group": ctx.group,
        "sender_id": ctx.node_id(),
        "passport": ctx.passport(),
        "payload": {"app": "chat", "text": "hello", "seq": ctx.rng.randrange(0, 99)},
        "reply_to": ctx.contact() if ctx.rng.random() < 0.5 else None,
    },
    "ppss.pcp_refresh": lambda ctx: ctx._pcp_body("ppss.pcp_refresh"),
    "ppss.pcp_ack": lambda ctx: ctx._pcp_body("ppss.pcp_ack"),
    "group.join": lambda ctx: {
        "type": "group.join",
        "group": ctx.group,
        "accreditation": issue_accreditation(
            ctx.provider, ctx.keyring,
            ctx.node_id() if ctx.rng.random() < 0.5 else None,
            expires_at=3600.0,
        ),
        "joiner": ctx.contact(),
    },
    "group.welcome": lambda ctx: {
        "type": "group.welcome",
        "group": ctx.group,
        "passport": ctx.passport(),
        "key_history": [ctx.keyring.current],
        "seed": ctx.private_buffer(),
    },
}


def _nat_data(ctx: SampleContext) -> dict[str, Any]:
    kind, payload, size = _inner_kind_payload(ctx)
    return {"from": ctx.node_id(), "kind": kind, "payload": payload, "inner_size": size}


def _nat_relay(ctx: SampleContext) -> dict[str, Any]:
    kind, payload, size = _inner_kind_payload(ctx)
    return {
        "target": ctx.node_id(),
        "chain": [ctx.node_id() for _ in range(ctx.rng.randrange(0, 3))],
        "origin": ctx.node_id(),
        "kind": kind,
        "payload": payload,
        "inner_size": size,
    }


_BUILDERS["nat.data"] = _nat_data
_BUILDERS["nat.relay"] = _nat_relay

_missing = set(registered_kinds()) - set(_BUILDERS)
assert not _missing, f"sample builders missing for kinds: {sorted(_missing)}"


def sample_kinds() -> tuple[str, ...]:
    """Kinds covered by the generators (== every registered kind)."""
    return registered_kinds()


def sample_payload(kind: str, ctx: SampleContext) -> Any:
    """A random, schema-valid payload for ``kind`` drawn from ``ctx.rng``."""
    builder = _BUILDERS.get(kind)
    if builder is None:
        raise KeyError(f"no sample builder for message kind {kind!r}")
    return builder(ctx)
