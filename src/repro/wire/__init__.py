"""Deterministic binary wire format for WHISPER protocol messages.

Everything the stack puts on the network — gossip views with piggybacked
keys, connection-backlog probes, NAT traversal and rendezvous control,
onion layers, PPSS exchanges and app messages — has a registered schema
here and encodes to a tag-length-value byte string:

- :mod:`repro.wire.codec` — the recursive TLV value codec plus the struct
  and enum tables for every domain dataclass that crosses the wire;
- :mod:`repro.wire.registry` — versioned, CRC-protected message frames,
  one :class:`MessageSpec` per protocol message kind (shape check, wire
  id, traffic category);
- :mod:`repro.wire.samples` — seeded random payload generators per kind,
  shared by the property tests and the codec benchmark;
- :mod:`repro.wire.audit` — measured-vs-estimated size bookkeeping used
  when the sim network runs with the codec enabled.

The same frames travel over the in-sim fabric (loopback pass-through) and
real UDP datagrams (:mod:`repro.runtime`), so byte sizes measured in the
simulator are the sizes a deployment pays.
"""

from .codec import (
    LruCache,
    WireDecodeError,
    WireEncodeError,
    WireError,
    decode_blob,
    decode_value,
    encode_blob,
    encode_value,
    reference_encode_value,
    value_size,
)
from .registry import (
    WIRE_VERSION,
    DecodedMessage,
    MessageSpec,
    category_for,
    decode_message,
    encode_message,
    encoded_size,
    registered_kinds,
    spec_for,
)
from .audit import WireAudit

__all__ = [
    "WIRE_VERSION",
    "DecodedMessage",
    "LruCache",
    "MessageSpec",
    "WireAudit",
    "WireDecodeError",
    "WireEncodeError",
    "WireError",
    "category_for",
    "decode_blob",
    "decode_message",
    "decode_value",
    "encode_blob",
    "encode_message",
    "encode_value",
    "encoded_size",
    "reference_encode_value",
    "registered_kinds",
    "spec_for",
    "value_size",
]
