"""Measured-vs-estimated wire size bookkeeping.

The paper's bandwidth figures rest on the ``WireSizes`` constants in
:mod:`repro.net.message` — *estimates* of what each message would cost on
the wire.  Once the codec exists those estimates become testable: every
frame the sim network encodes is recorded here next to the size the
protocol layer claimed, and :meth:`WireAudit.table` reports the ratio per
message kind.  EXPERIMENTS.md's "Wire format" section is generated from
exactly this data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["KindSizes", "WireAudit"]


@dataclass
class KindSizes:
    """Accumulated sizes for one message kind."""

    count: int = 0
    estimated_bytes: int = 0
    measured_bytes: int = 0
    min_measured: int = 0
    max_measured: int = 0

    def record(self, estimated: int, measured: int) -> None:
        if self.count == 0:
            self.min_measured = self.max_measured = measured
        else:
            self.min_measured = min(self.min_measured, measured)
            self.max_measured = max(self.max_measured, measured)
        self.count += 1
        self.estimated_bytes += estimated
        self.measured_bytes += measured

    @property
    def ratio(self) -> float:
        """measured / estimated; >1 means the paper's constants undershoot."""
        if self.estimated_bytes <= 0:
            return float("inf") if self.measured_bytes else 1.0
        return self.measured_bytes / self.estimated_bytes


@dataclass
class WireAudit:
    """Per-kind measured vs estimated frame sizes."""

    kinds: dict[str, KindSizes] = field(default_factory=dict)

    def record(self, kind: str, estimated: int, measured: int) -> None:
        entry = self.kinds.get(kind)
        if entry is None:
            entry = self.kinds[kind] = KindSizes()
        entry.record(estimated, measured)

    @property
    def total_measured(self) -> int:
        return sum(k.measured_bytes for k in self.kinds.values())

    @property
    def total_estimated(self) -> int:
        return sum(k.estimated_bytes for k in self.kinds.values())

    def table(self) -> list[dict[str, object]]:
        """Rows sorted by kind: count, mean sizes, measured/estimated ratio."""
        rows: list[dict[str, object]] = []
        for kind in sorted(self.kinds):
            entry = self.kinds[kind]
            rows.append(
                {
                    "kind": kind,
                    "count": entry.count,
                    "mean_estimated": entry.estimated_bytes / entry.count,
                    "mean_measured": entry.measured_bytes / entry.count,
                    "min_measured": entry.min_measured,
                    "max_measured": entry.max_measured,
                    "ratio": entry.ratio,
                }
            )
        return rows

    def format_table(self) -> str:
        """Markdown table of :meth:`table`, for reports and EXPERIMENTS.md."""
        lines = [
            "| kind | count | est. bytes (mean) | measured bytes (mean) | ratio |",
            "|---|---|---|---|---|",
        ]
        for row in self.table():
            lines.append(
                "| {kind} | {count} | {mean_estimated:.0f} | {mean_measured:.0f} "
                "| {ratio:.2f} |".format(**row)
            )
        return "\n".join(lines)
