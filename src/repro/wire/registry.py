"""Versioned message frames and the per-kind schema registry.

A wire frame is::

    magic "WF" | version (1 byte) | kind id (uvarint) |
    body length (uvarint) | body (TLV value) | crc32 (4 bytes, big-endian)

The CRC covers everything before it, so truncation and bit flips are
rejected before any payload decoding happens.  ``version`` is the format
generation: a v1 decoder refuses frames from any other generation with a
clean :class:`~repro.wire.codec.WireDecodeError` instead of guessing.

Every message kind the stack produces is registered as a
:class:`MessageSpec`: a stable numeric wire id (append-only, never
renumbered), the traffic category it is accounted under, and a shape
check — either a payload dataclass type or the exact set of dict keys the
protocol layer emits.  The shape check runs on *both* encode and decode,
so a frame that decodes structurally but violates the protocol schema is
rejected at the boundary, not deep inside a handler.

The registry covers three strata:

- fabric kinds — the only frames that actually hit a socket
  (``nat.data``/``nat.hello``/``nat.ping``/``nat.pong``); everything else
  rides inside ``nat.data``;
- session kinds — traversal control and app payloads multiplexed over
  sessions (``nat.connect``, ``pss.request``, ``wcl.onion``, ...);
- content kinds — PPSS/group bodies that travel inside onion payloads
  (``ppss.request``, ``group.join``, ...).

Session and content kinds are encoded recursively as values inside their
carrier, but each also frames standalone so the property tests can
round-trip every kind in isolation.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any

from .codec import (
    LruCache,
    WireDecodeError,
    WireEncodeError,
    _encode_into,
    _uvarint_len,
    decode_value,
    value_size,
)
from ..core.onion import CircuitFrame, CircuitSetupPacket, OnionPacket

__all__ = [
    "WIRE_VERSION",
    "MessageSpec",
    "DecodedMessage",
    "spec_for",
    "category_for",
    "registered_kinds",
    "encode_message",
    "decode_message",
    "encoded_size",
]

WIRE_MAGIC = b"WF"
WIRE_VERSION = 1


@dataclass(frozen=True, slots=True)
class MessageSpec:
    """Schema entry for one protocol message kind."""

    kind: str
    wire_id: int
    category: str
    required: frozenset[str] = frozenset()
    optional: frozenset[str] = frozenset()
    payload_type: type | None = None  # non-dict payloads (e.g. OnionPacket)

    def check(self, payload: Any, *, exc: type[Exception]) -> None:
        """Raise ``exc`` unless ``payload`` matches this kind's shape."""
        if self.payload_type is not None:
            if type(payload) is not self.payload_type:
                raise exc(
                    f"{self.kind}: payload must be {self.payload_type.__name__}, "
                    f"got {type(payload).__name__}"
                )
            return
        if not isinstance(payload, dict):
            raise exc(f"{self.kind}: payload must be a dict, got {type(payload).__name__}")
        if payload.keys() == self.required:  # exact match: the common case
            return
        keys = set(payload)
        missing = self.required - keys
        if missing:
            raise exc(f"{self.kind}: missing fields {sorted(missing)}")
        unknown = keys - self.required - self.optional
        if unknown:
            raise exc(f"{self.kind}: unknown fields {sorted(unknown)}")


@dataclass(frozen=True, slots=True)
class DecodedMessage:
    """A successfully decoded frame."""

    kind: str
    payload: Any
    version: int = WIRE_VERSION
    encoded_size: int = 0


def _spec(
    kind: str,
    wire_id: int,
    category: str,
    required: tuple[str, ...] = (),
    optional: tuple[str, ...] = (),
    payload_type: type | None = None,
) -> MessageSpec:
    return MessageSpec(
        kind=kind,
        wire_id=wire_id,
        category=category,
        required=frozenset(required),
        optional=frozenset(optional),
        payload_type=payload_type,
    )


_GOSSIP = ("sender", "buffer", "key")
_PPSS_EXCHANGE = (
    "type", "group", "xid", "sender", "passport", "buffer", "hb", "election", "new_key",
)
_PPSS_PCP = ("type", "group", "sender", "passport", "hb", "election", "new_key")

# Wire ids are part of the format: append only, never renumber.
_SPECS: tuple[MessageSpec, ...] = (
    # --- fabric kinds: the only frames that hit a socket -------------------
    _spec("nat.hello", 1, "nat", required=("from",)),
    _spec("nat.ping", 2, "nat", required=("from",)),
    _spec("nat.pong", 3, "nat", required=("from", "observed")),
    _spec("nat.data", 4, "nat", required=("from", "kind", "payload", "inner_size")),
    # --- session kinds: traversal control over nat.data --------------------
    _spec("nat.sping", 5, "nat", required=("from",)),
    _spec("nat.spong", 6, "nat", required=("from",)),
    _spec(
        "nat.connect", 7, "nat",
        required=(
            "target", "requester", "requester_nat", "requester_external",
            "remaining", "path_taken",
        ),
    ),
    _spec("nat.connect_fail", 8, "nat", required=("path", "target", "reason")),
    _spec(
        "nat.punch_offer", 9, "nat",
        required=(
            "requester", "requester_nat", "requester_external", "reply_path", "rv",
        ),
    ),
    _spec(
        "nat.punch_accept", 10, "nat",
        required=("path", "target", "requester", "punch", "target_external", "rv"),
    ),
    _spec(
        "nat.relay", 11, "nat.relay",
        required=("target", "chain", "origin", "kind", "payload", "inner_size"),
    ),
    # --- session kinds: application payloads over nat.data -----------------
    _spec("pss.request", 12, "pss", required=_GOSSIP),
    _spec("pss.response", 13, "pss", required=_GOSSIP),
    _spec("wcl.onion", 14, "wcl", payload_type=OnionPacket),
    _spec("wcl.cb_probe", 15, "wcl.cb", required=("sender",)),
    _spec("wcl.cb_probe_ack", 16, "wcl.cb", required=("sender", "key")),
    # --- content kinds: PPSS/group bodies inside onion payloads ------------
    _spec("ppss.request", 17, "wcl", required=_PPSS_EXCHANGE),
    _spec("ppss.response", 18, "wcl", required=_PPSS_EXCHANGE),
    _spec(
        "ppss.app", 19, "wcl",
        required=("type", "group", "sender_id", "passport", "payload", "reply_to"),
    ),
    _spec("ppss.pcp_refresh", 20, "wcl", required=_PPSS_PCP),
    _spec("ppss.pcp_ack", 21, "wcl", required=_PPSS_PCP),
    _spec("group.join", 22, "wcl", required=("type", "group", "accreditation", "joiner")),
    _spec(
        "group.welcome", 23, "wcl",
        required=("type", "group", "passport", "key_history", "seed"),
    ),
    # --- session kinds: circuit-mode WCL (amortized RSA) -------------------
    _spec("wcl.circuit_setup", 24, "wcl", payload_type=CircuitSetupPacket),
    _spec("wcl.circuit_data", 25, "wcl", payload_type=CircuitFrame),
    _spec("wcl.circuit_ack", 26, "wcl", required=("circuit",)),
    _spec("wcl.circuit_teardown", 27, "wcl", required=("circuit",)),
)

_SPEC_BY_KIND: dict[str, MessageSpec] = {s.kind: s for s in _SPECS}
_SPEC_BY_ID: dict[int, MessageSpec] = {s.wire_id: s for s in _SPECS}
assert len(_SPEC_BY_KIND) == len(_SPECS), "duplicate message kind"
assert len(_SPEC_BY_ID) == len(_SPECS), "duplicate wire id"


def registered_kinds() -> tuple[str, ...]:
    """All message kinds the codec knows, in wire-id order."""
    return tuple(s.kind for s in _SPECS)


def spec_for(kind: str) -> MessageSpec:
    spec = _SPEC_BY_KIND.get(kind)
    if spec is None:
        raise WireEncodeError(f"unregistered message kind: {kind!r}")
    return spec


def category_for(kind: str) -> str:
    """Traffic category a message kind is accounted under."""
    return spec_for(kind).category


def _write_uvarint(buf: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buf.append(byte | 0x80)
        else:
            buf.append(byte)
            return


def _read_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise WireDecodeError("truncated frame header")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


# Per-kind frame head (magic | version | wire-id uvarint), precomputed so
# the encode hot path starts from one constant bytes object.
_HEAD_BY_KIND: dict[str, bytes] = {}
for _s in _SPECS:
    _head = bytearray(WIRE_MAGIC)
    _head.append(WIRE_VERSION)
    _write_uvarint(_head, _s.wire_id)
    _HEAD_BY_KIND[_s.kind] = bytes(_head)


def encode_message(kind: str, payload: Any, cache: LruCache | None = None) -> bytes:
    """Encode one protocol message to a complete wire frame.

    ``cache`` is an optional encode cache (see :mod:`repro.wire.codec`)
    serving repeated hot immutable structs from memory.
    """
    spec = spec_for(kind)
    spec.check(payload, exc=WireEncodeError)
    body = bytearray()
    _encode_into(body, payload, cache)
    frame = bytearray(_HEAD_BY_KIND[kind])
    _write_uvarint(frame, len(body))
    frame += body
    # zlib.crc32 accepts any buffer: no bytes() copy of the head needed.
    crc = zlib.crc32(frame) & 0xFFFFFFFF
    frame += crc.to_bytes(4, "big")
    return bytes(frame)


def decode_message(data: bytes) -> DecodedMessage:
    """Decode and validate a wire frame produced by :func:`encode_message`."""
    if len(data) < 8:
        raise WireDecodeError(f"frame too short ({len(data)} bytes)")
    if data[:2] != WIRE_MAGIC:
        raise WireDecodeError("bad magic")
    version = data[2]
    if version != WIRE_VERSION:
        raise WireDecodeError(f"unsupported wire version {version}")
    wire_id, pos = _read_uvarint(data, 3)
    spec = _SPEC_BY_ID.get(wire_id)
    if spec is None:
        raise WireDecodeError(f"unknown wire id {wire_id}")
    length, pos = _read_uvarint(data, pos)
    if len(data) != pos + length + 4:
        raise WireDecodeError(
            f"frame length mismatch: header says {length} body bytes, "
            f"frame has {len(data) - pos - 4}"
        )
    # Zero-copy from here: CRC and body decoding run over memoryview
    # slices of the original frame instead of copied byte strings.
    view = memoryview(data)
    crc = zlib.crc32(view[:-4]) & 0xFFFFFFFF
    if crc != int.from_bytes(data[-4:], "big"):
        raise WireDecodeError("frame checksum mismatch")
    payload = decode_value(view[pos : pos + length])
    spec.check(payload, exc=WireDecodeError)
    return DecodedMessage(
        kind=spec.kind, payload=payload, version=version, encoded_size=len(data)
    )


def encoded_size(kind: str, payload: Any, cache: LruCache | None = None) -> int:
    """Exact on-the-wire frame size for a message, without building it.

    Matches ``len(encode_message(kind, payload))`` byte for byte (pinned by
    test) via the codec's size-accumulator path: no body bytes, no frame
    assembly, no CRC.
    """
    spec = spec_for(kind)
    spec.check(payload, exc=WireEncodeError)
    body_len = value_size(payload, cache)
    return len(_HEAD_BY_KIND[kind]) + _uvarint_len(body_len) + body_len + 4
