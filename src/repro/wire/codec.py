"""Recursive tag-length-value codec for protocol payload values.

Every value a WHISPER message may carry encodes to a deterministic byte
string: a one-byte type tag followed by a type-specific body.  Scalars use
varints (unbounded, zigzag for signed — RSA moduli are plain Python ints)
or fixed-width floats; containers are count-prefixed and preserve
insertion order, so ``encode(decode(encode(x))) == encode(x)`` holds
byte-for-byte.  Domain dataclasses (descriptors, view entries, keys,
sealed envelopes, onions, contacts, passports, election records) are
*structs*: a registered numeric id plus a field count plus each field
value in declaration order.  Enums carry a registered id and the member
index.

The struct/enum tables double as the schema registry: encoding an
unregistered type raises :class:`WireEncodeError` immediately instead of
silently pickling, which is what keeps the format stable and
language-independent in principle.  Field counts are written per struct so
a decoder can reject frames produced by a schema it does not know.

Framing (magic, version, message kind, CRC) lives one level up in
:mod:`repro.wire.registry`; this module also provides :func:`encode_blob`
/ :func:`decode_blob`, a minimal CRC-checked container for out-of-band
objects such as the invitation handed between the two ``live_chat``
processes.
"""

from __future__ import annotations

import struct as _struct
import zlib
from dataclasses import fields as _dc_fields
from enum import Enum
from typing import Any

from ..core.contact import Gateway, PrivateContact
from ..core.election import Heartbeat, Proposal
from ..core.group import Accreditation, Invitation, Passport
from ..core.onion import HopSpec, NextHop, OnionLayer, OnionPacket
from ..core.ppss import PrivateViewEntry
from ..crypto.provider import EncryptedPayload, PublicKey, Sealed
from ..crypto.rsa import RsaPublicKey
from ..nat.traversal import NodeDescriptor
from ..nat.types import NatType
from ..net.address import Endpoint, NodeKind, Protocol
from ..pss.view import ViewEntry

__all__ = [
    "WireError",
    "WireEncodeError",
    "WireDecodeError",
    "encode_value",
    "decode_value",
    "encode_blob",
    "decode_blob",
]


class WireError(Exception):
    """Base class for codec failures."""


class WireEncodeError(WireError):
    """A value cannot be represented in the wire format."""


class WireDecodeError(WireError):
    """Bytes do not form a valid wire value/frame."""


# ---------------------------------------------------------------------------
# type tags

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_BYTES = 0x05
_T_STR = 0x06
_T_LIST = 0x07
_T_TUPLE = 0x08
_T_DICT = 0x09
_T_STRUCT = 0x0A
_T_ENUM = 0x0B

# Registered domain dataclasses.  Wire ids are part of the format: append
# only, never renumber.  Fields are taken from dataclass declaration order.
_STRUCT_TABLE: list[tuple[int, type]] = [
    (1, Endpoint),
    (2, NodeDescriptor),
    (3, ViewEntry),
    (4, PublicKey),
    (5, RsaPublicKey),
    (6, Sealed),
    (7, EncryptedPayload),
    (8, NextHop),
    (9, OnionLayer),
    (10, OnionPacket),
    (11, HopSpec),
    (12, Gateway),
    (13, PrivateContact),
    (14, PrivateViewEntry),
    (15, Passport),
    (16, Accreditation),
    (17, Invitation),
    (18, Heartbeat),
    (19, Proposal),
]

_ENUM_TABLE: list[tuple[int, type]] = [
    (1, NatType),
    (2, NodeKind),
    (3, Protocol),
]

_STRUCT_BY_TYPE: dict[type, tuple[int, tuple[str, ...]]] = {}
_STRUCT_BY_ID: dict[int, tuple[type, tuple[str, ...]]] = {}
for _sid, _cls in _STRUCT_TABLE:
    _names = tuple(f.name for f in _dc_fields(_cls))
    _STRUCT_BY_TYPE[_cls] = (_sid, _names)
    _STRUCT_BY_ID[_sid] = (_cls, _names)

_ENUM_BY_TYPE: dict[type, tuple[int, tuple[Any, ...]]] = {}
_ENUM_BY_ID: dict[int, tuple[Any, ...]] = {}
for _eid, _ecls in _ENUM_TABLE:
    _members = tuple(_ecls)
    _ENUM_BY_TYPE[_ecls] = (_eid, _members)
    _ENUM_BY_ID[_eid] = _members


# ---------------------------------------------------------------------------
# varints

def _write_uvarint(buf: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buf.append(byte | 0x80)
        else:
            buf.append(byte)
            return


def _read_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise WireDecodeError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _zigzag(value: int) -> int:
    return value * 2 if value >= 0 else -value * 2 - 1


def _unzigzag(value: int) -> int:
    return value // 2 if value % 2 == 0 else -(value + 1) // 2


# ---------------------------------------------------------------------------
# values

def _encode_into(buf: bytearray, obj: Any) -> None:
    if obj is None:
        buf.append(_T_NONE)
        return
    kind = type(obj)
    if kind is bool:
        buf.append(_T_TRUE if obj else _T_FALSE)
    elif kind is int:
        buf.append(_T_INT)
        _write_uvarint(buf, _zigzag(obj))
    elif kind is float:
        buf.append(_T_FLOAT)
        buf += _struct.pack(">d", obj)
    elif kind is bytes:
        buf.append(_T_BYTES)
        _write_uvarint(buf, len(obj))
        buf += obj
    elif kind is str:
        raw = obj.encode("utf-8")
        buf.append(_T_STR)
        _write_uvarint(buf, len(raw))
        buf += raw
    elif kind is list:
        buf.append(_T_LIST)
        _write_uvarint(buf, len(obj))
        for item in obj:
            _encode_into(buf, item)
    elif kind is tuple:
        buf.append(_T_TUPLE)
        _write_uvarint(buf, len(obj))
        for item in obj:
            _encode_into(buf, item)
    elif kind is dict:
        buf.append(_T_DICT)
        _write_uvarint(buf, len(obj))
        for key, value in obj.items():
            _encode_into(buf, key)
            _encode_into(buf, value)
    elif kind in _STRUCT_BY_TYPE:
        sid, names = _STRUCT_BY_TYPE[kind]
        buf.append(_T_STRUCT)
        _write_uvarint(buf, sid)
        _write_uvarint(buf, len(names))
        for name in names:
            _encode_into(buf, getattr(obj, name))
    elif kind in _ENUM_BY_TYPE:
        eid, members = _ENUM_BY_TYPE[kind]
        buf.append(_T_ENUM)
        _write_uvarint(buf, eid)
        _write_uvarint(buf, members.index(obj))
    elif isinstance(obj, Enum):
        raise WireEncodeError(f"unregistered enum type on the wire: {kind.__name__}")
    else:
        raise WireEncodeError(f"unregistered type on the wire: {kind.__name__}")


def encode_value(obj: Any) -> bytes:
    """Encode one payload value to TLV bytes (no frame header)."""
    buf = bytearray()
    _encode_into(buf, obj)
    return bytes(buf)


def _decode_at(data: bytes, pos: int) -> tuple[Any, int]:
    if pos >= len(data):
        raise WireDecodeError("truncated value")
    tag = data[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        raw, pos = _read_uvarint(data, pos)
        return _unzigzag(raw), pos
    if tag == _T_FLOAT:
        if pos + 8 > len(data):
            raise WireDecodeError("truncated float")
        return _struct.unpack(">d", data[pos : pos + 8])[0], pos + 8
    if tag == _T_BYTES:
        length, pos = _read_uvarint(data, pos)
        if pos + length > len(data):
            raise WireDecodeError("truncated bytes")
        return data[pos : pos + length], pos + length
    if tag == _T_STR:
        length, pos = _read_uvarint(data, pos)
        if pos + length > len(data):
            raise WireDecodeError("truncated string")
        try:
            return data[pos : pos + length].decode("utf-8"), pos + length
        except UnicodeDecodeError as exc:
            raise WireDecodeError("malformed utf-8 string") from exc
    if tag in (_T_LIST, _T_TUPLE):
        count, pos = _read_uvarint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_at(data, pos)
            items.append(item)
        return (items if tag == _T_LIST else tuple(items)), pos
    if tag == _T_DICT:
        count, pos = _read_uvarint(data, pos)
        out: dict[Any, Any] = {}
        for _ in range(count):
            key, pos = _decode_at(data, pos)
            value, pos = _decode_at(data, pos)
            out[key] = value
        return out, pos
    if tag == _T_STRUCT:
        sid, pos = _read_uvarint(data, pos)
        entry = _STRUCT_BY_ID.get(sid)
        if entry is None:
            raise WireDecodeError(f"unknown struct id {sid}")
        cls, names = entry
        count, pos = _read_uvarint(data, pos)
        if count != len(names):
            raise WireDecodeError(
                f"struct {cls.__name__}: schema mismatch "
                f"({count} fields on wire, {len(names)} known)"
            )
        values = {}
        for name in names:
            values[name], pos = _decode_at(data, pos)
        try:
            return cls(**values), pos
        except (TypeError, ValueError) as exc:
            raise WireDecodeError(f"struct {cls.__name__}: {exc}") from exc
    if tag == _T_ENUM:
        eid, pos = _read_uvarint(data, pos)
        members = _ENUM_BY_ID.get(eid)
        if members is None:
            raise WireDecodeError(f"unknown enum id {eid}")
        index, pos = _read_uvarint(data, pos)
        if index >= len(members):
            raise WireDecodeError(f"enum id {eid}: member index {index} out of range")
        return members[index], pos
    raise WireDecodeError(f"unknown type tag 0x{tag:02x}")


def decode_value(data: bytes) -> Any:
    """Decode TLV bytes back to a payload value; rejects trailing bytes."""
    obj, pos = _decode_at(data, 0)
    if pos != len(data):
        raise WireDecodeError(f"{len(data) - pos} trailing bytes after value")
    return obj


# ---------------------------------------------------------------------------
# out-of-band blobs (invitations etc.)

_BLOB_MAGIC = b"WB"
_BLOB_VERSION = 1


def encode_blob(obj: Any) -> bytes:
    """Encode an out-of-band object (e.g. an Invitation) with CRC framing."""
    body = encode_value(obj)
    head = _BLOB_MAGIC + bytes([_BLOB_VERSION])
    crc = zlib.crc32(head + body) & 0xFFFFFFFF
    return head + body + crc.to_bytes(4, "big")


def decode_blob(data: bytes) -> Any:
    """Decode a blob produced by :func:`encode_blob`."""
    if len(data) < 7 or data[:2] != _BLOB_MAGIC:
        raise WireDecodeError("not a wire blob")
    if data[2] != _BLOB_VERSION:
        raise WireDecodeError(f"unsupported blob version {data[2]}")
    body, trailer = data[3:-4], data[-4:]
    crc = zlib.crc32(data[:-4]) & 0xFFFFFFFF
    if crc.to_bytes(4, "big") != trailer:
        raise WireDecodeError("blob checksum mismatch")
    return decode_value(body)
