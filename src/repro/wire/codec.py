"""Recursive tag-length-value codec for protocol payload values.

Every value a WHISPER message may carry encodes to a deterministic byte
string: a one-byte type tag followed by a type-specific body.  Scalars use
varints (unbounded, zigzag for signed — RSA moduli are plain Python ints)
or fixed-width floats; containers are count-prefixed and preserve
insertion order, so ``encode(decode(encode(x))) == encode(x)`` holds
byte-for-byte.  Domain dataclasses (descriptors, view entries, keys,
sealed envelopes, onions, contacts, passports, election records) are
*structs*: a registered numeric id plus a field count plus each field
value in declaration order.  Enums carry a registered id and the member
index.

The struct/enum tables double as the schema registry: encoding an
unregistered type raises :class:`WireEncodeError` immediately instead of
silently pickling, which is what keeps the format stable and
language-independent in principle.  Field counts are written per struct so
a decoder can reject frames produced by a schema it does not know.

Hot path layout (the ``wire_mode="verify"/"measured"`` cost):

- encoding dispatches on ``type(obj)`` through :data:`_ENCODERS`, a table
  of **precompiled closures** built once at import time — per-struct
  encoders carry their tag/id/field-count prefix as a single constant
  ``bytes`` and an :func:`operator.attrgetter` over the declared fields,
  so no reflective ``dataclasses.fields``/``getattr`` work happens per
  message (the reference implementation survives as
  :func:`reference_encode_value` and the test suite pins byte-identity);
- decoding runs over a :class:`memoryview` (no body copy per frame) via
  the tag-indexed :data:`_DECODERS` table, with per-struct decoders that
  construct dataclasses positionally;
- :func:`value_size` walks the same tables but only *accumulates* sizes,
  so size-only callers (``encoded_size``, ``wire_mode="measured"``
  accounting) never build a frame at all;
- hot immutable structs (descriptors, circulating public keys, view
  entries) can be served from an optional per-network LRU **encode
  cache** (:class:`~repro.core.lru.LruCache`): pass it as ``cache=`` and
  repeated encodes of the same frozen value become one dict hit.

Framing (magic, version, message kind, CRC) lives one level up in
:mod:`repro.wire.registry`; this module also provides :func:`encode_blob`
/ :func:`decode_blob`, a minimal CRC-checked container for out-of-band
objects such as the invitation handed between the two ``live_chat``
processes.
"""

from __future__ import annotations

import struct as _struct
import zlib
from dataclasses import fields as _dc_fields
from enum import Enum
from operator import attrgetter
from typing import Any, Callable

from ..core.contact import Gateway, PrivateContact
from ..core.election import Heartbeat, Proposal
from ..core.group import Accreditation, Invitation, Passport
from ..core.lru import LruCache
from ..core.onion import (
    CircuitFrame,
    CircuitHop,
    CircuitSetupLayer,
    CircuitSetupPacket,
    HopSpec,
    NextHop,
    OnionLayer,
    OnionPacket,
)
from ..core.ppss import PrivateViewEntry
from ..crypto.provider import EncryptedPayload, LayeredPayload, PublicKey, Sealed
from ..crypto.rsa import RsaPublicKey
from ..nat.traversal import NodeDescriptor
from ..nat.types import NatType
from ..net.address import Endpoint, NodeKind, Protocol
from ..pss.view import ViewEntry

__all__ = [
    "WireError",
    "WireEncodeError",
    "WireDecodeError",
    "encode_value",
    "decode_value",
    "value_size",
    "reference_encode_value",
    "encode_blob",
    "decode_blob",
    "LruCache",
]


class WireError(Exception):
    """Base class for codec failures."""


class WireEncodeError(WireError):
    """A value cannot be represented in the wire format."""


class WireDecodeError(WireError):
    """Bytes do not form a valid wire value/frame."""


# ---------------------------------------------------------------------------
# type tags

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_BYTES = 0x05
_T_STR = 0x06
_T_LIST = 0x07
_T_TUPLE = 0x08
_T_DICT = 0x09
_T_STRUCT = 0x0A
_T_ENUM = 0x0B

# Registered domain dataclasses.  Wire ids are part of the format: append
# only, never renumber.  Fields are taken from dataclass declaration order.
_STRUCT_TABLE: list[tuple[int, type]] = [
    (1, Endpoint),
    (2, NodeDescriptor),
    (3, ViewEntry),
    (4, PublicKey),
    (5, RsaPublicKey),
    (6, Sealed),
    (7, EncryptedPayload),
    (8, NextHop),
    (9, OnionLayer),
    (10, OnionPacket),
    (11, HopSpec),
    (12, Gateway),
    (13, PrivateContact),
    (14, PrivateViewEntry),
    (15, Passport),
    (16, Accreditation),
    (17, Invitation),
    (18, Heartbeat),
    (19, Proposal),
    (20, LayeredPayload),
    (21, CircuitHop),
    (22, CircuitSetupLayer),
    (23, CircuitSetupPacket),
    (24, CircuitFrame),
]

_ENUM_TABLE: list[tuple[int, type]] = [
    (1, NatType),
    (2, NodeKind),
    (3, Protocol),
]

# Hot *immutable* structs worth serving from the encode cache.  The bar is
# high: a cache hit still hashes the dataclass (all fields), so caching only
# pays when re-encoding costs far more than hashing.  That is true for the
# public-key structs gossip re-ships every cycle (varint-encoding a large
# modulus dwarfs hashing it) and false for small churny records like
# ViewEntry, whose age field changes every cycle and which encodes in less
# time than a lookup — measured, caching those was a net loss.
_CACHED_STRUCTS = {PublicKey, RsaPublicKey}

_STRUCT_BY_TYPE: dict[type, tuple[int, tuple[str, ...]]] = {}
_STRUCT_BY_ID: dict[int, tuple[type, tuple[str, ...]]] = {}
for _sid, _cls in _STRUCT_TABLE:
    _names = tuple(f.name for f in _dc_fields(_cls))
    _STRUCT_BY_TYPE[_cls] = (_sid, _names)
    _STRUCT_BY_ID[_sid] = (_cls, _names)

_ENUM_BY_TYPE: dict[type, tuple[int, tuple[Any, ...]]] = {}
_ENUM_BY_ID: dict[int, tuple[Any, ...]] = {}
for _eid, _ecls in _ENUM_TABLE:
    _members = tuple(_ecls)
    _ENUM_BY_TYPE[_ecls] = (_eid, _members)
    _ENUM_BY_ID[_eid] = _members


# ---------------------------------------------------------------------------
# varints

def _write_uvarint(buf: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buf.append(byte | 0x80)
        else:
            buf.append(byte)
            return


def _uvarint_bytes(value: int) -> bytes:
    buf = bytearray()
    _write_uvarint(buf, value)
    return bytes(buf)


def _uvarint_len(value: int) -> int:
    return ((value.bit_length() + 6) // 7) or 1


def _read_uvarint(data, pos: int) -> tuple[int, int]:
    # No explicit bounds check: running off the end raises IndexError,
    # which the decode entry points translate to "truncated value".
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if byte < 0x80:
            return result, pos
        shift += 7


def _zigzag(value: int) -> int:
    return value * 2 if value >= 0 else -value * 2 - 1


def _unzigzag(value: int) -> int:
    return value // 2 if value % 2 == 0 else -(value + 1) // 2


# ---------------------------------------------------------------------------
# compiled encoders: type -> closure(buf, obj, cache)

_ENCODERS: dict[type, Callable[[bytearray, Any, LruCache | None], None]] = {}
_SIZERS: dict[type, Callable[[Any, LruCache | None], int]] = {}

_pack_float = _struct.Struct(">d").pack
_unpack_float = _struct.Struct(">d").unpack_from


def _encode_fallback(obj: Any) -> None:
    """Raise the schema error for a type outside the dispatch table."""
    if isinstance(obj, Enum):
        raise WireEncodeError(
            f"unregistered enum type on the wire: {type(obj).__name__}"
        )
    raise WireEncodeError(f"unregistered type on the wire: {type(obj).__name__}")


def _encode_into(buf: bytearray, obj: Any, cache: LruCache | None) -> None:
    try:
        enc = _ENCODERS[obj.__class__]
    except KeyError:
        _encode_fallback(obj)
    enc(buf, obj, cache)


def _enc_none(buf, obj, cache):
    buf.append(_T_NONE)


def _enc_bool(buf, obj, cache):
    buf.append(_T_TRUE if obj else _T_FALSE)


# Tag+payload for every single-byte zigzag int (|value| < 64), i.e. almost
# every id, age, count and hop index on the wire: one `+=` instead of a
# varint loop.
_INT1 = tuple(bytes((_T_INT, v)) for v in range(0x80))


def _enc_int(buf, obj, cache):
    v = obj + obj if obj >= 0 else -obj - obj - 1
    if v < 0x80:
        buf += _INT1[v]
        return
    append = buf.append
    append(_T_INT)
    while v > 0x7F:
        append((v & 0x7F) | 0x80)
        v >>= 7
    append(v)


def _enc_float(buf, obj, cache):
    buf.append(_T_FLOAT)
    buf += _pack_float(obj)


def _enc_bytes(buf, obj, cache):
    append = buf.append
    append(_T_BYTES)
    n = len(obj)
    while n > 0x7F:
        append((n & 0x7F) | 0x80)
        n >>= 7
    append(n)
    buf += obj


# Wire strings draw from a small, heavily repeated vocabulary (payload
# dict keys, message kinds, host addresses), so short strings memoize
# their full TLV encoding: one dict probe (str hashes are cached on the
# object) replaces encode + varint + copy.  Pure value->bytes map, bounded,
# shared across Worlds — no effect on determinism.
_STR_ENC_MEMO: dict[str, bytes] = {}
_STR_MEMO_LIMIT = 8192


def _enc_str(buf, obj, cache):
    try:
        buf += _STR_ENC_MEMO[obj]
        return
    except KeyError:
        pass
    raw = obj.encode("utf-8")
    n = len(raw)
    if n < 0x80:
        enc = bytes((_T_STR, n)) + raw
        if len(_STR_ENC_MEMO) < _STR_MEMO_LIMIT:
            _STR_ENC_MEMO[obj] = enc
        buf += enc
        return
    append = buf.append
    append(_T_STR)
    while n > 0x7F:
        append((n & 0x7F) | 0x80)
        n >>= 7
    append(n)
    buf += raw


def _make_seq_encoder(tag: int):
    def enc(buf, obj, cache, _tag=tag, _E=_ENCODERS, _fb=_encode_fallback):
        append = buf.append
        append(_tag)
        n = len(obj)
        while n > 0x7F:
            append((n & 0x7F) | 0x80)
            n >>= 7
        append(n)
        for item in obj:
            try:
                e = _E[item.__class__]
            except KeyError:
                _fb(item)
            e(buf, item, cache)

    return enc


def _enc_dict(buf, obj, cache, _E=_ENCODERS, _fb=_encode_fallback):
    append = buf.append
    append(_T_DICT)
    n = len(obj)
    while n > 0x7F:
        append((n & 0x7F) | 0x80)
        n >>= 7
    append(n)
    for key, value in obj.items():
        try:
            e = _E[key.__class__]
        except KeyError:
            _fb(key)
        e(buf, key, cache)
        try:
            e = _E[value.__class__]
        except KeyError:
            _fb(value)
        e(buf, value, cache)


def _make_struct_encoder(sid: int, cls: type, names: tuple[str, ...]):
    """Compile one struct's encoder: prefix + each field unrolled inline.

    The generated function loads each field with a plain attribute access
    and dispatches through the encoder table directly — no attrgetter
    tuple, no per-field loop machinery.
    """
    prefix = (
        bytes([_T_STRUCT]) + _uvarint_bytes(sid) + _uvarint_bytes(len(names))
    )
    lines = [
        "def encode_fields(buf, obj, cache, _prefix=_prefix, _E=_E, _fb=_fb):",
        "    buf += _prefix",
    ]
    for name in names:
        lines += [
            f"    v = obj.{name}",
            "    try:",
            "        e = _E[v.__class__]",
            "    except KeyError:",
            "        _fb(v)",
            "    e(buf, v, cache)",
        ]
    namespace = {"_prefix": prefix, "_E": _ENCODERS, "_fb": _encode_fallback}
    exec("\n".join(lines), namespace)  # noqa: S102 - fixed template, schema-derived
    encode_fields = namespace["encode_fields"]
    encode_fields.__qualname__ = f"_encode_{cls.__name__}"

    if cls not in _CACHED_STRUCTS:
        return encode_fields

    def encode_cached(buf, obj, cache, _encode=encode_fields):
        if cache is not None:
            try:
                data = cache.get(obj)
            except TypeError:  # unhashable field snuck in: encode directly
                data = None
            else:
                if data is not None:
                    buf += data
                    return
                start = len(buf)
                _encode(buf, obj, cache)
                cache.put(obj, bytes(buf[start:]))
                return
        _encode(buf, obj, cache)

    return encode_cached


def _make_enum_encoder(eid: int, members: tuple[Any, ...]):
    table = {
        member: bytes([_T_ENUM]) + _uvarint_bytes(eid) + _uvarint_bytes(index)
        for index, member in enumerate(members)
    }

    def enc(buf, obj, cache, _table=table):
        buf += _table[obj]

    return enc


# -- size accumulators (same dispatch, no bytes built) ----------------------

def _size_of(obj: Any, cache: LruCache | None) -> int:
    sizer = _SIZERS.get(obj.__class__)
    if sizer is None:
        _encode_fallback(obj)
    return sizer(obj, cache)


def _size_int(obj, cache):
    v = obj + obj if obj >= 0 else -obj - obj - 1
    return 1 + (((v.bit_length() + 6) // 7) or 1)


def _size_bytes(obj, cache):
    n = len(obj)
    return 1 + (((n.bit_length() + 6) // 7) or 1) + n


def _size_str(obj, cache):
    n = len(obj.encode("utf-8"))
    return 1 + (((n.bit_length() + 6) // 7) or 1) + n


def _size_seq(obj, cache):
    n = len(obj)
    total = 1 + (((n.bit_length() + 6) // 7) or 1)
    sizers = _SIZERS
    for item in obj:
        s = sizers.get(item.__class__)
        if s is None:
            _encode_fallback(item)
        total += s(item, cache)
    return total


def _size_dict(obj, cache):
    n = len(obj)
    total = 1 + (((n.bit_length() + 6) // 7) or 1)
    sizers = _SIZERS
    for key, value in obj.items():
        s = sizers.get(key.__class__)
        if s is None:
            _encode_fallback(key)
        total += s(key, cache)
        s = sizers.get(value.__class__)
        if s is None:
            _encode_fallback(value)
        total += s(value, cache)
    return total


def _make_struct_sizer(cls: type, names: tuple[str, ...], encoder):
    sid, _ = _STRUCT_BY_TYPE[cls]
    prefix_len = 1 + _uvarint_len(sid) + _uvarint_len(len(names))
    if len(names) > 1:
        getter = attrgetter(*names)
    else:
        single = names[0]
        def getter(obj, _n=single):
            return (getattr(obj, _n),)

    if cls in _CACHED_STRUCTS:
        # Route through the caching encoder: a hit is one dict lookup +
        # len(); a miss encodes once and seeds the cache for later sends.
        def size_cached(obj, cache, _enc=encoder):
            if cache is not None:
                buf = bytearray()
                _enc(buf, obj, cache)
                return len(buf)
            return _size_fields(obj, None)
    else:
        size_cached = None

    def _size_fields(obj, cache, _prefix_len=prefix_len, _get=getter):
        total = _prefix_len
        sizers = _SIZERS
        for item in _get(obj):
            s = sizers.get(item.__class__)
            if s is None:
                _encode_fallback(item)
            total += s(item, cache)
        return total

    return size_cached if size_cached is not None else _size_fields


def _make_enum_sizer(eid: int, members: tuple[Any, ...]):
    table = {
        member: 1 + _uvarint_len(eid) + _uvarint_len(index)
        for index, member in enumerate(members)
    }

    def size(obj, cache, _table=table):
        return _table[obj]

    return size


def _build_tables() -> None:
    _ENCODERS[type(None)] = _enc_none
    _ENCODERS[bool] = _enc_bool
    _ENCODERS[int] = _enc_int
    _ENCODERS[float] = _enc_float
    _ENCODERS[bytes] = _enc_bytes
    _ENCODERS[str] = _enc_str
    _ENCODERS[list] = _make_seq_encoder(_T_LIST)
    _ENCODERS[tuple] = _make_seq_encoder(_T_TUPLE)
    _ENCODERS[dict] = _enc_dict
    _SIZERS[type(None)] = lambda obj, cache: 1
    _SIZERS[bool] = lambda obj, cache: 1
    _SIZERS[int] = _size_int
    _SIZERS[float] = lambda obj, cache: 9
    _SIZERS[bytes] = _size_bytes
    _SIZERS[str] = _size_str
    _SIZERS[list] = _size_seq
    _SIZERS[tuple] = _size_seq
    _SIZERS[dict] = _size_dict
    for sid, cls in _STRUCT_TABLE:
        names = _STRUCT_BY_TYPE[cls][1]
        encoder = _make_struct_encoder(sid, cls, names)
        _ENCODERS[cls] = encoder
        _SIZERS[cls] = _make_struct_sizer(cls, names, encoder)
    for eid, ecls in _ENUM_TABLE:
        members = _ENUM_BY_TYPE[ecls][1]
        _ENCODERS[ecls] = _make_enum_encoder(eid, members)
        _SIZERS[ecls] = _make_enum_sizer(eid, members)


_build_tables()


def encode_value(obj: Any, cache: LruCache | None = None) -> bytes:
    """Encode one payload value to TLV bytes (no frame header)."""
    buf = bytearray()
    enc = _ENCODERS.get(obj.__class__)
    if enc is None:
        _encode_fallback(obj)
    enc(buf, obj, cache)
    return bytes(buf)


def value_size(obj: Any, cache: LruCache | None = None) -> int:
    """Exact ``len(encode_value(obj))`` without building the bytes."""
    sizer = _SIZERS.get(obj.__class__)
    if sizer is None:
        _encode_fallback(obj)
    return sizer(obj, cache)


# ---------------------------------------------------------------------------
# reference encoder (the original reflective implementation)
#
# Kept as the semantics oracle: the test suite asserts the compiled tables
# produce byte-identical output over the full sample corpus.  Slow, simple,
# obviously correct.

def _reference_encode_into(buf: bytearray, obj: Any) -> None:
    if obj is None:
        buf.append(_T_NONE)
        return
    kind = type(obj)
    if kind is bool:
        buf.append(_T_TRUE if obj else _T_FALSE)
    elif kind is int:
        buf.append(_T_INT)
        _write_uvarint(buf, _zigzag(obj))
    elif kind is float:
        buf.append(_T_FLOAT)
        buf += _struct.pack(">d", obj)
    elif kind is bytes:
        buf.append(_T_BYTES)
        _write_uvarint(buf, len(obj))
        buf += obj
    elif kind is str:
        raw = obj.encode("utf-8")
        buf.append(_T_STR)
        _write_uvarint(buf, len(raw))
        buf += raw
    elif kind is list:
        buf.append(_T_LIST)
        _write_uvarint(buf, len(obj))
        for item in obj:
            _reference_encode_into(buf, item)
    elif kind is tuple:
        buf.append(_T_TUPLE)
        _write_uvarint(buf, len(obj))
        for item in obj:
            _reference_encode_into(buf, item)
    elif kind is dict:
        buf.append(_T_DICT)
        _write_uvarint(buf, len(obj))
        for key, value in obj.items():
            _reference_encode_into(buf, key)
            _reference_encode_into(buf, value)
    elif kind in _STRUCT_BY_TYPE:
        sid, names = _STRUCT_BY_TYPE[kind]
        buf.append(_T_STRUCT)
        _write_uvarint(buf, sid)
        _write_uvarint(buf, len(names))
        for name in names:
            _reference_encode_into(buf, getattr(obj, name))
    elif kind in _ENUM_BY_TYPE:
        eid, members = _ENUM_BY_TYPE[kind]
        buf.append(_T_ENUM)
        _write_uvarint(buf, eid)
        _write_uvarint(buf, members.index(obj))
    elif isinstance(obj, Enum):
        raise WireEncodeError(f"unregistered enum type on the wire: {kind.__name__}")
    else:
        raise WireEncodeError(f"unregistered type on the wire: {kind.__name__}")


def reference_encode_value(obj: Any) -> bytes:
    """The pre-compilation reflective encoder (oracle for the fast path)."""
    buf = bytearray()
    _reference_encode_into(buf, obj)
    return bytes(buf)


# ---------------------------------------------------------------------------
# decoding (tag-indexed dispatch over bytes or memoryview)

def _dec_none(data, pos):
    return None, pos


def _dec_true(data, pos):
    return True, pos


def _dec_false(data, pos):
    return False, pos


def _dec_int(data, pos):
    # Single-byte varints (almost every int on the wire) decode inline;
    # the loop only runs for multi-byte values.
    raw = data[pos]
    pos += 1
    if raw >= 0x80:
        raw &= 0x7F
        shift = 7
        while True:
            byte = data[pos]
            pos += 1
            raw |= (byte & 0x7F) << shift
            if byte < 0x80:
                break
            shift += 7
    if raw & 1:
        return -((raw + 1) >> 1), pos
    return raw >> 1, pos


def _dec_float(data, pos):
    try:
        value = _unpack_float(data, pos)[0]
    except _struct.error as exc:
        raise WireDecodeError("truncated float") from exc
    return value, pos + 8


def _dec_bytes(data, pos):
    length = data[pos]
    pos += 1
    if length >= 0x80:
        length, pos = _read_uvarint(data, pos - 1)
    end = pos + length
    if end > len(data):
        raise WireDecodeError("truncated bytes")
    return bytes(data[pos:end]), end


# Decode-side twin of ``_STR_ENC_MEMO``: raw utf-8 bytes -> str.  Serving
# repeated wire strings from the memo skips the utf-8 decode *and* returns
# a str whose hash is already computed, which speeds up building the
# payload dicts they key.
_STR_DEC_MEMO: dict[bytes, str] = {}


def _dec_str(data, pos):
    length = data[pos]
    pos += 1
    if length >= 0x80:
        length, pos = _read_uvarint(data, pos - 1)
    end = pos + length
    raw = bytes(data[pos:end])
    try:
        return _STR_DEC_MEMO[raw], end
    except KeyError:
        pass
    if len(raw) != length:
        raise WireDecodeError("truncated string")
    try:
        value = str(raw, "utf-8")
    except UnicodeDecodeError as exc:
        raise WireDecodeError("malformed utf-8 string") from exc
    if length < 0x80 and len(_STR_DEC_MEMO) < _STR_MEMO_LIMIT:
        _STR_DEC_MEMO[raw] = value
    return value, end


def _dec_list(data, pos):
    count = data[pos]
    pos += 1
    if count >= 0x80:
        count, pos = _read_uvarint(data, pos - 1)
    items = []
    append = items.append
    decoders = _DECODERS
    for _ in range(count):
        tag = data[pos]
        if tag == 0x03:  # single-byte int fast path (_T_INT)
            raw = data[pos + 1]
            if raw < 0x80:
                append(-((raw + 1) >> 1) if raw & 1 else raw >> 1)
                pos += 2
                continue
        item, pos = decoders[tag](data, pos + 1)
        append(item)
    return items, pos


def _dec_tuple(data, pos):
    items, pos = _dec_list(data, pos)
    return tuple(items), pos


def _dec_dict(data, pos):
    count = data[pos]
    pos += 1
    if count >= 0x80:
        count, pos = _read_uvarint(data, pos - 1)
    out: dict[Any, Any] = {}
    decoders = _DECODERS
    memo = _STR_DEC_MEMO
    for _ in range(count):
        # Keys are overwhelmingly short memoized strings: decode them
        # inline (tag 0x06 = _T_STR) and only fall back on a memo miss.
        if data[pos] == 0x06:
            length = data[pos + 1]
            end = pos + 2 + length
            if length < 0x80:
                try:
                    key = memo[bytes(data[pos + 2:end])]
                    pos = end
                except KeyError:
                    key, pos = _dec_str(data, pos + 1)
            else:
                key, pos = _dec_str(data, pos + 1)
        else:
            key, pos = decoders[data[pos]](data, pos + 1)
        tag = data[pos]
        if tag == 0x03:  # single-byte int fast path (_T_INT)
            raw = data[pos + 1]
            if raw < 0x80:
                out[key] = -((raw + 1) >> 1) if raw & 1 else raw >> 1
                pos += 2
                continue
        value, pos = decoders[tag](data, pos + 1)
        out[key] = value
    return out, pos


_STRUCT_DECODERS: dict[int, Callable] = {}


def _dec_struct(data, pos):
    sid = data[pos]
    pos += 1
    if sid >= 0x80:
        sid, pos = _read_uvarint(data, pos - 1)
    try:
        dec = _STRUCT_DECODERS[sid]
    except KeyError:
        raise WireDecodeError(f"unknown struct id {sid}") from None
    return dec(data, pos)


# Flat (id << 8 | index) -> member table: every registered enum has a
# single-byte id and fewer than 128 members, so the common case is one
# arithmetic dict probe.
_ENUM_FLAT: dict[int, Any] = {
    (eid << 8) | index: member
    for eid, members in _ENUM_BY_ID.items()
    for index, member in enumerate(members)
}


def _dec_enum(data, pos):
    try:
        return _ENUM_FLAT[(data[pos] << 8) | data[pos + 1]], pos + 2
    except KeyError:
        pass
    eid = data[pos]
    pos += 1
    if eid >= 0x80:
        eid, pos = _read_uvarint(data, pos - 1)
    members = _ENUM_BY_ID.get(eid)
    if members is None:
        raise WireDecodeError(f"unknown enum id {eid}")
    index = data[pos]
    pos += 1
    if index >= 0x80:
        index, pos = _read_uvarint(data, pos - 1)
    if index >= len(members):
        raise WireDecodeError(f"enum id {eid}: member index {index} out of range")
    return members[index], pos


def _dec_unknown_tag(data, pos):
    raise WireDecodeError(f"unknown type tag 0x{data[pos - 1]:02x}")


# Tag-indexed dispatch, padded to 256 entries so ``data[pos]`` can index
# directly without a range check; unknown tags land on the raising entry.
_DECODERS: tuple[Callable, ...] = (
    _dec_none,      # 0x00
    _dec_true,      # 0x01
    _dec_false,     # 0x02
    _dec_int,       # 0x03
    _dec_float,     # 0x04
    _dec_bytes,     # 0x05
    _dec_str,       # 0x06
    _dec_list,      # 0x07
    _dec_tuple,     # 0x08
    _dec_dict,      # 0x09
    _dec_struct,    # 0x0A
    _dec_enum,      # 0x0B
) + (_dec_unknown_tag,) * (256 - 12)


def _decode_at(data, pos: int, _D=_DECODERS) -> tuple[Any, int]:
    """Decode one value from ``data`` (bytes or memoryview) at ``pos``.

    Bounds are enforced by IndexError: the public entry points translate
    any stray IndexError into ``WireDecodeError("truncated value")``, so
    the hot path carries no explicit length checks.
    """
    return _D[data[pos]](data, pos + 1)


def _make_struct_decoder(sid: int, cls: type, names: tuple[str, ...]):
    """Compile one struct's decoder: field count check + unrolled fields.

    Registered structs always have < 128 fields, so a canonical frame
    writes the count as one byte; a first byte that does not equal the
    known count (including the continuation-bit case) is a schema
    mismatch and takes the slow diagnostic path.
    """
    n = len(names)
    assert n < 0x80, f"{cls.__name__}: field count {n} exceeds one varint byte"
    label = cls.__name__
    # Declared field types guide per-field fast paths.  They are a hint,
    # not a contract: the generated code checks the wire tag first and
    # falls back to generic dispatch, so a field holding something other
    # than its annotation still decodes correctly.
    annotations = {f.name: f.type for f in _dc_fields(cls)}
    variables = [f"v{i}" for i in range(n)]
    lines = [
        "def dec(data, pos, _cls=_cls, _D=_D, _memo=_memo, _ds=_ds,"
        " _mismatch=_mismatch, _err=_err):",
        f"    if data[pos] != {n}:",
        "        _mismatch(data, pos)",
        "    pos += 1",
    ]
    for v, name in zip(variables, names):
        hint = annotations.get(name)
        hint = hint if isinstance(hint, str) else getattr(hint, "__name__", "")
        if hint == "int":
            lines += [
                "    if data[pos] == 3:",  # _T_INT, single-byte payload
                "        raw = data[pos + 1]",
                "        if raw < 0x80:",
                f"            {v} = -((raw + 1) >> 1) if raw & 1 else raw >> 1",
                "            pos += 2",
                "        else:",
                f"            {v}, pos = _D[3](data, pos + 1)",
                "    else:",
                f"        {v}, pos = _D[data[pos]](data, pos + 1)",
            ]
        elif hint == "str":
            lines += [
                "    if data[pos] == 6:",  # _T_STR, short memoized payload
                "        L = data[pos + 1]",
                "        end = pos + 2 + L",
                "        if L < 0x80:",
                "            try:",
                f"                {v} = _memo[bytes(data[pos + 2:end])]",
                "                pos = end",
                "            except KeyError:",
                f"                {v}, pos = _ds(data, pos + 1)",
                "        else:",
                f"            {v}, pos = _ds(data, pos + 1)",
                "    else:",
                f"        {v}, pos = _D[data[pos]](data, pos + 1)",
            ]
        else:
            lines.append(f"    {v}, pos = _D[data[pos]](data, pos + 1)")
    lines += [
        "    try:",
        f"        return _cls({', '.join(variables)}), pos",
        "    except (TypeError, ValueError) as exc:",
        f"        raise _err('struct {label}: ' + str(exc)) from exc",
    ]

    def mismatch(data, pos, _n=n, _label=label):
        count, _ = _read_uvarint(data, pos)
        raise WireDecodeError(
            f"struct {_label}: schema mismatch "
            f"({count} fields on wire, {_n} known)"
        )

    namespace = {
        "_cls": cls, "_D": _DECODERS, "_memo": _STR_DEC_MEMO, "_ds": _dec_str,
        "_mismatch": mismatch, "_err": WireDecodeError,
    }
    exec("\n".join(lines), namespace)  # noqa: S102 - fixed template, schema-derived
    dec = namespace["dec"]
    dec.__qualname__ = f"_decode_{label}"
    return dec


for _sid, _cls in _STRUCT_TABLE:
    _STRUCT_DECODERS[_sid] = _make_struct_decoder(
        _sid, _cls, _STRUCT_BY_TYPE[_cls][1]
    )


def decode_value(data) -> Any:
    """Decode TLV bytes back to a payload value; rejects trailing bytes."""
    try:
        obj, pos = _decode_at(data, 0)
    except IndexError:
        raise WireDecodeError("truncated value") from None
    if pos != len(data):
        raise WireDecodeError(f"{len(data) - pos} trailing bytes after value")
    return obj


# ---------------------------------------------------------------------------
# out-of-band blobs (invitations etc.)

_BLOB_MAGIC = b"WB"
_BLOB_VERSION = 1


def encode_blob(obj: Any) -> bytes:
    """Encode an out-of-band object (e.g. an Invitation) with CRC framing."""
    body = encode_value(obj)
    head = _BLOB_MAGIC + bytes([_BLOB_VERSION])
    crc = zlib.crc32(head + body) & 0xFFFFFFFF
    return head + body + crc.to_bytes(4, "big")


def decode_blob(data: bytes) -> Any:
    """Decode a blob produced by :func:`encode_blob`."""
    if len(data) < 7 or data[:2] != _BLOB_MAGIC:
        raise WireDecodeError("not a wire blob")
    if data[2] != _BLOB_VERSION:
        raise WireDecodeError(f"unsupported blob version {data[2]}")
    body, trailer = data[3:-4], data[-4:]
    crc = zlib.crc32(data[:-4]) & 0xFFFFFFFF
    if crc.to_bytes(4, "big") != trailer:
        raise WireDecodeError("blob checksum mismatch")
    return decode_value(body)
