"""Live runtime: the WHISPER stack on real sockets and a real clock.

The protocol layers are written against two structural interfaces — the
:class:`repro.sim.clock.Clock` scheduling surface and the network fabric's
``send``/``attach``/``topology`` surface.  The simulator implements both
deterministically; this package implements both *live*:

- :class:`AsyncioScheduler` — ``Clock`` backed by an asyncio event loop;
- :class:`LiveNetwork` — the fabric surface backed by one UDP socket per
  hosted node, every datagram a :mod:`repro.wire` frame;
- :class:`LiveRuntime` — convenience host that assembles scheduler,
  network, crypto and unmodified :class:`~repro.core.node.WhisperNode`
  stacks inside one OS process.

``examples/live_chat.py`` uses this to run a PSS exchange and an
onion-routed private message between two OS processes over loopback.
"""

from .clock import AsyncioScheduler, ScheduledCall
from .live import LiveNetwork, LiveNetworkStats, LiveRuntime

__all__ = [
    "AsyncioScheduler",
    "ScheduledCall",
    "LiveNetwork",
    "LiveNetworkStats",
    "LiveRuntime",
]
