"""Live runtime: the WHISPER stack on real sockets and a real clock.

The protocol layers are written against two structural interfaces — the
:class:`repro.sim.clock.Clock` scheduling surface and the network fabric's
``send``/``attach``/``topology`` surface.  The simulator implements both
deterministically; this package implements both *live*:

- :class:`AsyncioScheduler` — ``Clock`` backed by an asyncio event loop;
- :class:`LiveNetwork` — the fabric surface backed by one UDP socket per
  hosted node, every datagram a :mod:`repro.wire` frame;
- :class:`LiveRuntime` — convenience host that assembles scheduler,
  network, crypto and unmodified :class:`~repro.core.node.WhisperNode`
  stacks inside one OS process;
- :class:`NodeSupervisor` — liveness probing, crash/wedge detection and
  restart-with-backoff for multi-node hosts (soak runs).

``examples/live_chat.py`` uses this to run a PSS exchange and an
onion-routed private message between two OS processes over loopback;
``python -m repro.experiments soak`` hosts ~100 supervised nodes in one
process and drives them through a scripted fault schedule.
"""

from .clock import AsyncioScheduler, ScheduledCall
from .live import SEND_QUEUE_LIMIT, LiveNetwork, LiveNetworkStats, LiveRuntime
from .supervisor import NodeSupervisor, SupervisorConfig, SupervisorStats

__all__ = [
    "AsyncioScheduler",
    "ScheduledCall",
    "LiveNetwork",
    "LiveNetworkStats",
    "LiveRuntime",
    "NodeSupervisor",
    "SEND_QUEUE_LIMIT",
    "SupervisorConfig",
    "SupervisorStats",
]
