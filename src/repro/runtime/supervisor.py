"""Per-node supervision for the live runtime.

A :class:`NodeSupervisor` keeps a multi-node :class:`~.live.LiveRuntime`
healthy through the failures a soak run injects: it probes every hosted
node on the scheduler, detects crashed or wedged stacks (dead node object,
detached handler, or a closed socket), and restarts them with exponential
backoff — rebind the socket, rebuild the ``WhisperNode`` stack, and
re-bootstrap PSS from the introducer descriptors cached at
:meth:`~.live.LiveRuntime.start`.  Dissent's accountability argument
motivates the design: a wedged member should be detected and replaced,
not silently degrade the group.

Backoff doubles per consecutive restart of the same node (``base`` →
``max``) and resets once an incarnation stays healthy for ``healthy_after``
seconds, so a flapping node cannot hot-loop the supervisor while a
genuinely healed one is forgiven.

Everything the supervisor does is visible in telemetry under the
``supervisor`` layer: probe sweeps, detections, restarts (per node and
total), and the current backoff per node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..net.address import NodeId

if TYPE_CHECKING:
    from ..core.node import WhisperNode
    from .clock import ScheduledCall
    from .live import LiveRuntime

__all__ = ["SupervisorConfig", "SupervisorStats", "NodeSupervisor"]


@dataclass(frozen=True)
class SupervisorConfig:
    """Liveness-probe cadence and restart backoff envelope."""

    probe_interval: float = 1.0
    backoff_base: float = 0.5
    backoff_max: float = 8.0
    healthy_after: float = 10.0  # healthy this long resets the backoff

    def __post_init__(self) -> None:
        if self.probe_interval <= 0:
            raise ValueError("probe interval must be positive")
        if self.backoff_base <= 0 or self.backoff_max < self.backoff_base:
            raise ValueError("backoff envelope must satisfy 0 < base <= max")


@dataclass
class SupervisorStats:
    """What the supervisor observed and did."""

    probes: int = 0
    detections: int = 0
    restarts: int = 0


class NodeSupervisor:
    """Watches a LiveRuntime's nodes and restarts the ones that wedge."""

    def __init__(
        self,
        runtime: "LiveRuntime",
        config: "SupervisorConfig | None" = None,
    ) -> None:
        self.runtime = runtime
        self.config = config if config is not None else SupervisorConfig()
        self.stats = SupervisorStats()
        self.on_restart: Callable[["WhisperNode"], None] | None = None
        self._probe_handle: "ScheduledCall | None" = None
        self._restart_handles: dict[NodeId, "ScheduledCall"] = {}
        # node -> current backoff delay (seconds) for its *next* restart.
        self._backoff: dict[NodeId, float] = {}
        self._restarted_at: dict[NodeId, float] = {}
        self._running = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._running = True
        self._schedule_probe()

    def stop(self) -> None:
        self._running = False
        if self._probe_handle is not None:
            self._probe_handle.cancel()
            self._probe_handle = None
        for handle in self._restart_handles.values():
            handle.cancel()
        self._restart_handles.clear()

    # ------------------------------------------------------------------
    # probing
    # ------------------------------------------------------------------
    def _schedule_probe(self) -> None:
        if not self._running:
            return
        self._probe_handle = self.runtime.scheduler.schedule(
            self.config.probe_interval, self._probe
        )

    def _probe(self) -> None:
        self._probe_handle = None
        runtime = self.runtime
        telemetry = runtime.telemetry
        self.stats.probes += 1
        if telemetry.enabled:
            telemetry.counter("supervisor.probes", layer="supervisor").inc()
        now = runtime.scheduler.now
        for node_id in sorted(runtime.nodes):
            if node_id in self._restart_handles:
                continue  # restart already pending (in backoff)
            if self._is_healthy(node_id):
                # A node that outlived the forgiveness window earns its
                # backoff back.
                restarted = self._restarted_at.get(node_id)
                if (
                    restarted is not None
                    and now - restarted >= self.config.healthy_after
                ):
                    self._backoff.pop(node_id, None)
                    self._restarted_at.pop(node_id, None)
                continue
            self._on_detection(node_id)
        self._schedule_probe()

    def _is_healthy(self, node_id: NodeId) -> bool:
        node = self.runtime.nodes.get(node_id)
        if node is None or not node.alive:
            return False
        network = self.runtime.network
        return network.is_attached(node_id) and node_id in network.endpoints

    # ------------------------------------------------------------------
    # restarts with exponential backoff
    # ------------------------------------------------------------------
    def _on_detection(self, node_id: NodeId) -> None:
        self.stats.detections += 1
        telemetry = self.runtime.telemetry
        delay = self._backoff.get(node_id, 0.0)
        # Next failure of this node waits longer (exponential, capped).
        next_delay = (
            self.config.backoff_base
            if delay == 0.0
            else min(delay * 2.0, self.config.backoff_max)
        )
        self._backoff[node_id] = next_delay
        if telemetry.enabled:
            telemetry.counter(
                "supervisor.detections", layer="supervisor"
            ).inc()
            telemetry.gauge(
                "supervisor.backoff", node=node_id, layer="supervisor"
            ).set(delay)
        if delay <= 0.0:
            self._restart(node_id)
        else:
            self._restart_handles[node_id] = self.runtime.scheduler.schedule(
                delay, lambda: self._delayed_restart(node_id)
            )

    def _delayed_restart(self, node_id: NodeId) -> None:
        self._restart_handles.pop(node_id, None)
        if not self._running:
            return
        if self._is_healthy(node_id):
            return  # healed (or was restarted by hand) while we backed off
        self._restart(node_id)

    def _restart(self, node_id: NodeId) -> None:
        runtime = self.runtime
        try:
            node = runtime.nodes.get(node_id)
            if node is not None and node.alive:
                # Wedged but alive (detached handler, dead socket): force
                # it down first — restart_node refuses live incarnations.
                runtime.crash_node(node_id)
            node = runtime.restart_node(node_id)
        except Exception:
            # Restart failed (e.g. bind error); the next probe retries
            # under the already-doubled backoff.
            return
        self.stats.restarts += 1
        self._restarted_at[node_id] = runtime.scheduler.now
        if runtime.telemetry.enabled:
            runtime.telemetry.counter(
                "supervisor.restarts", layer="supervisor"
            ).inc()
        if self.on_restart is not None:
            self.on_restart(node)
