"""An asyncio-backed implementation of the :class:`~repro.sim.clock.Clock` surface.

The protocol layers (PSS cycles, keepalive probes, PPSS timers, backoffs)
only ever call ``now`` / ``schedule`` / ``schedule_at`` and cancel the
handles they get back.  :class:`AsyncioScheduler` maps those onto an
asyncio event loop: ``now`` is the loop's monotonic clock rebased to 0 at
construction (so protocol code sees the same "time since boot" frame the
simulator provides), and scheduled callbacks become ``call_later``
handles wrapped to expose the ``cancelled`` attribute the sim's timers
inspect.

Like the simulator, negative delays are rejected loudly — a negative
timeout is always a protocol bug, and the live runtime should fail the
same way the deterministic one does.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable

__all__ = ["AsyncioScheduler", "ScheduledCall"]


class ScheduledCall:
    """Cancellable handle for a callback scheduled on the event loop."""

    __slots__ = ("time", "cancelled", "_callback", "_handle")

    def __init__(self, time: float, callback: Callable[[], Any]) -> None:
        self.time = time
        self.cancelled = False
        self._callback = callback
        self._handle: asyncio.TimerHandle | None = None

    def cancel(self) -> None:
        """Idempotent; a cancelled callback never fires."""
        if not self.cancelled:
            self.cancelled = True
            if self._handle is not None:
                self._handle.cancel()

    def _fire(self) -> None:
        if not self.cancelled:
            self._callback()


class AsyncioScheduler:
    """``Clock`` implementation driving callbacks from an asyncio loop."""

    def __init__(self, loop: asyncio.AbstractEventLoop | None = None) -> None:
        self._loop = loop if loop is not None else asyncio.new_event_loop()
        self._t0 = self._loop.time()

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        return self._loop

    @property
    def now(self) -> float:
        """Seconds since this scheduler was created (monotonic)."""
        return self._loop.time() - self._t0

    def schedule(
        self, delay: float, callback: Callable[[], Any], priority: int = 0
    ) -> ScheduledCall:
        """Run ``callback`` after ``delay`` seconds of wall-clock time.

        ``priority`` is accepted for interface compatibility with the
        simulator; wall-clock delivery order between same-instant events
        is the event loop's FIFO order.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule {delay:.6f}s in the past")
        call = ScheduledCall(self.now + delay, callback)
        call._handle = self._loop.call_later(delay, call._fire)
        return call

    def schedule_at(
        self, time: float, callback: Callable[[], Any], priority: int = 0
    ) -> ScheduledCall:
        """Run ``callback`` at absolute scheduler time ``time``."""
        delay = time - self.now
        if delay < 0:
            raise ValueError(f"cannot schedule at {time:.6f}, now is {self.now:.6f}")
        return self.schedule(delay, callback, priority)

    # ------------------------------------------------------------------
    # loop driving helpers (used by LiveRuntime and tests)
    # ------------------------------------------------------------------
    def run_for(self, seconds: float) -> None:
        """Drive the loop for ``seconds`` of wall-clock time."""
        self._loop.run_until_complete(asyncio.sleep(seconds))

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float,
        poll: float = 0.02,
    ) -> bool:
        """Drive the loop until ``predicate()`` or ``timeout``; True on success."""

        async def wait() -> bool:
            deadline = self._loop.time() + timeout
            while True:
                if predicate():
                    return True
                if self._loop.time() >= deadline:
                    return False
                await asyncio.sleep(poll)

        return self._loop.run_until_complete(wait())

    def close(self) -> None:
        if not self._loop.is_closed():
            self._loop.close()
