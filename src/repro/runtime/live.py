"""Live UDP fabric: the network surface of :class:`repro.net.network.Network`
backed by real sockets.

Each hosted node gets its *own* datagram socket.  That mirrors a real
deployment (one process, one port per node) and makes inbound routing
trivial: whatever arrives on a node's socket is for that node, so wire
frames never need to carry a destination node id — exactly like the sim
fabric, where the destination is the endpoint the packet was sent to.

Every datagram is a :mod:`repro.wire` frame.  Frames that fail to decode
(garbage, truncation, foreign versions) are counted and dropped, which is
the live analogue of the sim's silent UDP loss: the protocol layers
already recover from missing messages, so the transport never guesses.

The ``Message.src`` handed to the stack is the *observed* sender address
from ``recvfrom`` — on a NATed path that is the NAT's external mapping,
which is precisely the semantics the sim's NAT topology models and what
``nat.pong``'s reflexive-endpoint echo relies on.

Sockets are plain non-blocking UDP sockets registered with the loop via
``add_reader`` rather than asyncio ``DatagramTransport``s.  ``add_reader``
is synchronous and safe from *inside* scheduler callbacks, which is what
mid-run socket rebinds (:class:`~repro.faults.live.LiveFaultFabric` NAT
rebinds) and supervisor restarts need — ``create_datagram_endpoint`` is a
coroutine and the old ``run_until_complete`` binding deadlocked if the
loop was already running.  Sends that would block (full kernel buffer)
land in a bounded per-node queue drained on writability, degrading
gracefully by dropping the *oldest* queued datagram — for soak-length
runs, losing stale gossip beats losing fresh traffic or growing without
bound.
"""

from __future__ import annotations

import socket as socket_module
from collections import deque
from typing import TYPE_CHECKING, Callable

from ..crypto.costmodel import CostModel, CpuAccountant
from ..crypto.provider import (
    CryptoProvider,
    RealCryptoProvider,
    SimCryptoProvider,
)
from ..core.node import WhisperConfig, WhisperNode
from ..nat.traversal import NodeDescriptor
from ..nat.types import NatType
from ..net.address import Endpoint, NodeId, NodeKind, Protocol
from ..net.bandwidth import BandwidthAccountant
from ..net.message import Message
from ..sim.rng import RngRegistry
from ..telemetry import NULL_TELEMETRY, Telemetry
from .. import wire
from ..wire.audit import WireAudit
from .clock import AsyncioScheduler

if TYPE_CHECKING:
    from ..faults.live import LiveFaultFabric
    from .supervisor import NodeSupervisor, SupervisorConfig

__all__ = ["LiveNetwork", "LiveNetworkStats", "LiveRuntime", "SEND_QUEUE_LIMIT"]

Handler = Callable[[Message], None]

SEND_QUEUE_LIMIT = 512
"""Default per-node bound on datagrams queued behind a full kernel buffer."""

_RECV_SIZE = 65_535


class LiveNetworkStats:
    """Transport counters (mirrors the sim fabric's NetworkStats)."""

    __slots__ = (
        "sent", "delivered", "rejected", "no_handler", "filtered",
        "queued", "queue_dropped", "rebinds",
    )

    def __init__(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.rejected = 0  # datagrams that failed wire decoding
        self.no_handler = 0
        self.filtered = 0  # sends from nodes without an open socket
        self.queued = 0  # sends deferred behind a full kernel buffer
        self.queue_dropped = 0  # oldest-first drops from a full send queue
        self.rebinds = 0  # mid-run socket rebinds (NAT rebind faults)


class _LiveTopology:
    """The small slice of the NAT topology surface the stack consults."""

    def __init__(self, network: "LiveNetwork") -> None:
        self._network = network

    def knows(self, node_id: NodeId) -> bool:
        return node_id in self._network.endpoints

    def public_endpoint(self, node_id: NodeId) -> Endpoint:
        return self._network.endpoints[node_id]


class _Port:
    """One node's socket plus its bounded outbound queue."""

    __slots__ = ("sock", "queue", "writer_armed")

    def __init__(self, sock: socket_module.socket) -> None:
        self.sock = sock
        self.queue: deque[tuple[bytes, tuple[str, int]]] = deque()
        self.writer_armed = False


class LiveNetwork:
    """Duck-typed :class:`~repro.net.network.Network` over asyncio UDP."""

    def __init__(
        self,
        scheduler: AsyncioScheduler,
        host: str = "127.0.0.1",
        accountant: BandwidthAccountant | None = None,
        telemetry: "Telemetry | None" = None,
        queue_limit: int = SEND_QUEUE_LIMIT,
    ) -> None:
        self._scheduler = scheduler
        self._host = host
        self.accountant = accountant if accountant is not None else BandwidthAccountant()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.endpoints: dict[NodeId, Endpoint] = {}
        self._ports: dict[NodeId, _Port] = {}
        self._owners: dict[tuple[str, int], NodeId] = {}
        self._handlers: dict[NodeId, Handler] = {}
        self._topology = _LiveTopology(self)
        self.stats = LiveNetworkStats()
        self.wire_audit = WireAudit()
        self.queue_limit = queue_limit
        self._fault_fabric: "LiveFaultFabric | None" = None
        self._queue_gauge = self.telemetry.metrics.gauge(
            "net.send_queue_depth", layer="net"
        )
        self._msg_ids = iter(range(0, 1 << 62))

    # ------------------------------------------------------------------
    # sockets
    # ------------------------------------------------------------------
    def open_endpoint(self, node_id: NodeId, port: int = 0) -> Endpoint:
        """Bind a UDP socket for ``node_id``; port 0 lets the OS pick.

        Purely synchronous (socket + ``add_reader``), so it is safe from
        scheduler callbacks while the loop is running — the property
        supervisor restarts and mid-run NAT rebinds depend on.
        """
        if node_id in self._ports:
            return self.endpoints[node_id]
        sock = socket_module.socket(
            socket_module.AF_INET, socket_module.SOCK_DGRAM
        )
        sock.setblocking(False)
        sock.bind((self._host, port))
        sock_host, sock_port = sock.getsockname()[:2]
        endpoint = Endpoint(sock_host, sock_port)
        self._ports[node_id] = _Port(sock)
        self.endpoints[node_id] = endpoint
        self._owners[(sock_host, sock_port)] = node_id
        self._scheduler.loop.add_reader(
            sock.fileno(), self._on_readable, node_id
        )
        return endpoint

    def close_endpoint(self, node_id: NodeId) -> None:
        self._teardown_port(node_id)
        self._handlers.pop(node_id, None)

    def rebind_endpoint(self, node_id: NodeId) -> Endpoint:
        """Close and reopen a node's socket mid-run (NAT rebind semantics).

        The OS assigns a fresh port; the handler stays attached, so the
        node keeps running while its peers' cached endpoint goes stale —
        exactly what a rebooted NAT box does to an external mapping.
        """
        if node_id not in self._ports:
            raise ValueError(f"node {node_id} has no open endpoint")
        self._teardown_port(node_id)
        endpoint = self.open_endpoint(node_id)
        self.stats.rebinds += 1
        if self.telemetry.enabled:
            self.telemetry.counter("net.rebinds", node=node_id, layer="net").inc()
        return endpoint

    def _teardown_port(self, node_id: NodeId) -> None:
        port = self._ports.pop(node_id, None)
        endpoint = self.endpoints.pop(node_id, None)
        if endpoint is not None:
            self._owners.pop((endpoint.host, endpoint.port), None)
        if port is None:
            return
        loop = self._scheduler.loop
        fd = port.sock.fileno()
        if fd >= 0:
            loop.remove_reader(fd)
            if port.writer_armed:
                loop.remove_writer(fd)
        if port.queue:
            self.stats.queue_dropped += len(port.queue)
            port.queue.clear()
            self._publish_queue_depth()
        port.sock.close()

    def close(self) -> None:
        for node_id in list(self._ports):
            self.close_endpoint(node_id)

    # ------------------------------------------------------------------
    # fabric surface consumed by the protocol stack
    # ------------------------------------------------------------------
    @property
    def topology(self) -> _LiveTopology:
        return self._topology

    def attach(self, node_id: NodeId, handler: Handler) -> None:
        if node_id not in self._ports:
            raise ValueError(f"node {node_id} has no open endpoint")
        self._handlers[node_id] = handler

    def detach(self, node_id: NodeId) -> None:
        self._handlers.pop(node_id, None)

    def is_attached(self, node_id: NodeId) -> bool:
        return node_id in self._handlers

    def owner_of(self, endpoint: Endpoint) -> NodeId | None:
        """The hosted node bound to ``endpoint``, if any (fault targeting)."""
        return self._owners.get((endpoint.host, endpoint.port))

    def set_fault_fabric(self, fabric: "LiveFaultFabric | None") -> None:
        """Install (or clear) the datagram-level fault interposition layer."""
        self._fault_fabric = fabric

    def send(
        self,
        src_node: NodeId,
        dst: Endpoint,
        kind: str,
        payload: object,
        size_bytes: int,
        protocol: Protocol = Protocol.UDP,
        category: str = "other",
    ) -> None:
        """Encode one protocol message and put it on the wire.

        Fire-and-forget, like the sim fabric: a send from a node whose
        socket is gone is dropped silently.
        """
        if src_node not in self._ports:
            self.stats.filtered += 1
            if self.telemetry.enabled:
                self.telemetry.counter("net.filtered", layer="net").inc()
            return
        frame = wire.encode_message(kind, payload)
        self.wire_audit.record(kind, size_bytes, len(frame))
        self.stats.sent += 1
        self.accountant.record(src_node, -1, len(frame), category)
        tel = self.telemetry
        if tel.enabled:
            tel.counter("net.msgs_sent", node=src_node, layer="net").inc()
            tel.counter("net.up_bytes", node=src_node, layer="net").inc(len(frame))
            tel.counter("net.kind_msgs", kind=kind, layer="net").inc()
        fabric = self._fault_fabric
        if fabric is not None:
            # The fabric owns the datagram from here: it may drop it,
            # transmit immediately, or schedule (possibly multiple)
            # transmits on the live clock.
            fabric.outbound(src_node, dst, frame)
        else:
            self.transmit(src_node, frame, (dst.host, dst.port))

    # ------------------------------------------------------------------
    # raw datagram path (also the fault fabric's re-entry point)
    # ------------------------------------------------------------------
    def transmit(
        self, src_node: NodeId, frame: bytes, addr: tuple[str, int]
    ) -> None:
        """Put one already-encoded frame on ``src_node``'s socket.

        Queues behind a full kernel buffer (bounded, drop-oldest); a frame
        from a node whose socket closed while the frame was held back by a
        fault directive is dropped, as on a real host.
        """
        port = self._ports.get(src_node)
        if port is None:
            self.stats.filtered += 1
            if self.telemetry.enabled:
                self.telemetry.counter("net.filtered", layer="net").inc()
            return
        if not port.queue:
            try:
                port.sock.sendto(frame, addr)
                return
            except (BlockingIOError, InterruptedError):
                pass
            except OSError:
                # ENOBUFS and friends: treat like a momentarily full buffer.
                pass
        self._enqueue(src_node, port, frame, addr)

    def _enqueue(
        self,
        node_id: NodeId,
        port: _Port,
        frame: bytes,
        addr: tuple[str, int],
    ) -> None:
        if len(port.queue) >= self.queue_limit:
            port.queue.popleft()  # graceful degradation: oldest goes first
            self.stats.queue_dropped += 1
            if self.telemetry.enabled:
                self.telemetry.counter(
                    "net.send_queue_dropped", node=node_id, layer="net"
                ).inc()
        port.queue.append((frame, addr))
        self.stats.queued += 1
        self._publish_queue_depth()
        if not port.writer_armed:
            port.writer_armed = True
            self._scheduler.loop.add_writer(
                port.sock.fileno(), self._on_writable, node_id
            )

    def _on_writable(self, node_id: NodeId) -> None:
        port = self._ports.get(node_id)
        if port is None:
            return
        while port.queue:
            frame, addr = port.queue[0]
            try:
                port.sock.sendto(frame, addr)
            except (BlockingIOError, InterruptedError):
                self._publish_queue_depth()
                return
            except OSError:
                pass  # unsendable frame: drop it and move on
            port.queue.popleft()
        port.writer_armed = False
        self._scheduler.loop.remove_writer(port.sock.fileno())
        self._publish_queue_depth()

    def pending_sends(self) -> int:
        """Datagrams still queued across all nodes (drained on shutdown)."""
        return sum(len(port.queue) for port in self._ports.values())

    def _publish_queue_depth(self) -> None:
        if self.telemetry.enabled:
            self._queue_gauge.set(self.pending_sends())

    # ------------------------------------------------------------------
    def _on_readable(self, node_id: NodeId) -> None:
        port = self._ports.get(node_id)
        if port is None:
            return
        while True:
            try:
                data, addr = port.sock.recvfrom(_RECV_SIZE)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # socket closed under us (rebind/teardown race)
            self._on_datagram(node_id, data, addr)

    def _on_datagram(self, node_id: NodeId, data: bytes, addr: tuple[str, int]) -> None:
        try:
            decoded = wire.decode_message(data)
        except wire.WireDecodeError:
            self.stats.rejected += 1
            if self.telemetry.enabled:
                self.telemetry.counter("net.wire_rejected", layer="net").inc()
            return
        fabric = self._fault_fabric
        if fabric is not None and fabric.inbound(node_id, addr) is not None:
            return  # swallowed by a fault active at arrival time
        handler = self._handlers.get(node_id)
        if handler is None:
            self.stats.no_handler += 1
            if self.telemetry.enabled:
                self.telemetry.counter("net.no_handler", layer="net").inc()
            return
        message = Message(
            src=Endpoint(addr[0], addr[1]),
            dst=self.endpoints[node_id],
            kind=decoded.kind,
            payload=decoded.payload,
            size_bytes=len(data),
            protocol=Protocol.UDP,
            msg_id=next(self._msg_ids),
        )
        self.stats.delivered += 1
        self.accountant.record(-1, node_id, len(data), wire.category_for(decoded.kind))
        if self.telemetry.enabled:
            self.telemetry.counter("net.msgs_delivered", node=node_id, layer="net").inc()
            self.telemetry.counter("net.down_bytes", node=node_id, layer="net").inc(
                len(data)
            )
        handler(message)


class LiveRuntime:
    """One OS process hosting unmodified WhisperNode stacks on real sockets."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        seed: int = 0,
        provider: str = "real",
        key_bits: int = 512,
        whisper: WhisperConfig | None = None,
        telemetry_enabled: bool = False,
        queue_limit: int = SEND_QUEUE_LIMIT,
    ) -> None:
        self.scheduler = AsyncioScheduler()
        self.telemetry = Telemetry(
            clock=lambda: self.scheduler.now, enabled=telemetry_enabled
        )
        self.accountant = BandwidthAccountant()
        self.network = LiveNetwork(
            self.scheduler, host,
            accountant=self.accountant,
            telemetry=self.telemetry,
            queue_limit=queue_limit,
        )
        self.registry = RngRegistry(seed)
        # Cost accounting still records what each operation *would* cost
        # under the paper's model; live runs additionally pay the real CPU
        # time, so nothing sleeps on the model's behalf.
        self.cpu = CpuAccountant(CostModel(), rng=None)
        self.provider = self._make_provider(provider, key_bits)
        self.whisper = whisper if whisper is not None else WhisperConfig()
        self.nodes: dict[NodeId, WhisperNode] = {}
        self.supervisor: "NodeSupervisor | None" = None
        self._nat_types: dict[NodeId, NatType] = {}
        self._introducers: list[NodeDescriptor] = []
        self._restart_counts: dict[NodeId, int] = {}

    def _make_provider(self, provider: str, key_bits: int) -> CryptoProvider:
        rng = self.registry.stream("crypto")
        if provider == "sim":
            return SimCryptoProvider(rng, self.cpu)
        if provider == "real":
            return RealCryptoProvider(rng, self.cpu, key_bits=key_bits)
        raise ValueError(f"unknown provider: {provider!r}")

    # ------------------------------------------------------------------
    def add_node(
        self,
        node_id: NodeId,
        nat_type: NatType = NatType.OPEN,
        port: int = 0,
    ) -> WhisperNode:
        """Bind a socket and assemble the full protocol stack for one node."""
        if node_id in self.nodes:
            raise ValueError(f"node {node_id} already hosted here")
        self.network.open_endpoint(node_id, port)
        self._nat_types[node_id] = nat_type
        node = self._build_node(node_id, nat_type, restart=0)
        self.nodes[node_id] = node
        return node

    def _build_node(
        self, node_id: NodeId, nat_type: NatType, restart: int
    ) -> WhisperNode:
        # Restarted incarnations fork a fresh RNG stream: a rebooted
        # process would re-seed too, and reusing the original stream would
        # make the replacement's draws depend on how much the first life
        # consumed.
        stream = f"node-{node_id}" if restart == 0 else f"node-{node_id}-r{restart}"
        return WhisperNode(
            node_id=node_id,
            nat_type=nat_type,
            sim=self.scheduler,  # duck-typed Clock
            network=self.network,  # duck-typed fabric
            provider=self.provider,
            rng=self.registry.fork(stream).stream("main"),
            config=self.whisper,
            telemetry=self.telemetry,
        )

    def descriptor(self, node_id: NodeId) -> NodeDescriptor:
        """The hosted node's descriptor, shareable with other processes."""
        return self.nodes[node_id].cm.descriptor()

    @staticmethod
    def remote_descriptor(node_id: NodeId, host: str, port: int) -> NodeDescriptor:
        """Descriptor for a public node hosted by *another* process."""
        return NodeDescriptor(
            node_id=node_id,
            kind=NodeKind.PUBLIC,
            nat_type=NatType.OPEN,
            public_endpoint=Endpoint(host, port),
        )

    def start(self, introducers: list[NodeDescriptor]) -> None:
        self._introducers = list(introducers)
        for node in self.nodes.values():
            own = [d for d in introducers if d.node_id != node.node_id]
            node.start(own)

    # ------------------------------------------------------------------
    # supervision: crash, restart, re-bootstrap
    # ------------------------------------------------------------------
    def supervise(self, config: "SupervisorConfig | None" = None) -> "NodeSupervisor":
        """Start per-node liveness supervision (see :mod:`.supervisor`)."""
        from .supervisor import NodeSupervisor

        if self.supervisor is not None:
            raise RuntimeError("runtime already supervised")
        self.supervisor = NodeSupervisor(self, config)
        self.supervisor.start()
        return self.supervisor

    def crash_node(self, node_id: NodeId) -> None:
        """Abruptly wedge a hosted node: socket gone, no graceful goodbye.

        The node object stays in :attr:`nodes` (marked dead) so the
        supervisor's probe sees a crashed — not departed — member and
        restarts it.
        """
        node = self.nodes[node_id]
        node.alive = False
        self.network.detach(node_id)
        self.network.close_endpoint(node_id)

    def restart_node(self, node_id: NodeId) -> WhisperNode:
        """Rebind the socket, rebuild the stack, re-bootstrap from cache."""
        old = self.nodes.get(node_id)
        if old is not None and old.alive:
            raise RuntimeError(f"node {node_id} is alive; refusing to restart")
        if old is not None:
            # Quiesce the wedged incarnation's timers before its node id
            # gets a fresh socket — otherwise the zombie stack would emit
            # through the replacement's endpoint.
            try:
                old.stop()
            except Exception:
                pass
        restart = self._restart_counts.get(node_id, 0) + 1
        self._restart_counts[node_id] = restart
        self.network.open_endpoint(node_id)
        node = self._build_node(
            node_id, self._nat_types.get(node_id, NatType.OPEN), restart
        )
        self.nodes[node_id] = node
        introducers = [
            d for d in self._introducers if d.node_id != node_id
        ]
        node.start(introducers)
        if self.telemetry.enabled:
            self.telemetry.counter(
                "supervisor.node_restarts", node=node_id, layer="supervisor"
            ).inc()
        return node

    def restart_count(self, node_id: NodeId) -> int:
        return self._restart_counts.get(node_id, 0)

    # ------------------------------------------------------------------
    def run_for(self, seconds: float) -> None:
        self.scheduler.run_for(seconds)

    def run_until(self, predicate: Callable[[], bool], timeout: float) -> bool:
        return self.scheduler.run_until(predicate, timeout)

    def drain(self, timeout: float = 1.0) -> bool:
        """Drive the loop until queued sends flush; True if fully drained."""
        return self.scheduler.run_until(
            lambda: self.network.pending_sends() == 0, timeout
        )

    def close(self) -> None:
        if self.supervisor is not None:
            self.supervisor.stop()
            self.supervisor = None
        for node in self.nodes.values():
            if node.alive:
                node.stop()
        # Flush what the bounded queues still hold before tearing sockets
        # down; anything left after the timeout is counted as dropped.
        try:
            self.drain(timeout=0.5)
        except Exception:  # pragma: no cover - loop already closed
            pass
        self.network.close()
        # Give the loop a tick to tear down cleanly, then close.
        try:
            self.scheduler.run_for(0)
        except Exception:  # pragma: no cover - loop already closed
            pass
        self.scheduler.close()
