"""Live UDP fabric: the network surface of :class:`repro.net.network.Network`
backed by real sockets.

Each hosted node gets its *own* datagram socket.  That mirrors a real
deployment (one process, one port per node) and makes inbound routing
trivial: whatever arrives on a node's socket is for that node, so wire
frames never need to carry a destination node id — exactly like the sim
fabric, where the destination is the endpoint the packet was sent to.

Every datagram is a :mod:`repro.wire` frame.  Frames that fail to decode
(garbage, truncation, foreign versions) are counted and dropped, which is
the live analogue of the sim's silent UDP loss: the protocol layers
already recover from missing messages, so the transport never guesses.

The ``Message.src`` handed to the stack is the *observed* sender address
from ``recvfrom`` — on a NATed path that is the NAT's external mapping,
which is precisely the semantics the sim's NAT topology models and what
``nat.pong``'s reflexive-endpoint echo relies on.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Callable

from ..crypto.costmodel import CostModel, CpuAccountant
from ..crypto.provider import (
    CryptoProvider,
    RealCryptoProvider,
    SimCryptoProvider,
)
from ..core.node import WhisperConfig, WhisperNode
from ..nat.traversal import NodeDescriptor
from ..nat.types import NatType
from ..net.address import Endpoint, NodeId, NodeKind, Protocol
from ..net.bandwidth import BandwidthAccountant
from ..net.message import Message
from ..sim.rng import RngRegistry
from ..telemetry import NULL_TELEMETRY, Telemetry
from .. import wire
from ..wire.audit import WireAudit
from .clock import AsyncioScheduler

if TYPE_CHECKING:
    import asyncio

__all__ = ["LiveNetwork", "LiveNetworkStats", "LiveRuntime"]

Handler = Callable[[Message], None]


class LiveNetworkStats:
    """Transport counters (mirrors the sim fabric's NetworkStats)."""

    __slots__ = ("sent", "delivered", "rejected", "no_handler", "filtered")

    def __init__(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.rejected = 0  # datagrams that failed wire decoding
        self.no_handler = 0
        self.filtered = 0  # sends from nodes without an open socket


class _LiveTopology:
    """The small slice of the NAT topology surface the stack consults."""

    def __init__(self, network: "LiveNetwork") -> None:
        self._network = network

    def knows(self, node_id: NodeId) -> bool:
        return node_id in self._network.endpoints

    def public_endpoint(self, node_id: NodeId) -> Endpoint:
        return self._network.endpoints[node_id]


class _NodePort:
    """asyncio.DatagramProtocol delivering to the owning LiveNetwork."""

    def __init__(self, network: "LiveNetwork", node_id: NodeId) -> None:
        self._network = network
        self._node_id = node_id

    def connection_made(self, transport: "asyncio.DatagramTransport") -> None:
        pass

    def connection_lost(self, exc: Exception | None) -> None:
        pass

    def error_received(self, exc: Exception) -> None:
        pass

    def datagram_received(self, data: bytes, addr: tuple[str, int]) -> None:
        self._network._on_datagram(self._node_id, data, addr)

    def pause_writing(self) -> None:  # pragma: no cover - flow control hooks
        pass

    def resume_writing(self) -> None:  # pragma: no cover
        pass


class LiveNetwork:
    """Duck-typed :class:`~repro.net.network.Network` over asyncio UDP."""

    def __init__(
        self,
        scheduler: AsyncioScheduler,
        host: str = "127.0.0.1",
        accountant: BandwidthAccountant | None = None,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self._scheduler = scheduler
        self._host = host
        self.accountant = accountant if accountant is not None else BandwidthAccountant()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.endpoints: dict[NodeId, Endpoint] = {}
        self._transports: dict[NodeId, "asyncio.DatagramTransport"] = {}
        self._handlers: dict[NodeId, Handler] = {}
        self._topology = _LiveTopology(self)
        self.stats = LiveNetworkStats()
        self.wire_audit = WireAudit()
        self._msg_ids = iter(range(0, 1 << 62))

    # ------------------------------------------------------------------
    # sockets
    # ------------------------------------------------------------------
    def open_endpoint(self, node_id: NodeId, port: int = 0) -> Endpoint:
        """Bind a UDP socket for ``node_id``; port 0 lets the OS pick."""
        if node_id in self._transports:
            return self.endpoints[node_id]
        loop = self._scheduler.loop
        transport, _ = loop.run_until_complete(
            loop.create_datagram_endpoint(
                lambda: _NodePort(self, node_id),
                local_addr=(self._host, port),
            )
        )
        sock_host, sock_port = transport.get_extra_info("sockname")[:2]
        endpoint = Endpoint(sock_host, sock_port)
        self.endpoints[node_id] = endpoint
        self._transports[node_id] = transport
        return endpoint

    def close_endpoint(self, node_id: NodeId) -> None:
        transport = self._transports.pop(node_id, None)
        if transport is not None:
            transport.close()
        self.endpoints.pop(node_id, None)
        self._handlers.pop(node_id, None)

    def close(self) -> None:
        for node_id in list(self._transports):
            self.close_endpoint(node_id)

    # ------------------------------------------------------------------
    # fabric surface consumed by the protocol stack
    # ------------------------------------------------------------------
    @property
    def topology(self) -> _LiveTopology:
        return self._topology

    def attach(self, node_id: NodeId, handler: Handler) -> None:
        if node_id not in self._transports:
            raise ValueError(f"node {node_id} has no open endpoint")
        self._handlers[node_id] = handler

    def detach(self, node_id: NodeId) -> None:
        self._handlers.pop(node_id, None)

    def is_attached(self, node_id: NodeId) -> bool:
        return node_id in self._handlers

    def send(
        self,
        src_node: NodeId,
        dst: Endpoint,
        kind: str,
        payload: object,
        size_bytes: int,
        protocol: Protocol = Protocol.UDP,
        category: str = "other",
    ) -> None:
        """Encode one protocol message and put it on the wire.

        Fire-and-forget, like the sim fabric: a send from a node whose
        socket is gone is dropped silently.
        """
        transport = self._transports.get(src_node)
        if transport is None or transport.is_closing():
            self.stats.filtered += 1
            return
        frame = wire.encode_message(kind, payload)
        self.wire_audit.record(kind, size_bytes, len(frame))
        self.stats.sent += 1
        self.accountant.record(src_node, -1, len(frame), category)
        tel = self.telemetry
        if tel.enabled:
            tel.counter("net.msgs_sent", node=src_node, layer="net").inc()
            tel.counter("net.up_bytes", node=src_node, layer="net").inc(len(frame))
            tel.counter("net.kind_msgs", kind=kind, layer="net").inc()
        transport.sendto(frame, (dst.host, dst.port))

    # ------------------------------------------------------------------
    def _on_datagram(self, node_id: NodeId, data: bytes, addr: tuple[str, int]) -> None:
        try:
            decoded = wire.decode_message(data)
        except wire.WireDecodeError:
            self.stats.rejected += 1
            if self.telemetry.enabled:
                self.telemetry.counter("net.wire_rejected", layer="net").inc()
            return
        handler = self._handlers.get(node_id)
        if handler is None:
            self.stats.no_handler += 1
            return
        message = Message(
            src=Endpoint(addr[0], addr[1]),
            dst=self.endpoints[node_id],
            kind=decoded.kind,
            payload=decoded.payload,
            size_bytes=len(data),
            protocol=Protocol.UDP,
            msg_id=next(self._msg_ids),
        )
        self.stats.delivered += 1
        self.accountant.record(-1, node_id, len(data), wire.category_for(decoded.kind))
        if self.telemetry.enabled:
            self.telemetry.counter("net.msgs_delivered", node=node_id, layer="net").inc()
            self.telemetry.counter("net.down_bytes", node=node_id, layer="net").inc(
                len(data)
            )
        handler(message)


class LiveRuntime:
    """One OS process hosting unmodified WhisperNode stacks on real sockets."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        seed: int = 0,
        provider: str = "real",
        key_bits: int = 512,
        whisper: WhisperConfig | None = None,
        telemetry_enabled: bool = False,
    ) -> None:
        self.scheduler = AsyncioScheduler()
        self.telemetry = Telemetry(
            clock=lambda: self.scheduler.now, enabled=telemetry_enabled
        )
        self.accountant = BandwidthAccountant()
        self.network = LiveNetwork(
            self.scheduler, host, accountant=self.accountant, telemetry=self.telemetry
        )
        self.registry = RngRegistry(seed)
        # Cost accounting still records what each operation *would* cost
        # under the paper's model; live runs additionally pay the real CPU
        # time, so nothing sleeps on the model's behalf.
        self.cpu = CpuAccountant(CostModel(), rng=None)
        self.provider = self._make_provider(provider, key_bits)
        self.whisper = whisper if whisper is not None else WhisperConfig()
        self.nodes: dict[NodeId, WhisperNode] = {}

    def _make_provider(self, provider: str, key_bits: int) -> CryptoProvider:
        rng = self.registry.stream("crypto")
        if provider == "sim":
            return SimCryptoProvider(rng, self.cpu)
        if provider == "real":
            return RealCryptoProvider(rng, self.cpu, key_bits=key_bits)
        raise ValueError(f"unknown provider: {provider!r}")

    # ------------------------------------------------------------------
    def add_node(
        self,
        node_id: NodeId,
        nat_type: NatType = NatType.OPEN,
        port: int = 0,
    ) -> WhisperNode:
        """Bind a socket and assemble the full protocol stack for one node."""
        if node_id in self.nodes:
            raise ValueError(f"node {node_id} already hosted here")
        self.network.open_endpoint(node_id, port)
        node = WhisperNode(
            node_id=node_id,
            nat_type=nat_type,
            sim=self.scheduler,  # duck-typed Clock
            network=self.network,  # duck-typed fabric
            provider=self.provider,
            rng=self.registry.fork(f"node-{node_id}").stream("main"),
            config=self.whisper,
            telemetry=self.telemetry,
        )
        self.nodes[node_id] = node
        return node

    def descriptor(self, node_id: NodeId) -> NodeDescriptor:
        """The hosted node's descriptor, shareable with other processes."""
        return self.nodes[node_id].cm.descriptor()

    @staticmethod
    def remote_descriptor(node_id: NodeId, host: str, port: int) -> NodeDescriptor:
        """Descriptor for a public node hosted by *another* process."""
        return NodeDescriptor(
            node_id=node_id,
            kind=NodeKind.PUBLIC,
            nat_type=NatType.OPEN,
            public_endpoint=Endpoint(host, port),
        )

    def start(self, introducers: list[NodeDescriptor]) -> None:
        for node in self.nodes.values():
            own = [d for d in introducers if d.node_id != node.node_id]
            node.start(own)

    # ------------------------------------------------------------------
    def run_for(self, seconds: float) -> None:
        self.scheduler.run_for(seconds)

    def run_until(self, predicate: Callable[[], bool], timeout: float) -> bool:
        return self.scheduler.run_until(predicate, timeout)

    def close(self) -> None:
        for node in self.nodes.values():
            if node.alive:
                node.stop()
        self.network.close()
        # Give transports a loop tick to tear down cleanly, then close.
        try:
            self.scheduler.run_for(0)
        except Exception:  # pragma: no cover - loop already closed
            pass
        self.scheduler.close()
