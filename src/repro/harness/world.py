"""Experiment harness: builds and drives whole WHISPER deployments.

A :class:`World` assembles the simulator, NAT topology, network fabric,
crypto provider and a population of :class:`WhisperNode` — the equivalent of
the paper's SPLAY deployment scripts.  It supports the two testbed profiles
(cluster / PlanetLab), exact N:P ratios, node arrival/departure for churn
experiments, and snapshots for the overlay metrics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..core.node import WhisperConfig, WhisperNode
from ..crypto.costmodel import CostModel, CpuAccountant
from ..crypto.provider import CryptoProvider, RealCryptoProvider, SimCryptoProvider
from ..nat.topology import NatTopology
from ..nat.traversal import NodeDescriptor
from ..nat.types import EMULATED_TYPES, NatType
from ..net.address import NodeId, NodeKind
from ..net.latency import (
    ClusterLatencyModel,
    FixedLatencyModel,
    LatencyModel,
    PlanetLabLatencyModel,
)
from ..net.network import Network
from ..metrics.graph import ViewGraph
from ..sim.engine import Simulator
from ..sim.rng import RngRegistry
from ..telemetry import Telemetry

__all__ = ["WorldConfig", "World"]


@dataclass(frozen=True)
class WorldConfig:
    """Deployment profile.

    ``latency`` is one of ``"cluster"``, ``"planetlab"``, ``"fixed"``;
    ``provider`` one of ``"sim"`` (fast envelopes, for 1,000-node runs) or
    ``"real"`` (actual RSA/AES).  ``natted_fraction`` defaults to the
    paper's 70%, split evenly between the four emulated NAT types.
    """

    seed: int = 42
    latency: str = "cluster"
    provider: str = "sim"
    real_key_bits: int = 512
    real_use_aes: bool = True  # False swaps in the fast keyed stream cipher
    natted_fraction: float = 0.7
    exact_ratio: bool = True  # enforce the N:P ratio exactly, not in expectation
    introducer_count: int = 5
    whisper: WhisperConfig = field(default_factory=WhisperConfig)
    telemetry_enabled: bool = False
    trace_enabled: bool = False  # legacy alias; either flag turns telemetry on
    cost_model: CostModel = field(default_factory=CostModel)
    wire_mode: str = "off"  # "off" | "verify" | "measured"; see Network.set_wire_mode


class World:
    """A running deployment: nodes join/leave it, experiments measure it."""

    def __init__(self, config: WorldConfig | None = None) -> None:
        self.config = config if config is not None else WorldConfig()
        self.sim = Simulator()
        self.telemetry = Telemetry(
            clock=lambda: self.sim.now,
            enabled=self.config.telemetry_enabled or self.config.trace_enabled,
        )
        self.sim.bind_telemetry(self.telemetry)
        self.registry = RngRegistry(self.config.seed)
        self.topology = NatTopology(
            self.registry.stream("nat"), natted_fraction=self.config.natted_fraction
        )
        self.network = Network(
            self.sim, self.topology, self._make_latency(),
            telemetry=self.telemetry,
            wire_mode=self.config.wire_mode,
        )
        self.accountant = CpuAccountant(
            self.config.cost_model, rng=self.registry.stream("cpu")
        )
        self.accountant.bind_telemetry(self.telemetry)
        self.provider = self._make_provider()
        self.nodes: dict[NodeId, WhisperNode] = {}
        self._ids = itertools.count(1)
        self._nat_cycle = itertools.cycle(EMULATED_TYPES)
        self._introducers: list[NodeDescriptor] = []

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def _make_latency(self) -> LatencyModel:
        rng = self.registry.stream("latency")
        if self.config.latency == "cluster":
            return ClusterLatencyModel(rng)
        if self.config.latency == "planetlab":
            return PlanetLabLatencyModel(rng)
        if self.config.latency == "fixed":
            return FixedLatencyModel(0.01)
        raise ValueError(f"unknown latency profile: {self.config.latency!r}")

    def _make_provider(self) -> CryptoProvider:
        rng = self.registry.stream("crypto")
        if self.config.provider == "sim":
            return SimCryptoProvider(rng, self.accountant)
        if self.config.provider == "real":
            return RealCryptoProvider(
                rng, self.accountant,
                key_bits=self.config.real_key_bits,
                use_aes=self.config.real_use_aes,
            )
        raise ValueError(f"unknown provider: {self.config.provider!r}")

    # ------------------------------------------------------------------
    # population management
    # ------------------------------------------------------------------
    def _draw_nat_type(self) -> NatType:
        if self.registry.stream("natdraw").random() < self.config.natted_fraction:
            return next(self._nat_cycle)
        return NatType.OPEN

    def _exact_nat_plan(self, count: int) -> list[NatType]:
        """Exactly ``natted_fraction`` natted, evenly split across types,
        randomly interleaved so P-nodes are not clustered by id."""
        natted = round(count * self.config.natted_fraction)
        plan = [NatType.OPEN] * (count - natted)
        plan += [next(self._nat_cycle) for _ in range(natted)]
        self.registry.stream("natplan").shuffle(plan)
        return plan

    def add_node(
        self, nat_type: NatType | None = None, node_id: NodeId | None = None
    ) -> WhisperNode:
        """Create one node (not yet started).

        ``node_id`` overrides the world's own dense id sequence — a sharded
        deployment assigns *global* ids and registers each one with the
        partition that owns it, so ids (and everything derived from them:
        RNG fork names, endpoint hosts, latency keys) are identical no
        matter how the population is partitioned.
        """
        if node_id is None:
            node_id = next(self._ids)
        if nat_type is None:
            nat_type = self._draw_nat_type()
        self.topology.add_node(node_id, nat_type)
        node = WhisperNode(
            node_id=node_id,
            nat_type=nat_type,
            sim=self.sim,
            network=self.network,
            provider=self.provider,
            rng=self.registry.fork(f"node-{node_id}").stream("main"),
            config=self.config.whisper,
            telemetry=self.telemetry,
        )
        self.nodes[node_id] = node
        return node

    def populate(self, count: int) -> list[WhisperNode]:
        """Create ``count`` nodes honouring the configured N:P ratio."""
        if self.config.exact_ratio:
            plan = self._exact_nat_plan(count)
        else:
            plan = [None] * count  # type: ignore[list-item]
        return [self.add_node(nat_type) for nat_type in plan]

    def introducers(self) -> list[NodeDescriptor]:
        """Bootstrap entry points: a self-refreshing set of live P-nodes.

        Departed introducers are dropped and replaced, so joiners arriving
        during churn still bootstrap against live entry points (real
        deployments rotate their rendezvous servers the same way).
        """
        # Killed nodes are removed from the registry; nodes created but not
        # yet started still count (start_all resolves introducers up front).
        present = set(self.nodes)
        self._introducers = [
            d for d in self._introducers if d.node_id in present
        ]
        if len(self._introducers) < self.config.introducer_count:
            have = {d.node_id for d in self._introducers}
            for node in self.nodes.values():
                if (
                    node.cm.kind is NodeKind.PUBLIC
                    and node.node_id not in have
                ):
                    self._introducers.append(node.descriptor())
                    if len(self._introducers) >= self.config.introducer_count:
                        break
        if not self._introducers:
            raise RuntimeError("no public nodes available as introducers")
        return list(self._introducers)

    def start_all(self) -> None:
        # Resolve the introducer set once: it is stable for the duration of
        # a bulk start (the first call fills it to introducer_count and no
        # node departs mid-loop), and introducers() walks the whole
        # population — calling it per node made start_all O(N^2), which at
        # 100k nodes dominated world construction.  Each node still gets
        # its own list copy, exactly what introducers() handed out before.
        introducers: list[NodeDescriptor] | None = None
        for node in self.nodes.values():
            if not node.alive:
                if introducers is None:
                    introducers = self.introducers()
                node.start(list(introducers))

    def spawn_started(self, nat_type: NatType | None = None) -> WhisperNode:
        """Add a node and start it immediately (churn arrivals).

        The very first node of an empty world is forced public: every
        deployment needs at least one reachable bootstrap point.
        """
        if nat_type is None and not any(
            n.alive and n.cm.kind is NodeKind.PUBLIC for n in self.nodes.values()
        ):
            nat_type = NatType.OPEN
        node = self.add_node(nat_type)
        try:
            introducers = self.introducers()
        except RuntimeError:
            # We *are* the first (public) node: bootstrap against ourselves.
            introducers = [node.descriptor()]
        node.start(introducers)
        return node

    def kill_node(self, node_id: NodeId) -> None:
        """Abrupt departure: the node vanishes, NAT state evaporates."""
        node = self.nodes.pop(node_id, None)
        if node is None:
            return
        node.kill()
        self.topology.remove_node(node_id)

    def alive_nodes(self) -> list[WhisperNode]:
        return [n for n in self.nodes.values() if n.alive]

    def public_nodes(self) -> list[WhisperNode]:
        return [n for n in self.alive_nodes() if n.cm.kind is NodeKind.PUBLIC]

    def natted_nodes(self) -> list[WhisperNode]:
        return [n for n in self.alive_nodes() if n.cm.kind is NodeKind.NATTED]

    # ------------------------------------------------------------------
    # execution & measurement
    # ------------------------------------------------------------------
    def run(self, duration: float) -> None:
        self.sim.run(until=self.sim.now + duration)

    def view_graph(self) -> ViewGraph:
        """Snapshot of the system-wide PSS overlay (for Fig. 5 metrics)."""
        return ViewGraph(
            {
                node.node_id: node.pss.view.node_ids()
                for node in self.alive_nodes()
            }
        )

    def private_view_graph(self, group: str) -> ViewGraph:
        """Snapshot of one group's PPSS overlay."""
        views = {}
        for node in self.alive_nodes():
            ppss = node.groups.get(group)
            if ppss is not None:
                views[node.node_id] = [c.node_id for c in ppss.view_contacts()]
        return ViewGraph(views)
