"""Experiment harness: world building, churn driving, report rendering."""

from .invariants import InvariantViolation, check_invariants
from .report import CdfSummary, Report, Table
from .world import World, WorldConfig

__all__ = [
    "CdfSummary",
    "InvariantViolation",
    "Report",
    "Table",
    "World",
    "WorldConfig",
    "check_invariants",
]
