"""World-wide invariant checking.

``check_invariants(world)`` sweeps every live node and verifies the
structural properties the protocol stack must maintain at all times.  Tests
call it after integration scenarios; long-running experiments can call it
periodically to catch protocol-state corruption early.

Checked invariants:

- PSS views: within capacity, no self-entry, no dead entries older than the
  failure-detection horizon is *not* checked (liveness is eventual), but
  the Π P-node floor must hold whenever enough P-nodes exist.
- Connection backlog: within capacity, no self, every entry carries a key,
  the Π P-node floor (when the PSS view can supply P-nodes).
- Private views: only ever contain members of the same group (verified via
  passports having been required), never the node itself, within capacity.
- Group keyrings: members of the same group share a key-history prefix.
"""

from __future__ import annotations

from ..net.address import NodeKind
from .world import World

__all__ = ["InvariantViolation", "check_invariants"]


class InvariantViolation(AssertionError):
    """A structural protocol invariant was broken."""


def _ensure(condition: bool, message: str) -> None:
    if not condition:
        raise InvariantViolation(message)


def check_invariants(world: World) -> int:
    """Verify all invariants; returns the number of nodes checked."""
    checked = 0
    public_population = len(world.public_nodes())
    group_keys: dict[str, dict[str, int]] = {}
    for node in world.alive_nodes():
        checked += 1
        prefix = f"node {node.node_id}:"
        view = node.pss.view
        _ensure(len(view) <= view.capacity, f"{prefix} PSS view over capacity")
        _ensure(node.node_id not in view, f"{prefix} PSS view contains self")
        pi = node.config.pi
        if pi and public_population >= pi and len(view) >= view.capacity:
            _ensure(
                view.count_public() >= pi,
                f"{prefix} PSS view violates the Pi={pi} P-node floor "
                f"({view.count_public()} present)",
            )
        cb = node.backlog
        _ensure(len(cb) <= cb.capacity, f"{prefix} CB over capacity")
        _ensure(node.node_id not in cb, f"{prefix} CB contains self")
        for entry in cb.entries():
            _ensure(entry.key is not None, f"{prefix} CB entry without a key")
        for gateway in cb.gateways_for_self():
            _ensure(
                gateway.is_public,
                f"{prefix} advertises a non-public gateway",
            )
        for name, ppss in node.groups.items():
            gprefix = f"{prefix} group {name!r}:"
            _ensure(
                ppss.view_size() <= ppss.config.view_size,
                f"{gprefix} private view over capacity",
            )
            _ensure(
                all(c.node_id != node.node_id for c in ppss.view_contacts()),
                f"{gprefix} private view contains self",
            )
            for contact in ppss.view_contacts():
                if not contact.is_public:
                    _ensure(
                        all(g.is_public for g in contact.gateways),
                        f"{gprefix} member entry with non-public gateway",
                    )
            if ppss.keyring.history:
                fingerprints = tuple(k.fingerprint for k in ppss.keyring.history)
                seen = group_keys.setdefault(name, {})
                for depth, fp in enumerate(fingerprints):
                    previous = seen.setdefault(fp, depth)
                    _ensure(
                        previous == depth,
                        f"{gprefix} key history diverges at depth {depth}",
                    )
    return checked
