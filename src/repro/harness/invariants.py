"""World-wide invariant checking.

``check_invariants(world)`` sweeps every live node and verifies the
structural properties the protocol stack must maintain at all times.  Tests
call it after integration scenarios; long-running experiments can call it
periodically to catch protocol-state corruption early.

Checked invariants:

- PSS views: within capacity, no self-entry, no dead entries older than the
  failure-detection horizon is *not* checked (liveness is eventual), but
  the Π P-node floor must hold whenever enough P-nodes exist.
- Connection backlog: within capacity, no self, every entry carries a key,
  the Π P-node floor (when the PSS view can supply P-nodes).
- Private views: only ever contain members of the same group (verified via
  passports having been required), never the node itself, within capacity.
- Group keyrings: members of the same group share a key-history prefix.

Recovery assertions (``check_private_view_recovery``,
``check_exchange_recovery``) close the fault-injection loop: after a
scripted partition/stall heals, they verify the stack actually *recovered*
— private views re-converged onto live members and end-to-end exchange
success returned to its pre-fault level — rather than merely not crashing.
"""

from __future__ import annotations

from ..core.ppss import MemberState
from ..net.address import NodeKind
from .world import World

__all__ = [
    "InvariantViolation",
    "RecoveryViolation",
    "check_invariants",
    "check_private_view_recovery",
    "check_exchange_recovery",
    "check_post_heal_success",
    "check_stream_recovery",
    "check_attack_mitigation",
]


class InvariantViolation(AssertionError):
    """A structural protocol invariant was broken."""


class RecoveryViolation(AssertionError):
    """The stack failed to recover after an injected fault healed."""


def _ensure(condition: bool, message: str) -> None:
    if not condition:
        raise InvariantViolation(message)


def _ensure_recovered(condition: bool, message: str) -> None:
    if not condition:
        raise RecoveryViolation(message)


def check_invariants(world: World) -> int:
    """Verify all invariants; returns the number of nodes checked."""
    checked = 0
    public_population = len(world.public_nodes())
    group_keys: dict[str, dict[str, int]] = {}
    for node in world.alive_nodes():
        checked += 1
        prefix = f"node {node.node_id}:"
        view = node.pss.view
        _ensure(len(view) <= view.capacity, f"{prefix} PSS view over capacity")
        _ensure(node.node_id not in view, f"{prefix} PSS view contains self")
        pi = node.config.pi
        if pi and public_population >= pi and len(view) >= view.capacity:
            _ensure(
                view.count_public() >= pi,
                f"{prefix} PSS view violates the Pi={pi} P-node floor "
                f"({view.count_public()} present)",
            )
        cb = node.backlog
        _ensure(len(cb) <= cb.capacity, f"{prefix} CB over capacity")
        _ensure(node.node_id not in cb, f"{prefix} CB contains self")
        for entry in cb.entries():
            _ensure(entry.key is not None, f"{prefix} CB entry without a key")
        for gateway in cb.gateways_for_self():
            _ensure(
                gateway.is_public,
                f"{prefix} advertises a non-public gateway",
            )
        for name, ppss in node.groups.items():
            gprefix = f"{prefix} group {name!r}:"
            _ensure(
                ppss.view_size() <= ppss.config.view_size,
                f"{gprefix} private view over capacity",
            )
            _ensure(
                all(c.node_id != node.node_id for c in ppss.view_contacts()),
                f"{gprefix} private view contains self",
            )
            for contact in ppss.view_contacts():
                if not contact.is_public:
                    _ensure(
                        all(g.is_public for g in contact.gateways),
                        f"{gprefix} member entry with non-public gateway",
                    )
            if ppss.keyring.history:
                fingerprints = tuple(k.fingerprint for k in ppss.keyring.history)
                seen = group_keys.setdefault(name, {})
                for depth, fp in enumerate(fingerprints):
                    previous = seen.setdefault(fp, depth)
                    _ensure(
                        previous == depth,
                        f"{gprefix} key history diverges at depth {depth}",
                    )
    return checked


def check_private_view_recovery(
    world: World,
    group: str,
    min_populated: float = 0.9,
    min_live_edges: float = 0.5,
) -> int:
    """Verify a group's private views re-converged after a healed fault.

    Two properties must hold once the gossip has had a few cycles to run
    post-heal:

    - at least ``min_populated`` of the group's live members hold a private
      view with at least one *live* member in it (a member with an empty or
      all-dead view cannot initiate exchanges — it would be isolated even
      though the network works again);
    - across all views, at least ``min_live_edges`` of the entries point at
      live members (views still dominated by departed/partitioned-away
      members mean the eviction-and-remerge loop is not making progress).

    Returns the number of members examined.  Raises
    :class:`RecoveryViolation` otherwise.
    """
    members = [
        node
        for node in world.alive_nodes()
        if group in node.groups
        and node.groups[group].state is MemberState.MEMBER
    ]
    if not members:
        raise RecoveryViolation(f"group {group!r} has no live members left")
    alive_ids = {node.node_id for node in members}
    populated = 0
    live_edges = 0
    total_edges = 0
    for node in members:
        contacts = node.groups[group].view_contacts()
        live = sum(1 for c in contacts if c.node_id in alive_ids)
        total_edges += len(contacts)
        live_edges += live
        if live > 0:
            populated += 1
    _ensure_recovered(
        populated >= min_populated * len(members),
        f"group {group!r}: only {populated}/{len(members)} members hold a "
        f"live private-view entry (need {min_populated:.0%})",
    )
    if total_edges:
        _ensure_recovered(
            live_edges >= min_live_edges * total_edges,
            f"group {group!r}: only {live_edges}/{total_edges} private-view "
            f"entries point at live members (need {min_live_edges:.0%})",
        )
    return len(members)


def check_stream_recovery(
    before_ratio: float,
    during_ratio: float,
    after_ratio: float,
    tolerance: float = 0.1,
) -> None:
    """Verify application streams recovered after an injected fault healed.

    The workload counterpart of :func:`check_exchange_recovery`, measured on
    *delivered application packets* rather than gossip exchanges: with the
    fault active the delivery ratio legitimately craters, but in the
    post-heal window it must climb back to within ``tolerance`` of the
    pre-fault level.  The ``during`` ratio is required not to *exceed* the
    recovered one — if delivery during the fault looks no worse than after
    it, the fault never actually bit and the recovery claim is vacuous.
    Raises :class:`RecoveryViolation` otherwise.
    """
    _ensure_recovered(
        after_ratio >= before_ratio - tolerance,
        f"stream delivery did not recover: {after_ratio:.1%} after healing "
        f"vs {before_ratio:.1%} baseline (tolerance {tolerance:.0%})",
    )
    _ensure_recovered(
        during_ratio <= after_ratio,
        f"fault window shows no impact: {during_ratio:.1%} during vs "
        f"{after_ratio:.1%} after — the injected fault did not bite",
    )


def check_post_heal_success(
    rate: float,
    floor: float,
    what: str = "route success",
) -> None:
    """Verify a post-heal success ratio clears an absolute floor.

    The gate the ``soak`` experiment (and its CI job) runs on: unlike
    :func:`check_exchange_recovery`, which compares against the run's own
    pre-fault baseline, this asserts an *absolute* service level — after
    the fault schedule heals, at least ``floor`` of attempted operations
    must succeed, no matter how good the baseline was.  Raises
    :class:`RecoveryViolation` otherwise.
    """
    _ensure_recovered(
        rate >= floor,
        f"post-heal {what} {rate:.1%} is below the {floor:.1%} floor",
    )


def check_attack_mitigation(
    baseline_rate: float,
    mitigated_rate: float,
    what: str = "attack success",
    margin: float = 0.0,
) -> None:
    """Verify a countermeasure actually reduced an attack's success rate.

    The gate the ``anonymity`` experiment (and its CI job) runs on: the
    attack's success under the countermeasure must come in below the
    baseline by at least ``margin``.  A baseline of zero fails too — if
    the attack never succeeded without the countermeasure, the mitigation
    claim is vacuous and the scenario needs rescaling, not a green check.
    Raises :class:`RecoveryViolation` otherwise.
    """
    _ensure_recovered(
        baseline_rate > 0.0,
        f"{what}: the baseline attack never succeeded — the mitigation "
        "claim is vacuous at this scale",
    )
    _ensure_recovered(
        mitigated_rate <= baseline_rate - margin,
        f"{what}: {mitigated_rate:.1%} under the countermeasure vs "
        f"{baseline_rate:.1%} baseline (required drop: {margin:.1%})",
    )


def check_exchange_recovery(
    baseline_rate: float,
    recovered_rate: float,
    tolerance: float = 0.05,
) -> None:
    """Verify end-to-end exchange success returned to its pre-fault level.

    ``baseline_rate`` is the success fraction measured before the fault,
    ``recovered_rate`` the fraction in a window after healing; recovery
    means the latter is within ``tolerance`` (5 points by default) of the
    former.  Raises :class:`RecoveryViolation` otherwise.
    """
    _ensure_recovered(
        recovered_rate >= baseline_rate - tolerance,
        f"exchange success did not recover: {recovered_rate:.1%} after "
        f"healing vs {baseline_rate:.1%} baseline "
        f"(tolerance {tolerance:.0%})",
    )
