"""Deterministic multi-shard worlds: the simulation core behind 100k nodes.

A :class:`ShardedWorld` splits one logical deployment into ``partitions``
independent :class:`~repro.harness.world.World` instances and advances them
in lock-stepped cycle windows.  The design goal is the same contract
``repro.parallel.run_sweep`` pins for ``--workers``: the *partition count*
is part of the world's identity (like the seed), while the ``shards``
execution-lane parameter of :meth:`run_windows` only regroups which
partitions run back-to-back — telemetry and traces are byte-identical at
any ``shards`` value because partitions share nothing inside a window.

How the pieces fit:

- **Partitioning** — global node ids are assigned densely (1..N) exactly
  as a single world would; each id is mapped to its home partition by a
  blake2b hash (:func:`~repro.parallel.executor.derive_seed`) of the
  master seed and the id.  The NAT plan is drawn globally from a derived
  stream, so a node's NAT type, endpoints and RNG fork names never depend
  on the partition layout being executed.
- **Per-partition state** — each partition owns a full ``World`` (its own
  ``Simulator``, NAT topology, fabric, latency model, crypto provider and
  telemetry), seeded ``derive_seed(master, "shard", p)``.  Crypto
  envelopes are self-contained (fingerprint + MAC), so payloads sealed in
  one partition open in another.
- **Cross-shard traffic** — each partition's ``Network`` gets a foreign
  router (:meth:`Network.set_foreign_router`): a send whose destination
  host is not locally owned is handed over *after* upload accounting and
  the latency draw, preserving the sender-side pipeline byte-for-byte.
  The router queues ``(arrival_time, priority, seq, src)``-keyed entries
  in the partition's outbox; ``seq`` is a per-partition counter and
  ``src`` the (globally unique) sender id, so the key totally orders the
  merged traffic of a window.
- **Barrier exchange** — at each window boundary the outboxes are
  collected in partition order, merged, sorted by the canonical key and
  injected into their destination simulators at
  ``max(arrival_time, window_end)``.  Quantizing cross-shard arrivals to
  window boundaries is the deliberate fidelity trade: intra-window
  cross-shard latency is rounded up to the boundary, which is why
  experiments choose windows at the protocol cycle period where delivery
  at "next cycle edge" matches gossip semantics.  Injection order is the
  sorted key order, so destination event sequence numbers — and therefore
  every downstream tie-break — are identical regardless of lane grouping.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import random
import resource
import time as _time
from dataclasses import replace
from functools import partial

from ..nat.types import EMULATED_TYPES, NatType
from ..net.address import NodeId, NodeKind
from ..net.message import Message
from ..parallel.executor import derive_seed
from .world import World, WorldConfig

__all__ = ["ShardedWorld"]


def _rss_kb() -> int:
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


class ShardedWorld:
    """``partitions`` lock-stepped Worlds presenting one logical deployment."""

    def __init__(self, config: WorldConfig | None = None, partitions: int = 8) -> None:
        if partitions < 1:
            raise ValueError(f"need at least one partition, got {partitions}")
        self.config = config if config is not None else WorldConfig()
        self.partitions = partitions
        self._master_seed = self.config.seed
        self.worlds: list[World] = [
            World(replace(self.config, seed=derive_seed(self.config.seed, "shard", p)))
            for p in range(partitions)
        ]
        self._outboxes: list[list[tuple]] = [[] for _ in range(partitions)]
        self._outbox_seq = [itertools.count() for _ in range(partitions)]
        self._node_partition: dict[NodeId, int] = {}
        self._ids = itertools.count(1)  # global node ids, dense like World's
        self._nat_cycle = itertools.cycle(EMULATED_TYPES)
        self._introducers: list | None = None
        self.now = 0.0
        # Instrumentation for the perf probe's timing half: where shard
        # wall-time goes (per-partition compute vs barrier exchange) and
        # process peak RSS observed after each partition's turn.
        self.compute_s: list[float] = [0.0] * partitions
        self.partition_rss_kb: list[int] = [0] * partitions
        self.barrier_s = 0.0
        self.barrier_windows = 0
        self.cross_shard_msgs = 0
        for p, world in enumerate(self.worlds):
            world.network.set_foreign_router(self._make_router(p))

    # ------------------------------------------------------------------
    # partitioning
    # ------------------------------------------------------------------
    def partition_of(self, node_id: NodeId) -> int:
        """Home partition of a global node id (stable under any lane count)."""
        home = self._node_partition.get(node_id)
        if home is None:
            home = derive_seed(self._master_seed, "shard-of", node_id) % self.partitions
        return home

    def world_of(self, node_id: NodeId) -> World:
        return self.worlds[self.partition_of(node_id)]

    def _global_nat_plan(self, count: int) -> list[NatType]:
        """The single-world NAT plan semantics, drawn from a derived stream.

        Shares :meth:`World._exact_nat_plan`'s shape (exact natted count,
        even type split, shuffled interleave) but uses its own
        ``derive_seed`` stream so the plan is a function of the master
        seed alone — partition worlds never consume it from their RNGs.
        """
        natted = round(count * self.config.natted_fraction)
        plan: list[NatType] = [NatType.OPEN] * (count - natted)
        plan += [next(self._nat_cycle) for _ in range(natted)]
        random.Random(derive_seed(self._master_seed, "natplan")).shuffle(plan)
        return plan

    def populate(self, count: int) -> None:
        """Create ``count`` nodes with global ids, homed by hash."""
        if self.config.exact_ratio:
            plan = self._global_nat_plan(count)
        else:
            plan = [self._draw_nat_type(i + 1) for i in range(count)]
        for nat_type in plan:
            node_id = next(self._ids)
            home = derive_seed(self._master_seed, "shard-of", node_id) % self.partitions
            self._node_partition[node_id] = home
            self.worlds[home].add_node(nat_type, node_id=node_id)
        # Every partition's fabric addresses the whole deployment's hosts,
        # so its owner-hint working set is the global population, not the
        # local one attach() derives from.
        total = len(self._node_partition)
        for world in self.worlds:
            world.network.reserve_owner_hints(total)

    def _draw_nat_type(self, node_id: NodeId) -> NatType:
        rng = random.Random(derive_seed(self._master_seed, "nattype", node_id))
        if rng.random() < self.config.natted_fraction:
            return rng.choice(EMULATED_TYPES)
        return NatType.OPEN

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def introducers(self) -> list:
        """Global bootstrap set: the first public nodes in id order."""
        if self._introducers:
            return list(self._introducers)
        introducers = []
        for node_id, home in self._node_partition.items():  # insertion = id order
            node = self.worlds[home].nodes.get(node_id)
            if node is not None and node.cm.kind is NodeKind.PUBLIC:
                introducers.append(node.descriptor())
                if len(introducers) >= self.config.introducer_count:
                    break
        if not introducers:
            raise RuntimeError("no public nodes available as introducers")
        self._introducers = introducers
        return list(introducers)

    def start_all(self) -> None:
        introducers = self.introducers()
        for world in self.worlds:
            for node in world.nodes.values():
                if not node.alive:
                    node.start(list(introducers))

    # ------------------------------------------------------------------
    # cross-shard routing
    # ------------------------------------------------------------------
    def _make_router(self, home: int):
        world = self.worlds[home]
        sim = world.sim
        network = world.network
        outbox = self._outboxes[home]
        next_seq = self._outbox_seq[home].__next__
        node_partition = self._node_partition
        master = self._master_seed
        partitions = self.partitions

        def route(src_node: NodeId, message: Message, category: str, transit: float) -> None:
            host = message.dst.host
            try:
                node_id = int(host.split("-", 1)[1])
            except (IndexError, ValueError):
                node_id = -1
            if node_id >= 0:
                target = node_partition.get(node_id)
                if target is None:
                    target = derive_seed(master, "shard-of", node_id) % partitions
            else:
                target = home
            if target == home:
                # A host this partition owns (or owned): schedule the normal
                # local delivery so ingress filtering and drop accounting
                # treat it exactly like a single world treats a departed
                # endpoint.
                sim.schedule(
                    transit, partial(network._deliver, src_node, message, category)
                )
                return
            outbox.append(
                (sim.now + transit, 0, next_seq(), src_node, target, message, category)
            )

        return route

    def _exchange(self, window_end: float) -> int:
        """Barrier: merge outboxes, sort canonically, inject at the boundary."""
        pending: list[tuple] = []
        for box in self._outboxes:  # partition order, then a total-order sort
            if box:
                pending.extend(box)
                box.clear()  # in place: the routers hold the list objects
        if not pending:
            return 0
        # (arrival_time, priority, seq, src): seq is per-partition but src
        # is globally unique and one sender lives in exactly one partition,
        # so the 4-tuple totally orders the merged window.
        pending.sort(key=lambda entry: entry[:4])
        for arrival, priority, _seq, src, target, message, category in pending:
            world = self.worlds[target]
            at = arrival if arrival > window_end else window_end
            world.sim.schedule_at(
                at,
                partial(world.network._deliver, src, message, category),
                priority=priority,
            )
        self.cross_shard_msgs += len(pending)
        return len(pending)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_windows(self, window_s: float, windows: int, shards: int = 1) -> None:
        """Advance every partition through ``windows`` barrier windows.

        ``shards`` groups partitions into execution lanes (lane ``l`` runs
        partitions ``l, l+shards, ...``).  It reorders *which partition
        computes first* and nothing else — results are byte-identical for
        every value, which the shard-equivalence tests assert.
        """
        if shards < 1:
            raise ValueError(f"need at least one lane, got {shards}")
        lanes = min(shards, self.partitions)
        order = [
            p for lane in range(lanes) for p in range(lane, self.partitions, lanes)
        ]
        for _ in range(windows):
            window_end = self.now + window_s
            for p in order:
                started = _time.perf_counter()
                self.worlds[p].sim.run(until=window_end)
                self.compute_s[p] += _time.perf_counter() - started
                rss = _rss_kb()
                if rss > self.partition_rss_kb[p]:
                    self.partition_rss_kb[p] = rss
            started = _time.perf_counter()
            self._exchange(window_end)
            self.barrier_s += _time.perf_counter() - started
            self.barrier_windows += 1
            self.now = window_end

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return sum(len(world.nodes) for world in self.worlds)

    @property
    def events_processed(self) -> int:
        return sum(world.sim.events_processed for world in self.worlds)

    def net_totals(self) -> dict[str, int]:
        totals = {"sent": 0, "delivered": 0, "lost": 0, "filtered": 0, "no_handler": 0}
        for world in self.worlds:
            stats = world.network.stats
            for key in totals:
                totals[key] += getattr(stats, key)
        return totals

    def export_jsonl(self) -> str:
        """Concatenated per-partition trace, framed by shard headers.

        Deterministic for a given (seed, partitions, window schedule) and
        invariant under the ``shards`` lane count — the CI equivalence
        check diffs this byte-for-byte across lane counts.  Each header
        embeds the partition's event count, clock and fabric totals, so
        the SHA pins per-partition behaviour even when telemetry is
        disabled (the big benches run telemetry-off); with telemetry on,
        the full per-partition counter stream follows its header.
        """
        chunks: list[str] = []
        for p, world in enumerate(self.worlds):
            stats = world.network.stats
            chunks.append(
                json.dumps(
                    {
                        "kind": "shard",
                        "partition": p,
                        "partitions": self.partitions,
                        "seed": world.config.seed,
                        "nodes": len(world.nodes),
                        "events": world.sim.events_processed,
                        "now": world.sim.now,
                        "net": {
                            "sent": stats.sent,
                            "delivered": stats.delivered,
                            "lost": stats.lost,
                            "filtered": stats.filtered,
                            "no_handler": stats.no_handler,
                        },
                    },
                    sort_keys=True,
                    separators=(",", ":"),
                )
            )
            telemetry = world.telemetry.export_jsonl().rstrip("\n")
            if telemetry:
                chunks.append(telemetry)
        return "\n".join(chunks) + "\n"

    def trace_sha(self) -> str:
        return hashlib.sha256(self.export_jsonl().encode("utf-8")).hexdigest()
