"""Plain-text rendering of experiment results (paper-style tables/figures).

Every experiment module produces a :class:`Report`: a titled collection of
tables and CDF summaries that renders to the same rows/series the paper
prints, suitable for diffing against EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..metrics.stats import percentile

__all__ = ["Table", "CdfSummary", "Report"]


@dataclass
class Table:
    """A titled table with a header row and formatted body rows."""

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title]
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


@dataclass
class CdfSummary:
    """A distribution reported at the paper's usual percentile grid."""

    title: str
    samples: list[float]
    unit: str = ""
    levels: tuple[float, ...] = (5, 25, 50, 75, 80, 90, 95, 99, 100)

    def render(self) -> str:
        if not self.samples:
            return f"{self.title}\n  (no samples)"
        lines = [f"{self.title}  (n={len(self.samples)})"]
        for level in self.levels:
            value = percentile(self.samples, level)
            lines.append(f"  p{level:<3g} {value:>12.4f} {self.unit}")
        return "\n".join(lines)


@dataclass
class Report:
    """One experiment's full output."""

    title: str
    sections: list[object] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, section: Table | CdfSummary) -> None:
        self.sections.append(section)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        parts = [f"=== {self.title} ==="]
        for section in self.sections:
            parts.append(section.render())
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts) + "\n"


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
