# Convenience targets for the WHISPER reproduction.

PYTHON ?= python

.PHONY: install test bench bench-full examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_SCALE=full $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/private_chat.py
	$(PYTHON) examples/private_dht.py
	$(PYTHON) examples/leader_failover.py
	$(PYTHON) examples/churn_resilience.py

clean:
	rm -rf .pytest_cache .hypothesis build *.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
