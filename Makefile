# Convenience targets for the WHISPER reproduction.

PYTHON ?= python
PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
export PYTHONPATH

.PHONY: install test bench bench-full load soak anonymity examples trace clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_SCALE=full $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Heavy-traffic workload scenarios (CBR, Zipf lookups, flash crowd,
# multigroup, loss burst) over the deployed PPSS/T-Chord stack.
load:
	$(PYTHON) -m repro.experiments load --seed 7

# Live-mode soak: ~100 supervised nodes on real loopback UDP through a
# scripted fault schedule, gated on post-heal route success.  Runs on a
# real clock (~30 s wall).
soak:
	$(PYTHON) -m repro.experiments soak --scale 1.0 --route-floor 0.95

# Traffic-analysis attacks (intersection, predecessor) against WCL routes
# with countermeasure ablations (cover traffic, batched mixing), gated on
# each countermeasure actually cutting its attack.
anonymity:
	$(PYTHON) -m repro.experiments anonymity --seed 7 --attack-gate

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/private_chat.py
	$(PYTHON) examples/private_dht.py
	$(PYTHON) examples/leader_failover.py
	$(PYTHON) examples/churn_resilience.py

# Run the chat example with telemetry on, export the trace, summarise it.
trace:
	REPRO_TRACE=trace.jsonl $(PYTHON) examples/private_chat.py
	$(PYTHON) -m repro.telemetry trace.jsonl

clean:
	rm -rf .pytest_cache .hypothesis build *.egg-info trace.jsonl
	find . -name __pycache__ -type d -exec rm -rf {} +
