"""Tests for the crypto provider interface (real + simulated) and cost model."""

import pickle
import random

import pytest

from repro.crypto import (
    CostModel,
    CpuAccountant,
    CryptoError,
    RealCryptoProvider,
    SimCryptoProvider,
)


@pytest.fixture(params=["real", "sim"])
def provider(request):
    rng = random.Random(7)
    if request.param == "real":
        return RealCryptoProvider(rng, key_bits=512)
    return SimCryptoProvider(rng)


class TestProviderContract:
    """Behavioural contract both providers must honour identically."""

    def test_seal_open_roundtrip(self, provider):
        pair = provider.generate_keypair()
        obj = {"next": 42, "key": b"abc", "nested": [1, 2, 3]}
        sealed = provider.seal(pair.public, obj)
        assert provider.open(pair, sealed) == obj

    def test_open_with_wrong_key_raises(self, provider):
        pair = provider.generate_keypair()
        other = provider.generate_keypair()
        sealed = provider.seal(pair.public, "secret")
        with pytest.raises(CryptoError):
            provider.open(other, sealed)

    def test_sealed_box_has_positive_size(self, provider):
        pair = provider.generate_keypair()
        sealed = provider.seal(pair.public, "payload")
        assert sealed.size_bytes > 0

    def test_payload_roundtrip(self, provider):
        key = provider.new_symmetric_key()
        obj = {"entries": list(range(20))}
        enc = provider.encrypt_payload(key, obj, size_hint=2048)
        assert provider.decrypt_payload(key, enc) == obj

    def test_payload_wrong_key_raises(self, provider):
        key = provider.new_symmetric_key()
        other = provider.new_symmetric_key()
        enc = provider.encrypt_payload(key, "body", size_hint=128)
        with pytest.raises(CryptoError):
            provider.decrypt_payload(other, enc)

    def test_envelope_never_contains_key_bytes(self, provider):
        """Regression: the sim provider once stored the raw symmetric key as
        the envelope's ``auth`` field, leaking it to anyone holding the
        envelope.  No serialization of the envelope may contain the key."""
        key = provider.new_symmetric_key()
        enc = provider.encrypt_payload(key, {"m": "hello"}, size_hint=256)
        assert enc.auth != key
        assert key not in pickle.dumps(enc)
        assert provider.decrypt_payload(key, enc) == {"m": "hello"}

    def test_sign_verify(self, provider):
        pair = provider.generate_keypair()
        signature = provider.sign(pair, ("passport", 17))
        assert provider.verify(pair.public, ("passport", 17), signature)

    def test_verify_rejects_tampered_object(self, provider):
        pair = provider.generate_keypair()
        signature = provider.sign(pair, ("passport", 17))
        assert not provider.verify(pair.public, ("passport", 18), signature)

    def test_verify_rejects_wrong_key(self, provider):
        pair = provider.generate_keypair()
        other = provider.generate_keypair()
        signature = provider.sign(pair, "obj")
        assert not provider.verify(other.public, "obj", signature)

    def test_keypairs_are_distinct(self, provider):
        a = provider.generate_keypair()
        b = provider.generate_keypair()
        assert a.public.fingerprint != b.public.fingerprint

    def test_symmetric_keys_are_random(self, provider):
        assert provider.new_symmetric_key() != provider.new_symmetric_key()


class TestRealProviderOnly:
    def test_ciphertext_does_not_contain_plaintext(self):
        provider = RealCryptoProvider(random.Random(7), key_bits=512)
        pair = provider.generate_keypair()
        secret = "the private group membership list"
        sealed = provider.seal(pair.public, secret)
        wrapped, ciphertext = sealed.blob
        assert secret.encode() not in wrapped
        assert secret.encode() not in ciphertext

    def test_fast_stream_mode_roundtrips(self):
        provider = RealCryptoProvider(random.Random(7), key_bits=512, use_aes=False)
        pair = provider.generate_keypair()
        sealed = provider.seal(pair.public, [1, 2, 3])
        assert provider.open(pair, sealed) == [1, 2, 3]

    def test_tiny_modulus_rejected(self):
        with pytest.raises(ValueError):
            RealCryptoProvider(random.Random(7), key_bits=128)


class TestCostAccounting:
    def test_operations_charge_the_acting_node(self):
        accountant = CpuAccountant()
        provider = SimCryptoProvider(random.Random(7), accountant)
        pair = provider.generate_keypair()
        sealed = provider.seal(pair.public, "x", node=5, context="wcl.request")
        provider.open(pair, sealed, node=9, context="wcl.request")
        assert accountant.node_total_ms(5, "rsa_encrypt") > 0
        assert accountant.node_total_ms(9, "rsa_decrypt") > 0
        assert accountant.node_total_ms(5, "rsa_decrypt") == 0

    def test_context_breakdown(self):
        accountant = CpuAccountant()
        provider = SimCryptoProvider(random.Random(7), accountant)
        pair = provider.generate_keypair()
        provider.seal(pair.public, "x", node=1, context="wcl.request")
        provider.seal(pair.public, "y", node=1, context="wcl.response")
        assert accountant.node_context_ms(1, "wcl.request") > 0
        assert accountant.node_context_ms(1, "wcl.response") > 0
        assert accountant.node_context_ms(1, "unused") == 0

    def test_aes_cost_scales_with_size(self):
        model = CostModel()
        assert model.aes_ms(20_480) > model.aes_ms(1_024) > 0

    def test_rsa_dwarfs_aes(self):
        """The paper's Table II: RSA cost >> AES cost for 20 KB exchanges."""
        model = CostModel()
        assert model.rsa_decrypt_ms > 100 * model.aes_ms(20_480 // 10)

    def test_op_breakdown_merges_contexts(self):
        accountant = CpuAccountant()
        accountant.rsa_decrypt(1, "a")
        accountant.rsa_decrypt(1, "b")
        breakdown = accountant.op_breakdown(1)
        assert breakdown["rsa_decrypt"].count == 2

    def test_charge_returns_seconds(self):
        accountant = CpuAccountant()
        assert accountant.charge(1, "custom", 1500.0) == pytest.approx(1.5)

    def test_reset(self):
        accountant = CpuAccountant()
        accountant.rsa_decrypt(1)
        accountant.reset()
        assert accountant.node_total_ms(1) == 0.0

    def test_sim_charges_follow_serialized_size(self):
        """Regression: the sim provider once charged a flat 256 bytes of AES
        per seal and ``size_hint`` per payload regardless of the object; it
        must charge by serialized body size like the real provider."""
        accountant = CpuAccountant()
        provider = SimCryptoProvider(random.Random(7), accountant)
        pair = provider.generate_keypair()
        small, big = "x", "x" * 50_000

        provider.seal(pair.public, small, node=1)
        small_ms = accountant.node_total_ms(1, "aes")
        provider.seal(pair.public, big, node=2)
        big_ms = accountant.node_total_ms(2, "aes")
        assert big_ms > small_ms > 0

        key = provider.new_symmetric_key()
        provider.encrypt_payload(key, small, 128, node=3)
        provider.encrypt_payload(key, big, 128, node=4)
        assert (
            accountant.node_total_ms(4, "aes")
            > accountant.node_total_ms(3, "aes")
            > 0
        )

    def test_sim_and_real_charge_same_order_of_magnitude(self):
        """The aligned sim charge should be comparable to the real one for
        the same object (both derive from the serialized body length)."""
        obj = {"entries": list(range(200))}
        sim_acct, real_acct = CpuAccountant(), CpuAccountant()
        sim = SimCryptoProvider(random.Random(7), sim_acct)
        real = RealCryptoProvider(random.Random(7), real_acct, key_bits=512)
        key = b"k" * 16
        sim.encrypt_payload(key, obj, 128, node=1)
        real.encrypt_payload(key, obj, 128, node=1)
        sim_ms = sim_acct.node_total_ms(1, "aes")
        real_ms = real_acct.node_total_ms(1, "aes")
        assert sim_ms > 0 and real_ms > 0
        assert 0.2 < sim_ms / real_ms < 5.0
