"""Guard against bit-rot in the example scripts.

Each example is imported (not executed: ``main()`` is __main__-guarded) so
renamed APIs or syntax errors surface in the test suite instead of at demo
time.  The examples' full behaviour is exercised manually / in CI via
``make examples``.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_cleanly(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert hasattr(module, "main"), f"{path.name} must define main()"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "private_chat",
        "private_dht",
        "leader_failover",
        "churn_resilience",
    } <= names
