"""Integration test: private-group size estimation via averaging."""

import pytest

from repro.apps import SizeEstimator
from repro.core.ppss import MemberState, PpssConfig
from repro.harness import World, WorldConfig


class TestSizeEstimation:
    def test_estimate_converges_to_group_size(self):
        world = World(WorldConfig(seed=801))
        world.populate(60)
        world.start_all()
        world.run(120.0)
        config = PpssConfig(cycle_time=20.0)
        nodes = world.alive_nodes()
        leader = nodes[0]
        group = leader.create_group("sized", config=config)
        members = [leader]
        for node in nodes[1:12]:
            node.join_group(group.invite(node.node_id), config=config)
            members.append(node)
        world.run(250.0)
        assert all(
            m.group("sized").state is MemberState.MEMBER for m in members
        )
        estimators = []
        for i, member in enumerate(members):
            est = SizeEstimator(
                member.group("sized"), world.sim,
                world.registry.fork(f"se-{i}").stream("x"),
                is_initiator=(i == 0),
            )
            member.group("sized").set_app_handler(est.handle_payload)
            estimators.append(est)
        world.run(700.0)
        estimates = [e.estimate for e in estimators if e.estimate is not None]
        assert len(estimates) >= len(members) - 2
        mean = sum(estimates) / len(estimates)
        # Averaging with a few message losses: generous band around N=12.
        assert 6 <= mean <= 30

    def test_estimate_none_before_mass_arrives(self):
        world = World(WorldConfig(seed=802))
        world.populate(20)
        world.start_all()
        world.run(100.0)
        node = world.alive_nodes()[0]
        group = node.create_group("lonely")
        est = SizeEstimator(
            group, world.sim, world.registry.fork("se").stream("x"),
            is_initiator=False,
        )
        assert est.estimate is None
        est.stop()
