"""Tests for the heavy-traffic workload subsystem (repro.workload).

The load-bearing properties:

- open-loop semantics: arrivals are scheduled from the arrival process
  alone — failing or absent completions never slow the offered load, and
  the lag gauge grows monotonically when offered load exceeds capacity;
- clock-agnosticism: the same driver runs unchanged on the discrete-event
  simulator and on the asyncio scheduler;
- determinism: same-seed scenario runs produce byte-identical telemetry
  traces at any worker count.
"""

from __future__ import annotations

import pytest

from repro.sim import Simulator
from repro.telemetry import Telemetry
from repro.workload import (
    CbrStreams,
    FlashCrowd,
    WorkloadDriver,
    WorkloadSpec,
    ZipfLookups,
    build_scenario,
    world_size,
)


def make_driver(seed: int = 7) -> tuple[Simulator, Telemetry, WorkloadDriver]:
    sim = Simulator()
    telemetry = Telemetry(clock=lambda: sim.now)
    return sim, telemetry, WorkloadDriver(sim, telemetry, seed=seed)


class TestSpec:
    def test_cbr_packet_count_and_end(self):
        model = CbrStreams(streams=2, interval=0.5, payload=160, duration=10.0)
        assert model.packets_per_stream == 20
        assert model.end == 10.0

    def test_flash_crowd_end_includes_deadline(self):
        model = FlashCrowd(joiners=5, at=10.0, spread=5.0, deadline=60.0)
        assert model.end == 75.0

    def test_horizon_is_max_model_end(self):
        spec = WorkloadSpec(
            name="x",
            models=(
                CbrStreams(duration=30.0),
                ZipfLookups(start=10.0, duration=50.0),
            ),
        )
        assert spec.horizon() == 60.0

    def test_validation_rejects_bad_values(self):
        with pytest.raises(ValueError):
            CbrStreams(interval=0.0)
        with pytest.raises(ValueError):
            ZipfLookups(rate=-1.0)
        with pytest.raises(ValueError):
            FlashCrowd(joiners=0)
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", groups=0)

    def test_scenarios_build_and_size(self):
        for name in ("cbr", "zipf", "flash", "multigroup", "mixed"):
            spec = build_scenario(name, scale=0.5)
            assert spec.models, name
            assert world_size(spec, 0.5) >= spec.groups * spec.members_per_group


class TestOpenLoopSemantics:
    def test_arrivals_never_self_throttle(self):
        """A stream whose every action fails still offers at full rate."""
        sim, _, driver = make_driver()
        driver.add_stream(
            "s", "test", lambda seq, now: False, interval=1.0, until=99.0
        )
        driver.arm()
        sim.run(until=200.0)
        account = driver.accounts["s"]
        assert account.offered == 100  # t=0..99 inclusive, 1/s
        assert account.emitted == 0
        assert account.failed == 100  # un-emitted arrivals resolve as failed
        assert account.lag == 0

    def test_lag_grows_monotonically_past_capacity(self):
        """Offered > capacity: completions never arrive, lag only climbs."""
        sim, _, driver = make_driver()
        driver.add_stream(
            "s", "test", lambda seq, now: True, interval=0.5, until=49.9
        )
        driver.arm()
        samples = []
        for _ in range(10):
            sim.run(until=sim.now + 5.0)
            samples.append(driver.lag)
        assert samples == sorted(samples)
        assert samples[-1] == 100
        assert driver.offered == 100
        assert driver.completed == 0

    def test_completions_drain_lag(self):
        sim, _, driver = make_driver()
        driver.add_stream(
            "s", "test", lambda seq, now: True, interval=1.0, count=10
        )
        driver.arm()
        sim.run(until=20.0)
        assert driver.lag == 10
        for _ in range(10):
            driver.note_completion("s", latency=0.1, nbytes=100)
        assert driver.lag == 0
        assert driver.accounts["s"].bytes_delivered == 1000

    def test_absolute_cadence_has_no_float_drift(self):
        """10k arrivals at 0.1s intervals land exactly on the grid."""
        sim, _, driver = make_driver()
        seen = []
        driver.add_stream(
            "s", "test",
            lambda seq, now: seen.append(now) or True,
            interval=0.1, count=10_000,
        )
        driver.arm()
        sim.run(until=2000.0)
        assert len(seen) == 10_000
        # An accumulating `t += 0.1` loop drifts ~1e-9 per thousand adds;
        # the absolute schedule keeps the final arrival on the exact grid.
        assert seen[-1] == pytest.approx(999.9, abs=1e-6)

    def test_arming_anchors_relative_times(self):
        """Spec times are relative to arm(), not to t=0."""
        sim, _, driver = make_driver()
        sim.run(until=500.0)
        seen = []
        driver.add_stream(
            "s", "test",
            lambda seq, now: seen.append(now) or True,
            interval=1.0, start=2.0, count=3,
        )
        driver.arm()
        sim.run(until=600.0)
        assert seen == [502.0, 503.0, 504.0]

    def test_duplicate_stream_id_rejected(self):
        _, _, driver = make_driver()
        driver.add_stream("s", "t", lambda *_: True, interval=1.0, count=1)
        with pytest.raises(ValueError):
            driver.add_stream("s", "t", lambda *_: True, interval=1.0, count=1)

    def test_stream_needs_stop_condition(self):
        _, _, driver = make_driver()
        with pytest.raises(ValueError):
            driver.add_stream("s", "t", lambda *_: True, interval=1.0)


class TestTelemetryWiring:
    def test_counters_and_lag_gauge(self):
        sim, telemetry, driver = make_driver()
        driver.add_stream(
            "s", "test", lambda seq, now: True, interval=1.0, count=4
        )
        driver.arm()
        sim.run(until=10.0)
        driver.note_completion("s", latency=0.25, nbytes=100)
        offered = telemetry.metrics.collect("workload.offered")
        assert sum(c.value for c in offered.values()) == 4
        gauge = telemetry.metrics.collect("workload.lag")
        assert sum(g.value for g in gauge.values()) == 3
        latency = telemetry.metrics.collect("workload.latency")
        (histogram,) = latency.values()
        assert histogram.count == 1

    def test_same_seed_same_interarrival_draws(self):
        def draws(seed: int) -> list[float]:
            sim, _, driver = make_driver(seed)
            seen = []
            stream = driver.add_stream(
                "s", "test",
                lambda seq, now: seen.append(now) or True,
                interval=lambda: 1.0, count=5,
            )
            stream.interval = lambda: stream.rng.expovariate(2.0)
            driver.arm()
            sim.run(until=100.0)
            return seen

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)


class TestAsyncioClock:
    def test_driver_runs_on_live_scheduler(self):
        """The same driver, unchanged, on wall-clock time."""
        from repro.runtime.clock import AsyncioScheduler

        scheduler = AsyncioScheduler()
        try:
            telemetry = Telemetry(clock=lambda: scheduler.now)
            driver = WorkloadDriver(scheduler, telemetry, seed=7)
            driver.add_stream(
                "s", "test",
                lambda seq, now: driver.note_completion("s", nbytes=10) or True,
                interval=0.02, count=5,
            )
            driver.arm()
            assert scheduler.run_until(
                lambda: driver.accounts["s"].offered >= 5, timeout=2.0
            )
            assert driver.completed == 5
            assert driver.lag == 0
        finally:
            scheduler.close()
