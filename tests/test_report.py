"""Unit tests for the paper-style report rendering."""

from repro.harness.report import CdfSummary, Report, Table


class TestTable:
    def test_renders_aligned_columns(self):
        table = Table(title="T", headers=["name", "value"])
        table.add_row("alpha", 1.5)
        table.add_row("b", 20)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        # All body lines align on the separator.
        assert lines[2].count("-+-") == 1
        assert "alpha" in lines[3] and "1.500" in lines[3]
        assert "20" in lines[4]

    def test_float_formatting(self):
        table = Table(title="T", headers=["x"])
        table.add_row(0.123456)
        assert "0.123" in table.render()

    def test_wide_cells_stretch_columns(self):
        table = Table(title="T", headers=["h"])
        table.add_row("a-very-long-cell-value")
        header_line = table.render().splitlines()[1]
        assert len(header_line) >= len("a-very-long-cell-value")


class TestCdfSummary:
    def test_renders_percentile_grid(self):
        summary = CdfSummary(title="delays", samples=[1.0, 2.0, 3.0], unit="s")
        text = summary.render()
        assert "delays" in text
        assert "(n=3)" in text
        assert "p50" in text and "p90" in text

    def test_empty_samples(self):
        assert "no samples" in CdfSummary(title="x", samples=[]).render()


class TestReport:
    def test_full_rendering(self):
        report = Report(title="Fig. X")
        table = Table(title="t", headers=["a"])
        table.add_row(1)
        report.add(table)
        report.add(CdfSummary(title="cdf", samples=[1.0]))
        report.note("shape matches")
        text = report.render()
        assert text.startswith("=== Fig. X ===")
        assert "note: shape matches" in text
        assert text.endswith("\n")

    def test_sections_render_in_order(self):
        report = Report(title="r")
        for name in ("first", "second"):
            t = Table(title=name, headers=["x"])
            report.add(t)
        text = report.render()
        assert text.index("first") < text.index("second")
