"""Property-based tests for NAT device behaviour (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nat.device import NatDevice
from repro.nat.types import NatType
from repro.net.address import Endpoint, Protocol

INTERNAL = Endpoint("priv-1", 7000)

remotes = st.builds(
    Endpoint,
    host=st.sampled_from(["pub-1", "pub-2", "pub-3", "nat-9"]),
    port=st.integers(7000, 7003),
)

nat_types = st.sampled_from([
    NatType.FULL_CONE,
    NatType.RESTRICTED_CONE,
    NatType.PORT_RESTRICTED_CONE,
    NatType.SYMMETRIC,
])


class TestDeviceProperties:
    @settings(max_examples=60, deadline=None)
    @given(nat_type=nat_types, sequence=st.lists(remotes, min_size=1, max_size=12))
    def test_replies_from_contacted_remotes_always_admitted(
        self, nat_type, sequence
    ):
        """For every NAT type, a remote we just sent to can reply."""
        device = NatDevice(nat_id=1, nat_type=nat_type)
        for i, remote in enumerate(sequence):
            external = device.outbound(INTERNAL, remote, Protocol.UDP, now=float(i))
            assert device.inbound(
                external.port, remote, Protocol.UDP, now=float(i) + 0.5
            ) == INTERNAL

    @settings(max_examples=60, deadline=None)
    @given(
        nat_type=nat_types,
        contacted=st.lists(remotes, min_size=0, max_size=6),
        prober=remotes,
        port_guess=st.integers(40_000, 40_050),
    )
    def test_never_admits_without_matching_rule(
        self, nat_type, contacted, prober, port_guess
    ):
        """An admitted packet implies the filtering rule for its type."""
        device = NatDevice(nat_id=1, nat_type=nat_type)
        externals = {}
        for i, remote in enumerate(contacted):
            ext = device.outbound(INTERNAL, remote, Protocol.UDP, now=float(i))
            externals[remote] = ext.port
        admitted = device.inbound(port_guess, prober, Protocol.UDP, now=50.0)
        if admitted is None:
            return
        # The packet got in: the relevant rule must genuinely hold.
        assert port_guess in externals.values()
        if nat_type is NatType.RESTRICTED_CONE:
            assert prober.host in {r.host for r in contacted}
        elif nat_type is NatType.PORT_RESTRICTED_CONE:
            assert prober in contacted
        elif nat_type is NatType.SYMMETRIC:
            assert externals.get(prober) == port_guess

    @settings(max_examples=40, deadline=None)
    @given(sequence=st.lists(remotes, min_size=1, max_size=10))
    def test_cone_mapping_is_stable(self, sequence):
        """Cone NATs expose one external endpoint per internal socket."""
        device = NatDevice(nat_id=1, nat_type=NatType.FULL_CONE)
        ports = {
            device.outbound(INTERNAL, remote, Protocol.UDP, now=float(i)).port
            for i, remote in enumerate(sequence)
        }
        assert len(ports) == 1

    @settings(max_examples=40, deadline=None)
    @given(sequence=st.lists(remotes, min_size=1, max_size=10, unique=True))
    def test_symmetric_mapping_per_remote(self, sequence):
        """Symmetric NATs allocate a distinct port per remote endpoint."""
        device = NatDevice(nat_id=1, nat_type=NatType.SYMMETRIC)
        ports = [
            device.outbound(INTERNAL, remote, Protocol.UDP, now=float(i)).port
            for i, remote in enumerate(sequence)
        ]
        assert len(set(ports)) == len(sequence)

    @settings(max_examples=30, deadline=None)
    @given(nat_type=nat_types, gap=st.floats(0.0, 1000.0))
    def test_lease_boundary(self, nat_type, gap):
        """Inbound succeeds iff within the (refreshed) lease window."""
        device = NatDevice(nat_id=1, nat_type=nat_type)
        remote = Endpoint("pub-1", 7000)
        external = device.outbound(INTERNAL, remote, Protocol.UDP, now=0.0)
        lease = device.lease(Protocol.UDP)
        result = device.inbound(external.port, remote, Protocol.UDP, now=gap)
        if gap <= lease:
            assert result == INTERNAL
        else:
            assert result is None
